#!/usr/bin/env python
"""Pre-commit hook driver: run the AEM source lint on changed files only.

pre-commit passes the staged filenames as argv; anything outside
``src/repro`` is skipped. Module context — which package a file belongs
to, the thing rules like AEM102/AEM108 key on — is derived from the
path relative to ``src/repro``, exactly as ``repro-aem check --lint``
derives it for the whole tree, so a file lints identically both ways.

The whole-tree lint, the dataflow analysis, and the trace battery stay
in CI; this hook only keeps the per-file feedback loop fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sanitize.lint import lint_source  # noqa: E402

PKG_ROOT = REPO / "src" / "repro"


def main(argv: list[str]) -> int:
    failures = 0
    for name in argv:
        path = Path(name)
        if path.suffix != ".py":
            continue
        try:
            rel = path.resolve().relative_to(PKG_ROOT)
        except ValueError:
            continue
        parts = rel.with_suffix("").parts
        violations = lint_source(
            path.read_text(encoding="utf-8"),
            rel=str(path),
            module_parts=parts,
        )
        for v in violations:
            print(f"  [FAIL] {v.render()}", file=sys.stderr)
        failures += len(violations)
    if failures:
        print(f"aem-lint: {failures} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
