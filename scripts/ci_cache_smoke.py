#!/usr/bin/env python
"""CI smoke test for the sweep engine's acceptance criteria.

Asserts, against the real experiment suite (quick mode):

1. ``exp all --jobs 2`` emits byte-identical records to the serial run;
2. a cold cached run misses on every measurement and a repeated run hits
   the cache 100% (0 executed, 0 misses) while still emitting identical
   output;
3. a warm rerun of a measurement-dominated experiment is at least 5x
   faster than its cold run.

Run from the repository root::

    PYTHONPATH=src python scripts/ci_cache_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import os
import re
import sys
import tempfile
import time

from repro.cli import main

# The experiment used for the wall-clock assertion. Its runtime is
# dominated by engine-routed measure_* calls, so a warm cache removes
# nearly all of its work; the full suite also contains experiments that
# do no cached measurements, which would dilute a suite-wide ratio.
TIMED_EID = "e13"
MIN_SPEEDUP = 5.0

_STATS = re.compile(
    r"\[engine\] (\d+) sweep\(s\), (\d+) measurement\(s\): "
    r"(\d+) executed, (\d+) cache hit\(s\), (\d+) miss\(es\)"
)


def run(args: list[str]) -> tuple[float, str, str]:
    out, err = io.StringIO(), io.StringIO()
    t0 = time.perf_counter()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        rc = main(args)
    elapsed = time.perf_counter() - t0
    if rc != 0:
        sys.stderr.write(err.getvalue())
        raise SystemExit(f"`repro-aem {' '.join(args)}` exited with {rc}")
    return elapsed, out.getvalue(), err.getvalue()


def stats(err: str) -> tuple[int, int, int, int, int]:
    m = _STATS.search(err)
    if m is None:
        raise SystemExit(f"no [engine] stats line in stderr:\n{err}")
    return tuple(int(g) for g in m.groups())  # type: ignore[return-value]


def check(ok: bool, label: str) -> None:
    print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
    if not ok:
        raise SystemExit(1)


def main_smoke() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as cache:
        print("== serial vs parallel (no cache) ==")
        _, serial_out, _ = run(["exp", "all", "--no-cache"])
        _, parallel_out, _ = run(["exp", "all", "--no-cache", "--jobs", "2"])
        check(parallel_out == serial_out, "--jobs 2 output identical to serial")

        print("== cold cached run ==")
        _, cold_out, cold_err = run(
            ["exp", "all", "--jobs", "2", "--cache-dir", cache]
        )
        _, measured, executed, hits, misses = stats(cold_err)
        check(cold_out == serial_out, "cached run output identical to serial")
        check(measured > 0 and executed == measured, "cold run executes everything")
        check(hits == 0 and misses == measured, "cold run misses on every measurement")

        print("== warm cached rerun ==")
        _, warm_out, warm_err = run(
            ["exp", "all", "--jobs", "2", "--cache-dir", cache]
        )
        _, measured2, executed2, hits2, misses2 = stats(warm_err)
        check(warm_out == cold_out, "warm rerun output identical")
        check(measured2 == measured, "warm rerun sees the same measurements")
        check(
            executed2 == 0 and misses2 == 0 and hits2 == measured,
            "warm rerun is 100% cache hits (0 executed, 0 misses)",
        )

        print(f"== warm speedup ({TIMED_EID}) ==")
        timed_cache = os.path.join(cache, "timed")  # fresh dir: exp all above already warmed `cache`
        t_cold, _, _ = run(["exp", TIMED_EID, "--cache-dir", timed_cache])
        t_warm, _, _ = run(["exp", TIMED_EID, "--cache-dir", timed_cache])
        speedup = t_cold / max(t_warm, 1e-9)
        check(
            speedup >= MIN_SPEEDUP,
            f"warm rerun {speedup:.1f}x faster (cold {t_cold:.2f}s, "
            f"warm {t_warm:.2f}s, need >= {MIN_SPEEDUP:.0f}x)",
        )

    print("cache smoke: all checks passed")


if __name__ == "__main__":
    main_smoke()
