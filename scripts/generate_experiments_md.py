#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a full-size run of the experiment suite.

Usage:  python scripts/generate_experiments_md.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.engine import ExperimentConfig
from repro.experiments import run_all

PREAMBLE = """\
# EXPERIMENTS — paper claims vs. measured results

The paper (*Lower Bounds in the Asymmetric External Memory Model*, Jacob &
Sitchinava, SPAA 2017) is a theory paper with **no evaluation tables or
figures**; its quantitative content is the theorems. DESIGN.md's experiment
index derives one experiment per claim; this file records the output of the
full-size suite (the committed record; regenerate with
`python scripts/generate_experiments_md.py`, or run any single experiment
with `repro-aem exp <id>` / `pytest benchmarks/ --benchmark-only`).

Reproduction standard: we match **shapes**, not absolute constants — who
wins, what grows at which rate, where crossovers fall, and that every lower
bound sits below every measured cost. Each experiment's `Checks` section is
the machine-verified form of its claim; the same checks run in the test
suite (`tests/test_experiments.py`) and the benchmarks.

Summary of deviations from the paper (full list in DESIGN.md §6):
heapsort is implemented as replacement-selection + omega*m-way merging;
sample sort uses deterministic regular sampling with omega sub-passes; the
SpMxV sorting-based algorithm uses omega*M-size base runs (matches the
paper's bound whenever delta <= omega*M); the abstract's `max{delta, M}`
vs. Section 5's `max{delta, B}` discrepancy is resolved in favor of
Section 5.

"""


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true", help="small sweeps (CI mode)")
    ap.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "EXPERIMENTS.md")
    )
    args = ap.parse_args()

    t0 = time.time()
    results = run_all(ExperimentConfig.from_quick(args.quick))
    elapsed = time.time() - t0

    parts = [PREAMBLE]
    passed = sum(1 for r in results if r.passed)
    parts.append(
        f"_Suite: {passed}/{len(results)} experiments with all checks passing; "
        f"{'quick' if args.quick else 'full'} sweeps; "
        f"wall time {elapsed:.0f}s on one core._\n"
    )
    for r in results:
        parts.append("```")
        parts.append(r.render())
        parts.append("```")
        parts.append("")
    Path(args.out).write_text("\n".join(parts))
    print(f"wrote {args.out} ({passed}/{len(results)} passing, {elapsed:.0f}s)")
    return 0 if passed == len(results) else 1


if __name__ == "__main__":
    sys.exit(main())
