#!/usr/bin/env python3
"""Release gate: everything a maintainer checks before tagging.

Runs, in order: the import surface, every example script, the quick
experiment suite (all checks must pass), and reports timing. The test and
benchmark suites are deliberately left to pytest (`pytest tests/` /
`pytest benchmarks/ --benchmark-only`) — this script covers the parts
pytest does not.

Usage:  python scripts/check_release.py
"""

from __future__ import annotations

import importlib
import runpy
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

MODULES = [
    "repro",
    "repro.analysis",
    "repro.atoms",
    "repro.core",
    "repro.experiments",
    "repro.flashmodel",
    "repro.flashred",
    "repro.machine",
    "repro.observe",
    "repro.permute",
    "repro.primitives",
    "repro.rounds",
    "repro.sanitize",
    "repro.sorting",
    "repro.spmxv",
    "repro.structures",
    "repro.trace",
    "repro.workloads",
]


def check_imports() -> None:
    for name in MODULES:
        importlib.import_module(name)
    print(f"[ok] {len(MODULES)} packages import cleanly")


def check_examples() -> None:
    for script in sorted((ROOT / "examples").glob("*.py")):
        t0 = time.time()
        runpy.run_path(str(script), run_name="__main__")
        print(f"[ok] example {script.name} ({time.time() - t0:.1f}s)")


def check_invariants() -> int:
    from repro.sanitize import run_lint_checks, run_trace_checks

    t0 = time.time()
    found = run_trace_checks()
    found_lint = run_lint_checks()
    n = len(found) + len(found_lint)
    print(
        f"[{'ok' if n == 0 else 'FAIL'}] model sanitizers + lint: "
        f"{n} violation(s) ({time.time() - t0:.0f}s)"
    )
    for v in found:
        print(f"       {v.render()}")
    for v in found_lint:
        print(f"       {v.render()}")
    return n


def check_experiments() -> int:
    from repro.experiments import run_all

    t0 = time.time()
    from repro.engine import ExperimentConfig

    results = run_all(ExperimentConfig(budget="quick"))
    failed = [r.eid for r in results if not r.passed]
    print(
        f"[{'ok' if not failed else 'FAIL'}] experiment suite: "
        f"{len(results) - len(failed)}/{len(results)} passing "
        f"({time.time() - t0:.0f}s)"
    )
    for r in results:
        if not r.passed:
            bad = [k for k, ok in r.checks.items() if not ok]
            print(f"       {r.eid}: {bad}")
    return len(failed)


def main() -> int:
    import contextlib
    import io

    check_imports()
    # Examples print a lot; keep the gate output terse.
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        check_examples()
    for line in buf.getvalue().splitlines():
        if line.startswith("[ok] example"):
            print(line)
    failed = check_invariants()
    failed += check_experiments()
    print("release gate:", "PASS" if failed == 0 else f"FAIL ({failed})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
