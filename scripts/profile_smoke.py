#!/usr/bin/env python
"""CI smoke for the cost-attribution profiler and trace propagation.

Asserts the observability acceptance surface end to end:

1. ``repro-aem profile`` on one sort and one SpMxV config exits zero —
   the in-command conservation check (attributed totals == the cost
   ledger) is a hard failure, so the exit code alone carries it — and
   writes loadable ``profile.folded`` / ``profile.speedscope.json``
   artifacts with nonzero stack depth;
2. a direct :class:`CostProfiler` run conserves exactly on both a full
   and a counting machine, with identical per-path attribution;
3. one query served with a telemetry dir yields a ``trace.json`` whose
   request→engine→machine flow chain (``s``/``t``/``f``) passes
   :func:`repro.telemetry.validate_trace`.

Run as ``PYTHONPATH=src python scripts/profile_smoke.py --out-dir DIR``.
Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.cli import main as cli_main
from repro.serve import ServeConfig, ServerThread
from repro.telemetry import CostProfiler, validate_trace

PROFILE_TARGETS = [
    ("sort", ["--sorter", "aem_mergesort", "--n", "4096"]),
    ("spmxv", ["--algorithm", "sort_based", "--n", "256", "--delta", "3"]),
]
MACHINE = ["--m", "64", "--b", "8", "--omega", "4"]


def fail(msg: str) -> None:
    print(f"profile smoke FAILED: {msg}", file=sys.stderr)
    raise SystemExit(1)


def check_cli_profiles(out_dir: Path) -> None:
    for target, flags in PROFILE_TARGETS:
        dest = out_dir / f"profile-{target}"
        rc = cli_main(
            ["profile", target, *flags, *MACHINE, "--out", str(dest)]
        )
        if rc != 0:
            fail(f"`profile {target}` exited {rc} (conservation broken?)")
        folded = (dest / "profile.folded").read_text().splitlines()
        if not folded:
            fail(f"{target}: empty profile.folded")
        depth = max(line.rsplit(" ", 1)[0].count(";") for line in folded)
        if depth < 1:
            fail(f"{target}: flat profile (max stack depth {depth})")
        doc = json.loads((dest / "profile.speedscope.json").read_text())
        profile = doc["profiles"][0]
        if not profile["samples"] or len(profile["samples"]) != len(
            profile["weights"]
        ):
            fail(f"{target}: malformed speedscope document")
        print(
            f"  profile {target}: {len(folded)} path(s), "
            f"max depth {depth + 1}, artifacts in {dest}"
        )


def check_conservation_and_counting_parity() -> None:
    query = {"n": 2048, "M": 64, "B": 8, "omega": 4, "sorter": "aem_mergesort"}
    attributions = {}
    for counting in (False, True):
        profiler = CostProfiler(root="sort")
        rec = api.evaluate(
            "sort", dict(query, counting=counting), observers=[profiler]
        )
        errors = profiler.conservation_errors(rec)
        if errors:
            fail(f"conservation (counting={counting}): {errors}")
        attributions[counting] = {
            path: stats.as_dict() for path, stats in profiler.paths().items()
        }
    if attributions[False] != attributions[True]:
        fail("counting-mode attribution differs from the full machine")
    print(
        f"  conservation: exact on full + counting machines "
        f"({len(attributions[False])} path(s), identical attribution)"
    )


def check_serve_flow_trace(out_dir: Path) -> None:
    trace_dir = out_dir / "serve-trace"
    trace_dir.mkdir(parents=True, exist_ok=True)
    with ServerThread(
        ServeConfig(
            port=0, counting=True, cache=False, telemetry_dir=str(trace_dir)
        )
    ) as srv:
        resp = srv.post(
            "/evaluate",
            {"workload": "sort", "n": 512, "M": 64, "B": 8, "omega": 4},
        )
        if resp.status != 200:
            fail(f"served query answered {resp.status}")
        span = resp.json()["span"]
    trace_path = trace_dir / "trace.json"
    if not trace_path.is_file():
        fail("drained server wrote no trace.json")
    trace = json.loads(trace_path.read_text())
    try:
        validate_trace(trace)
    except ValueError as exc:
        fail(f"trace.json failed validation: {exc}")
    chain = [
        e["ph"]
        for e in trace["traceEvents"]
        if e["ph"] in ("s", "t", "f") and e["id"] == span["trace_id"]
    ]
    if chain != ["s", "t", "f"]:
        fail(f"flow chain for {span['trace_id']} is {chain}, want [s, t, f]")
    print(f"  serve flow: validated s->t->f chain in {trace_path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="profile-out")
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    print("profile smoke:")
    check_cli_profiles(out_dir)
    check_conservation_and_counting_parity()
    check_serve_flow_trace(out_dir)
    print("profile smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
