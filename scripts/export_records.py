#!/usr/bin/env python3
"""Export experiment records to CSV for external plotting.

Each experiment's swept measurements land in one CSV under ``results/``
(one file per experiment, one row per record, columns unioned across
records). Usage::

    python scripts/export_records.py            # all experiments, quick
    python scripts/export_records.py --full e1 e7
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.engine import ExperimentConfig
from repro.experiments import REGISTRY, run_experiment


def export(eid: str, outdir: Path, *, quick: bool) -> Path:
    result = run_experiment(eid, ExperimentConfig.from_quick(quick))
    fields: list[str] = []
    for rec in result.records:
        for key in rec:
            if key not in fields:
                fields.append(key)
    path = outdir / f"{result.eid.lower()}_records.csv"
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        for rec in result.records:
            writer.writerow(rec)
    return path


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    ap.add_argument("--full", action="store_true", help="full-size sweeps")
    ap.add_argument(
        "--outdir",
        default=str(Path(__file__).resolve().parent.parent / "results"),
    )
    args = ap.parse_args()
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    ids = [i.lower() for i in args.ids] or sorted(REGISTRY)
    for eid in ids:
        path = export(eid, outdir, quick=not args.full)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
