#!/usr/bin/env python
"""Benchmark-trajectory entry point (CI and direct use).

Runs the pinned benchmark suite, writes a ``BENCH_<stamp>.json``
trajectory point, and exits nonzero when any case's wall time exceeds
the committed baseline (``benchmarks/BENCH_baseline.json``) by the
configured slowdown threshold. The threshold is defined in one place —
:data:`repro.telemetry.bench.DEFAULT_THRESHOLD` — and overridable via
``REPRO_BENCH_THRESHOLD`` or ``--threshold``.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_trajectory.py
    PYTHONPATH=src python scripts/bench_trajectory.py --write-baseline
    PYTHONPATH=src python scripts/bench_trajectory.py --out-dir bench-out --threshold 3

Equivalent to ``repro-aem bench`` with the same flags; see
``docs/observability.md`` for the full workflow.
"""

from __future__ import annotations

import sys

from repro.telemetry.bench import main

if __name__ == "__main__":
    sys.exit(main())
