#!/usr/bin/env python
"""CI smoke for the cost-oracle serving layer.

Boots a real server (ephemeral port, counting mode), then asserts the
PR-7 acceptance surface end to end:

1. every served answer is bit-for-bit the direct ``repro.api.evaluate``
   result (same CostRecord fields, same values);
2. identical concurrent queries dedup to exactly one engine evaluation
   (dedup counters nonzero, executed == unique configs);
3. the bundled load generator reports latency percentiles and a nonzero
   dedup hit-rate under bursty zipfian traffic;
4. the drain path leaves the engine stats consistent (requests served ==
   dedup hits + engine measurements).

Run as ``PYTHONPATH=src python scripts/serve_smoke.py``. Exits non-zero
on any violation.
"""

from __future__ import annotations

import concurrent.futures
import json
import sys

from repro import api
from repro.serve import BenchConfig, ServeConfig, ServerThread, render_report, run_bench

QUERIES = [
    {"workload": "sort", "n": 512, "M": 64, "B": 8, "omega": 4},
    {"workload": "permute", "n": 256, "M": 64, "B": 8, "omega": 4},
    {"workload": "spmxv", "n": 64, "delta": 2, "M": 64, "B": 8, "omega": 4},
    {"workload": "index_build", "n": 400, "M": 64, "B": 8, "omega": 4},
    {
        "workload": "search_query",
        "n": 400,
        "n_queries": 20,
        "M": 64,
        "B": 8,
        "omega": 4,
    },
]


def fail(msg: str) -> None:
    print(f"serve smoke FAILED: {msg}", file=sys.stderr)
    raise SystemExit(1)


def check_parity_and_dedup() -> None:
    fanout = 8
    with ServerThread(
        ServeConfig(port=0, counting=True, batch_window=0.05)
    ) as srv:
        with concurrent.futures.ThreadPoolExecutor(fanout * len(QUERIES)) as pool:
            futures = [
                pool.submit(srv.post, "/evaluate", q)
                for q in QUERIES
                for _ in range(fanout)
            ]
            responses = [f.result() for f in futures]
        statuses = sorted({r.status for r in responses})
        if statuses != [200]:
            fail(f"expected all 200s, saw statuses {statuses}")
        # Snapshot the counters before the parity re-queries below add
        # their own (uncached, so re-executed) evaluations.
        stats = srv.get("/stats").json()

        # 1. bit-for-bit parity with the direct facade call.
        for query in QUERIES:
            served = srv.post("/evaluate", query).json()["result"]
            direct = dict(api.evaluate(query["workload"], query, counting=True))
            if served != json.loads(json.dumps(direct)):
                fail(f"server answer diverges from api.evaluate for {query}:\n"
                     f"  served: {served}\n  direct: {direct}")
    executed = stats["engine"]["executed"]
    dedup = stats["requests"]["dedup_hits"]

    # 2. dedup collapsed the fan-out to one evaluation per unique config.
    if executed != len(QUERIES):
        fail(f"expected {len(QUERIES)} engine evaluations, got {executed}")
    if dedup == 0:
        fail("dedup counter is zero under identical concurrent queries")

    # 4. request accounting balances.
    served = dedup + stats["engine"]["measurements"]
    if served < fanout * len(QUERIES):
        fail(f"accounting leak: dedup+measurements={served} < "
             f"{fanout * len(QUERIES)} evaluate requests")
    print(
        f"parity+dedup OK: {executed} executed, {dedup} dedup hit(s), "
        f"batches={stats['requests']['batches']}"
    )


def check_bench() -> None:
    with ServerThread(
        ServeConfig(port=0, counting=True, batch_window=0.02)
    ) as srv:
        report = run_bench(
            BenchConfig(
                host=srv.host,
                port=srv.port,
                requests=80,
                rate=2000.0,
                burst=10,
                distinct=4,
                n_base=128,
                seed=11,
            )
        )
    print(render_report(report))
    if report["completed"] != report["sent"]:
        fail(f"bench lost requests: {report['completed']}/{report['sent']}")
    for q in ("p50", "p95", "p99"):
        if report["latency_ms"].get(q, 0) <= 0:
            fail(f"bench reported no {q} latency")
    if report["server"]["dedup_hit_rate"] <= 0:
        fail("bench saw a zero dedup hit-rate on zipfian traffic")


def check_search() -> None:
    """The search workloads on a tiny corpus: counting==full parity.

    The server boots in counting mode, so the parity loop in
    :func:`check_parity_and_dedup` already pins served-vs-direct
    bit-identity for ``index_build`` and ``search_query``; this check
    adds the other leg — the counting machine's CostRecord must equal
    the full machine's for the same corpus and query stream.
    """
    for query in QUERIES:
        if query["workload"] not in ("index_build", "search_query"):
            continue
        full = dict(api.evaluate(query["workload"], query, counting=False))
        fast = dict(api.evaluate(query["workload"], query, counting=True))
        if full != fast:
            fail(f"counting/full cost divergence for {query}:\n"
                 f"  full:     {full}\n  counting: {fast}")
    print("search counting parity OK: index_build + search_query")


def main() -> int:
    check_parity_and_dedup()
    check_search()
    check_bench()
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
