#!/usr/bin/env python
"""CI smoke test for the columnar batched event bus.

Runs the ``micro/scan_copy`` B=128 case across the full dispatch matrix
— {full, counting} x {events, batched} — and asserts that the *model
costs* (``Q``/``Qr``/``Qw``/``peak``) are bit-identical in every cell:
batching changes when observers see events, never what they add up to.

Wall times are printed for the CI log (they are the tentpole's readout)
but deliberately NOT asserted — shared runners are too noisy for a
hard timing gate here; that gate lives in the bench-trajectory job
against the committed baseline.

Run from the repository root::

    PYTHONPATH=src python scripts/bench_dispatch_smoke.py [--out-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.telemetry.bench import _scan_case, run_case
from repro.telemetry.manifest import json_default, utc_now

B = 128
N = 200_000

#: Keys that must be bit-identical across every dispatch/payload mode.
COST_KEYS = ("Q", "Qr", "Qw", "T", "peak_mem")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--out-dir",
        default="bench-out",
        help="directory for the dispatch_smoke.json result file",
    )
    ap.add_argument(
        "--repeats", type=int, default=2, help="timing repeats per cell"
    )
    args = ap.parse_args(argv)

    cells = {}
    for counting in (False, True):
        for dispatch in ("events", "batched"):
            case = _scan_case(B, N, counting=counting, dispatch=dispatch)
            cells[case.name] = run_case(case, repeats=args.repeats)

    width = max(len(name) for name in cells)
    print(f"dispatch smoke: scan_copy B={B} n={N}")
    for name, r in cells.items():
        costs = "  ".join(f"{k}={r.get(k)}" for k in COST_KEYS if k in r)
        print(f"  {name:<{width}}  {r['wall_s']:.3f}s  {costs}")

    failures = 0
    reference_name = next(iter(cells))
    reference = cells[reference_name]
    for key in COST_KEYS:
        if key not in reference:
            print(f"  [FAIL] reference cell lacks cost key {key!r}")
            failures += 1
            continue
        values = {name: r.get(key) for name, r in cells.items()}
        if len(set(values.values())) != 1:
            print(f"  [FAIL] {key} differs across modes: {values}")
            failures += 1
    if failures == 0:
        print(
            f"  [PASS] {', '.join(COST_KEYS)} identical across all "
            f"{len(cells)} dispatch/payload modes"
        )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "dispatch_smoke.json"
    out_path.write_text(
        json.dumps(
            {
                "created": utc_now(),
                "case": f"micro/scan_copy/B{B}n{N}",
                "cost_keys": list(COST_KEYS),
                "parity": failures == 0,
                "cells": cells,
            },
            indent=2,
            sort_keys=True,
            default=json_default,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"results: {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
