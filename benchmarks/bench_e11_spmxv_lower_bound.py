"""E11 — Theorem 5.1: the SpMxV lower bound is sound and shape-matching.

Regenerates experiment E11 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e11_spmxv_lower_bound(experiment):
    experiment("e11")
