"""E15 — sorting cost vs internal memory M: the log-base effect.

Regenerates experiment E15 (see DESIGN.md's experiment index).
"""


def test_e15_memory_scaling(experiment):
    experiment("e15")
