"""E10 — SpMxV direct vs sorting-based: the winner flips with omega (Sec. 5 upper bounds).

Regenerates experiment E10 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e10_spmxv_crossover(experiment):
    experiment("e10")
