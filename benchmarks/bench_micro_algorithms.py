"""Micro-benchmarks of the algorithms at a fixed instance.

Wall-time throughput of each sorter/permuter/SpMxV algorithm on one
representative instance; ``extra_info`` carries the exact I/O counts, so a
run doubles as a quick regression record of the cost constants.
"""

import numpy as np
import pytest

from repro.atoms.atom import Atom
from repro.atoms.permutation import Permutation
from repro.core.params import AEMParams
from repro.machine.aem import AEMMachine
from repro.permute.base import PERMUTERS
from repro.sorting.base import SORTERS
from repro.spmxv.matrix import load_matrix, load_vector
from repro.spmxv.naive import spmxv_naive
from repro.spmxv.sort_based import spmxv_sort_based
from repro.workloads.generators import sort_input, spmxv_instance

P = AEMParams(M=128, B=16, omega=8)
N_SORT = 8_000
N_PERM = 4_096


@pytest.mark.parametrize("name", sorted(SORTERS))
def test_sorter(benchmark, name):
    if name == "pointer_mergesort":
        pytest.skip("identical round structure to aem_mergesort; E2 covers it")
    atoms = sort_input(N_SORT, "uniform", np.random.default_rng(0))

    def body():
        machine = AEMMachine.for_algorithm(P)
        addrs = machine.load_input(atoms)
        SORTERS[name](machine, addrs, P)
        return machine

    machine = benchmark.pedantic(body, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"N": N_SORT, "Qr": machine.reads, "Qw": machine.writes, "Q": machine.cost}
    )


@pytest.mark.parametrize("name", sorted(PERMUTERS))
def test_permuter(benchmark, name):
    rng = np.random.default_rng(1)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N_PERM, N_PERM))]
    perm = Permutation.random(N_PERM, rng)

    def body():
        machine = AEMMachine.for_algorithm(P)
        addrs = machine.load_input(atoms)
        PERMUTERS[name](machine, addrs, perm, P)
        return machine

    machine = benchmark.pedantic(body, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"N": N_PERM, "Qr": machine.reads, "Qw": machine.writes, "Q": machine.cost}
    )


@pytest.mark.parametrize("algorithm", ["naive", "sort_based"])
def test_spmxv(benchmark, algorithm):
    conf, values, x = spmxv_instance(1_024, 4, "random", 2)
    fn = {"naive": spmxv_naive, "sort_based": spmxv_sort_based}[algorithm]

    def body():
        machine = AEMMachine.for_algorithm(P)
        ma = load_matrix(machine, conf, values)
        xa = load_vector(machine, x)
        fn(machine, ma, xa, conf, P)
        return machine

    machine = benchmark.pedantic(body, rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"N": 1_024, "delta": 4, "Qr": machine.reads, "Qw": machine.writes,
         "Q": machine.cost}
    )
