"""A2 (ablation) — the price of external pointer blocks where both schemes fit.

Regenerates ablation A2 (see DESIGN.md section 6 and EXPERIMENTS.md).
"""


def test_a2_pointer_ablation(experiment):
    experiment("a2")
