"""A1 (ablation) — the mergesort fan-out d: levels vs per-round overhead.

Regenerates ablation A1 (see DESIGN.md section 6 and EXPERIMENTS.md).
"""


def test_a1_fanout_ablation(experiment):
    experiment("a1")
