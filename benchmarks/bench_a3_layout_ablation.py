"""A3 (ablation) — column-major vs row-major layout for the direct SpMxV.

Regenerates ablation A3 (see DESIGN.md section 6 and EXPERIMENTS.md).
"""


def test_a3_layout_ablation(experiment):
    experiment("a3")
