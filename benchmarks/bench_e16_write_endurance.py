"""E16 — write volume and wear across the sorters (the NVM endurance view).

Regenerates experiment E16 (see DESIGN.md's experiment index).
"""


def test_e16_write_endurance(experiment):
    experiment("e16")
