"""E4 — the Sec. 3.1 merge costs O(omega(n+m)) reads / O(n+m) writes; Lemma 3.1 active <= m.

Regenerates experiment E04 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e04_merge_primitive(experiment):
    experiment("e4")
