"""E9 — Lemma 4.3: flash-model simulation volume <= 2N + 2QB/omega; Corollary 4.4.

Regenerates experiment E09 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e09_flash_reduction(experiment):
    experiment("e9")
