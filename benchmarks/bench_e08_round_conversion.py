"""E8 — Lemma 4.1: round-based conversion on 2M memory costs only a constant factor.

Regenerates experiment E08 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e08_round_conversion(experiment):
    experiment("e8")
