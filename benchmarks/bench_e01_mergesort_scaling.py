"""E1 — AEM mergesort cost is Theta(omega n log_{omega m} n) (Sec. 3, Thm 3.2 + recurrence).

Regenerates experiment E01 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e01_mergesort_scaling(experiment):
    experiment("e1")
