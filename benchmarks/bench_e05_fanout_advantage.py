"""E5 — omega*m-way fan-out beats the classic m-way EM mergesort as omega grows.

Regenerates experiment E05 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e05_fanout_advantage(experiment):
    experiment("e5")
