"""Micro-benchmarks of the simulator's primitives.

These time the *simulator* (not the model): block I/O dispatch, capacity
ledger, trace recording — the per-I/O overhead every experiment pays. They
guard against performance regressions that would make the larger sweeps
impractical.
"""

import numpy as np

from repro.atoms.atom import make_atoms
from repro.core.params import AEMParams
from repro.machine.aem import AEMMachine
from repro.machine.streams import scan_copy

P = AEMParams(M=256, B=16, omega=8)


def _loaded_machine(n_atoms=4_096, record=False):
    machine = AEMMachine.for_algorithm(P, record=record)
    addrs = machine.load_input(make_atoms(range(n_atoms)))
    return machine, addrs


def test_read_release_throughput(benchmark):
    machine, addrs = _loaded_machine()

    def body():
        for addr in addrs:
            machine.release(machine.read(addr))

    benchmark(body)
    benchmark.extra_info["ios"] = len(addrs)


def test_scan_copy_throughput(benchmark):
    machine, addrs = _loaded_machine()
    benchmark(scan_copy, machine, addrs)
    benchmark.extra_info["blocks"] = len(addrs)


def test_trace_recording_overhead(benchmark):
    machine, addrs = _loaded_machine(record=True)

    def body():
        machine.trace.clear()
        scan_copy(machine, addrs)

    benchmark(body)
    benchmark.extra_info["ops_per_run"] = 2 * len(addrs)


def test_permutation_compose(benchmark):
    rng = np.random.default_rng(0)
    from repro.atoms.permutation import Permutation

    a = Permutation.random(100_000, rng)
    b = Permutation.random(100_000, rng)
    benchmark(a.compose, b)
