"""Micro-benchmarks of the simulator's primitives.

These time the *simulator* (not the model): block I/O dispatch, capacity
ledger, observer notification, trace recording — the per-I/O overhead
every experiment pays. They guard against performance regressions that
would make the larger sweeps impractical, and in particular pin the cost
of the event bus: the no-extra-observer fast path should stay within
noise of the seed's hard-wired counters.
"""

import numpy as np
import pytest

from conftest import make_machine
from repro.atoms.atom import make_atoms
from repro.core.params import AEMParams
from repro.machine.streams import scan_copy
from repro.observe import TraceRecorder, WearMap

P = AEMParams(M=256, B=16, omega=8)

#: Machine-bound shape for the counting fast path: at B=128 payload copies
#: dominate a full run's wall time, which is what counting mode removes.
P_WIDE = AEMParams(M=1024, B=128, omega=8)


def _loaded_machine(n_atoms=4_096, observers=(), params=P, counting=False):
    machine = make_machine(params, observers=observers, counting=counting)
    addrs = machine.load_input(make_atoms(range(n_atoms)))
    return machine, addrs


@pytest.mark.parametrize("counting", [False, True], ids=["full", "counting"])
def test_read_release_throughput(benchmark, counting):
    machine, addrs = _loaded_machine(counting=counting)

    def body():
        for addr in addrs:
            machine.release(machine.read(addr))

    benchmark(body)
    benchmark.extra_info["ios"] = len(addrs)
    benchmark.extra_info["counting"] = counting


@pytest.mark.parametrize("counting", [False, True], ids=["full", "counting"])
def test_scan_copy_throughput(benchmark, counting):
    machine, addrs = _loaded_machine(counting=counting)
    benchmark(scan_copy, machine, addrs)
    benchmark.extra_info["blocks"] = len(addrs)
    benchmark.extra_info["counting"] = counting


@pytest.mark.parametrize("counting", [False, True], ids=["full", "counting"])
def test_scan_copy_wide_blocks(benchmark, counting):
    """The counting fast path's headline case: B=128 block streaming."""
    machine, addrs = _loaded_machine(
        n_atoms=65_536, params=P_WIDE, counting=counting
    )
    benchmark(scan_copy, machine, addrs)
    benchmark.extra_info["blocks"] = len(addrs)
    benchmark.extra_info["counting"] = counting


def test_trace_recording_overhead(benchmark):
    recorder = TraceRecorder()
    machine, addrs = _loaded_machine(observers=[recorder])

    def body():
        recorder.clear()
        scan_copy(machine, addrs)

    benchmark(body)
    benchmark.extra_info["ops_per_run"] = 2 * len(addrs)


def test_observer_dispatch_overhead(benchmark):
    """Full observer complement: recorder + wear map on every I/O."""
    recorder = TraceRecorder()
    wear = WearMap()
    machine, addrs = _loaded_machine(observers=[recorder, wear])

    def body():
        recorder.clear()
        wear.clear()
        scan_copy(machine, addrs)

    benchmark(body)
    benchmark.extra_info["observers"] = len(machine.observers)
    benchmark.extra_info["ops_per_run"] = 2 * len(addrs)


def test_permutation_compose(benchmark):
    rng = np.random.default_rng(0)
    from repro.atoms.permutation import Permutation

    a = Permutation.random(100_000, rng)
    b = Permutation.random(100_000, rng)
    benchmark(a.compose, b)
