"""Benchmark harness support.

Each ``bench_eXX_*.py`` regenerates one experiment from DESIGN.md's index
(the paper has no tables/figures; the experiments are their stand-ins).
pytest-benchmark measures the simulator's wall time; the scientific payload
— exact I/O counts, fitted constants, pass/fail checks — is attached to
``benchmark.extra_info`` and printed, so ``pytest benchmarks/
--benchmark-only`` yields both a timing table and the reproduction tables.
"""

from __future__ import annotations

import pytest

from repro.engine import ExperimentConfig
from repro.experiments import run_experiment
from repro.machine import AEMMachine


def make_machine(params, *, observers=(), slack: float = 4.0, **kwargs) -> AEMMachine:
    """Fresh machine on the instrumented construction API.

    Benchmarks attach observers here (trace recorders, wear maps) instead
    of using legacy flags, so they measure exactly the dispatch path the
    experiments pay. Extra keywords (``counting=True``) pass through to the
    constructor.
    """
    return AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, **kwargs
    )


@pytest.fixture
def machine_factory():
    """Fixture form of :func:`make_machine`."""
    return make_machine


def run_and_report(benchmark, eid: str, *, quick: bool = True, config=None):
    """Run one experiment exactly once under the benchmark timer.

    Benchmarks measure the execution cost itself, so the default config is
    serial and cache-less — a cache hit would time the JSON loader, not
    the simulator. Pass an explicit :class:`ExperimentConfig` to benchmark
    other engine policies (e.g. parallel fan-out).
    """
    cfg = config or ExperimentConfig.from_quick(quick)
    result = benchmark.pedantic(
        run_experiment, args=(eid, cfg), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = result.eid
    benchmark.extra_info["title"] = result.title
    benchmark.extra_info["checks"] = {k: bool(v) for k, v in result.checks.items()}
    benchmark.extra_info["passed"] = result.passed
    print()
    print(result.render())
    failing = [k for k, ok in result.checks.items() if not ok]
    assert not failing, f"{eid} failing checks: {failing}"
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture form of :func:`run_and_report`."""

    def _run(eid: str, *, quick: bool = True):
        return run_and_report(benchmark, eid, quick=quick)

    return _run
