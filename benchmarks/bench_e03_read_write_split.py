"""E3 — O(omega n log) reads vs only O(n log) writes (Thm 3.2).

Regenerates experiment E03 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e03_read_write_split(experiment):
    experiment("e3")
