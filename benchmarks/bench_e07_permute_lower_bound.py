"""E7 — the Sec. 4.2 counting lower bound is sound below every measured cost and tight vs the shape (Thm 4.5).

Regenerates experiment E07 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e07_permute_lower_bound(experiment):
    experiment("e7")
