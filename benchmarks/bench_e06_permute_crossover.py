"""E6 — permuting upper bound min{N + omega n, omega n log_{omega m} n}: the crossover in B (Thm 4.5).

Regenerates experiment E06 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e06_permute_crossover(experiment):
    experiment("e6")
