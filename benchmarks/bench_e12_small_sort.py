"""E12 — the base case sorts N' <= omega M in O(omega n') reads / O(n') writes (Lemma 4.2 of Blelloch et al.).

Regenerates experiment E12 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e12_small_sort(experiment):
    experiment("e12")
