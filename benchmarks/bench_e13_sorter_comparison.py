"""E13 — mergesort, samplesort and heapsort all meet O(omega n log_{omega m} n).

Regenerates experiment E13 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e13_sorter_comparison(experiment):
    experiment("e13")
