"""E2 — no omega < B assumption; the pointer-table baseline fails past omega ~ B (Sec. 3).

Regenerates experiment E02 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e02_omega_exceeds_b(experiment):
    experiment("e2")
