"""E14 — the min of Thm 4.5 switches branches at B* ~ c omega log N / log(3 e omega m).

Regenerates experiment E14 (see DESIGN.md's experiment index and
EXPERIMENTS.md for the recorded outcome).
"""


def test_e14_regime_boundary(experiment):
    experiment("e14")
