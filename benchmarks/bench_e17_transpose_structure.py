"""E17 — tiled transposition vs generic permuting: structure beats generality.

Regenerates experiment E17 (see DESIGN.md's experiment index).
"""


def test_e17_transpose_structure(experiment):
    experiment("e17")
