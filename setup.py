"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel`` package, so
PEP-660 editable installs (which build a wheel) fail. This shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path. All real
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro-aem=repro.cli:main"]},
)
