"""repro — reproduction of *Lower Bounds in the Asymmetric External Memory
Model* (Jacob & Sitchinava, SPAA 2017).

The package provides:

* :mod:`repro.machine` — an exact (M, B, omega)-AEM cost simulator, plus
  the symmetric EM model, the ARAM, and the unit-cost flash model, all
  built on one instrumented :class:`~repro.machine.core.MachineCore`;
* :mod:`repro.observe` — the machine-event bus observers: cost accounting,
  trace recording, wear maps, progress readout;
* :mod:`repro.atoms` — indivisible atoms and permutations;
* :mod:`repro.trace` — straight-line programs, recording, replay, and the
  liveness/usefulness analyses behind the Section 4 machinery;
* :mod:`repro.sorting` — the paper's Section 3 AEM mergesort and the
  comparator algorithms (sample sort, heapsort, EM mergesort, the
  pointer-in-memory mergesort that needs omega < B);
* :mod:`repro.permute` — permuting algorithms realizing the upper bound
  ``min{N + omega*n, omega*n*log_{omega m} n}``;
* :mod:`repro.rounds` — the Lemma 4.1 round-based conversion;
* :mod:`repro.flashred` — the Lemma 4.3 reduction to the unit-cost flash
  model and Corollary 4.4;
* :mod:`repro.core` — closed-form bounds, the exact Section 4.2 counting
  lower bound, and regime analysis;
* :mod:`repro.spmxv` — sparse-matrix dense-vector multiplication: layouts,
  the direct and sorting-based algorithms, and the Theorem 5.1 bound;
* :mod:`repro.workloads`, :mod:`repro.analysis` — generators, curve
  fitting, sweeps and tables for the experiment suite;
* :mod:`repro.engine` — the sweep-execution engine: process-pool fan-out
  with deterministic record ordering, a content-addressed on-disk
  measurement cache (resumable sweeps), and :class:`ExperimentConfig`,
  the one object describing how an experiment run executes;
* :mod:`repro.telemetry` — durable observability artifacts: a labeled
  metrics registry fed by :class:`MetricsObserver`, Chrome-trace/Perfetto
  export (:class:`PerfettoObserver`), JSONL run manifests, engine task
  spans, and the ``BENCH_*.json`` benchmark-trajectory gate.

Quickstart::

    from repro import AEMParams, AEMMachine, make_atoms, aem_mergesort

    p = AEMParams(M=64, B=8, omega=8)
    machine = AEMMachine.for_algorithm(p)
    addrs = machine.load_input(make_atoms(keys))
    out = aem_mergesort(machine, addrs, p)
    print(machine.cost, machine.reads, machine.writes)
"""

from .atoms import Atom, Permutation, make_atoms
from .engine import ExperimentConfig, ResultCache, SweepEngine, use_engine
from .core import (
    AEMParams,
    counting_lower_bound,
    counting_lower_bound_general,
    permute_lower_shape,
    permute_upper_shape,
    sort_upper_shape,
)
from .machine import (
    AEMMachine,
    CapacityError,
    FlashMachine,
    MachineCore,
    aram_machine,
    em_machine,
)
from .machine.cost import CostRecord
from .observe import (
    CostObserver,
    MachineObserver,
    ProgressObserver,
    TraceRecorder,
    WearMap,
)
from .structures import ExternalPQ
from .telemetry import (
    ChromeTraceBuilder,
    EngineTelemetry,
    MetricsObserver,
    MetricsRegistry,
    PerfettoObserver,
)
from .trace import Program, Recorder, capture

__version__ = "1.1.0"

__all__ = [
    "AEMMachine",
    "AEMParams",
    "Atom",
    "CapacityError",
    "ChromeTraceBuilder",
    "CostObserver",
    "CostRecord",
    "EngineTelemetry",
    "ExperimentConfig",
    "ExternalPQ",
    "FlashMachine",
    "MachineCore",
    "MachineObserver",
    "MetricsObserver",
    "MetricsRegistry",
    "Permutation",
    "PerfettoObserver",
    "Program",
    "ProgressObserver",
    "Recorder",
    "ResultCache",
    "SweepEngine",
    "TraceRecorder",
    "WearMap",
    "__version__",
    "aram_machine",
    "capture",
    "use_engine",
    "counting_lower_bound",
    "counting_lower_bound_general",
    "em_machine",
    "make_atoms",
    "permute_lower_shape",
    "permute_upper_shape",
    "sort_upper_shape",
]
