"""Validity checks for round-based programs.

A program is *round-based* (Section 4) when its I/Os split into rounds of
bounded cost and its internal memory is empty at every round boundary.
Both properties are checkable purely from a trace:

* round costs are read off the op sequence;
* memory emptiness falls out of the liveness analysis — no atom's
  residency interval (source read -> consuming write) may straddle a
  boundary.

These checks make the Lemma 4.1 converter falsifiable: the tests run them
on every converted program, alongside replay validation and final-state
equivalence with the original.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.errors import TraceError
from ..trace.analysis import liveness_intervals
from ..trace.program import Program


@dataclass(frozen=True)
class RoundBasedReport:
    rounds: int
    max_round_cost: float
    min_nonfinal_round_cost: float
    max_live_at_boundary: int
    peak_live: int


def verify_round_based(
    program: Program,
    *,
    budget: float | None = None,
    memory_limit: int | None = None,
    reference: Program | None = None,
) -> RoundBasedReport:
    """Verify round structure, boundary emptiness, replay and equivalence.

    Parameters
    ----------
    budget:
        Maximum allowed round cost; defaults to ``2*omega*m + m`` — the
        Lemma 4.1 converter's guarantee on the doubled-memory machine
        (note ``program.params`` already carries the doubled M, so the
        default is computed from the *original* m = params.m / 2).
    memory_limit:
        Maximum number of concurrently live atoms (default: the program's
        own ``params.M``).
    reference:
        If given, the two programs' final output atoms must agree.
    """
    if not program.round_boundaries:
        raise TraceError("program has no recorded round boundaries")
    if program.round_boundaries[0] != 0:
        raise TraceError("first round must start at op 0")

    p = program.params
    if budget is None:
        # params.m is the doubled-memory m; the original machine had m/2.
        orig_m = max(1, p.m // 2)
        budget = 2 * p.omega * orig_m + orig_m
    if memory_limit is None:
        memory_limit = p.M

    # Round costs.
    costs = []
    for ops in program.rounds():
        costs.append(sum(program.op_cost(op) for op in ops))
    for i, c in enumerate(costs):
        if c > budget + 1e-9:
            raise TraceError(
                f"round {i} costs {c}, exceeding the budget {budget}"
            )

    # Memory emptiness at boundaries and overall residency.
    live = liveness_intervals(program)
    boundary_live = [
        len(live.live_at(b)) for b in program.round_boundaries[1:]
    ] or [0]
    max_boundary = max(boundary_live)
    if max_boundary > 0:
        bad = program.round_boundaries[1:][boundary_live.index(max_boundary)]
        raise TraceError(
            f"{max_boundary} atoms live across the round boundary at op {bad}; "
            "a round-based program must have empty internal memory there"
        )
    peak = live.peak(list(range(len(program.ops) + 1)))
    if peak > memory_limit:
        raise TraceError(
            f"peak residency {peak} atoms exceeds the memory limit {memory_limit}"
        )

    # Replay consistency (and, if given, output equivalence).
    final = program.replay(validate=True)
    if reference is not None:
        ref_final = reference.replay(validate=True)
        for addr in program.output_addrs:
            mine = tuple(getattr(a, "uid", None) for a in final.get(addr, ()))
            theirs = tuple(
                getattr(a, "uid", None) for a in ref_final.get(addr, ())
            )
            if mine != theirs:
                raise TraceError(
                    f"output block {addr} differs from the reference program"
                )

    return RoundBasedReport(
        rounds=len(program.round_boundaries),
        max_round_cost=max(costs, default=0.0),
        min_nonfinal_round_cost=min(costs[:-1], default=0.0),
        max_live_at_boundary=max_boundary,
        peak_live=peak,
    )
