"""Lemma 4.1: convert any AEM program into a round-based program.

A *round-based* program performs its I/Os in rounds of bounded cost with
internal memory empty at every round boundary — the structure the counting
lower bound (Section 4.2) and the flash reduction (Section 4.1) need.

The construction follows the lemma's proof, executed concretely on a
recorded trace:

1. Segment the original program P into rounds of cost at most ``omega*m``
   (each non-final round exceeds ``omega*m - omega``, by greedy maximality).
2. Simulate each round on a machine with doubled internal memory, split
   into M' (the original memory image) and M'' (a buffer for the round's
   writes):

   * at round start, *reload* M' — read back the memory image spilled at
     the previous round's end (``<= m`` reads);
   * reads of blocks written earlier in the same round are served from M''
     and *dropped* from the trace (they cost nothing);
   * writes are *deferred* to the round's end (same count, same payload);
   * at round end, flush M'' and *spill* the atoms that the liveness
     analysis shows must survive in memory (``<= m`` writes).

The converted program's cost exceeds the original's by at most
``m + omega*m`` per round against a round cost of at least
``omega*(m-1)`` — a constant factor (:data:`LEMMA_4_1_CONSTANT` in
:mod:`repro.core.counting` budgets 6). Its rounds each cost at most
``2*omega*m + m`` and run within ``2M`` atoms of memory, which is what the
generalized counting bound is evaluated against in the soundness
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import AEMParams, ceil_div
from ..trace.analysis import liveness_intervals, segment_rounds
from ..trace.ops import Op, ReadOp, WriteOp
from ..trace.program import Program


@dataclass(frozen=True)
class ConversionReport:
    """What the Lemma 4.1 conversion did to a program."""

    original_cost: float
    converted_cost: float
    rounds: int
    max_round_cost: float
    max_spill_atoms: int
    dropped_reads: int

    @property
    def cost_ratio(self) -> float:
        if self.original_cost == 0:
            return 1.0
        return self.converted_cost / self.original_cost


def to_round_based(
    program: Program, *, budget: float | None = None
) -> tuple[Program, ConversionReport]:
    """Convert ``program`` into a round-based program on doubled memory.

    Returns the converted program (with ``round_boundaries`` filled in)
    and a :class:`ConversionReport`. The converted program replays to the
    same final external-memory state (validated by the caller via
    :func:`repro.rounds.verify.verify_round_based`).
    """
    p = program.params
    if budget is None:
        budget = p.omega * p.m
    boundaries = segment_rounds(program, budget=budget)
    live = liveness_intervals(program)

    # Spill area: fresh addresses above everything the program touches.
    used = set(program.initial_disk)
    for op in program.ops:
        used.add(op.addr)
    next_spill = max(used, default=-1) + 1

    new_ops: list[Op] = []
    new_bounds: list[int] = []
    pending_spill: list[tuple[int, tuple]] = []  # (addr, items) to reload
    max_round_cost = 0.0
    max_spill = 0
    dropped = 0
    omega = p.omega
    B = p.B

    edges = boundaries + [len(program.ops)]
    for r in range(len(boundaries)):
        start, end = edges[r], edges[r + 1]
        new_bounds.append(len(new_ops))
        round_cost = 0.0

        # Reload the previous round's memory image into M'.
        for addr, items in pending_spill:
            new_ops.append(
                ReadOp(addr, tuple(getattr(it, "uid", None) for it in items))
            )
            round_cost += 1.0
        pending_spill = []

        # Replay the round: reads pass through unless served by M'';
        # writes are buffered and flushed at the end.
        buffered: list[WriteOp] = []
        written_this_round: set[int] = set()
        for op in program.ops[start:end]:
            if op.is_read:
                if op.addr in written_this_round:
                    dropped += 1  # served from M'' at no I/O cost
                else:
                    new_ops.append(op)
                    round_cost += 1.0
            else:
                assert isinstance(op, WriteOp)
                buffered.append(op)
                written_this_round.add(op.addr)
        for op in buffered:
            new_ops.append(op)
            round_cost += omega

        # Spill the atoms that must survive this boundary in memory.
        if end < len(program.ops):
            live_uids = live.live_at(end)
            atoms = [live.atom_by_uid[u] for u in live_uids]
            max_spill = max(max_spill, len(atoms))
            for i in range(0, len(atoms), B):
                chunk = atoms[i : i + B]
                addr = next_spill
                next_spill += 1
                new_ops.append(
                    WriteOp(
                        addr,
                        tuple(getattr(it, "uid", None) for it in chunk),
                        tuple(chunk),
                    )
                )
                round_cost += omega
                pending_spill.append((addr, tuple(chunk)))
        max_round_cost = max(max_round_cost, round_cost)

    converted = Program(
        params=p.with_memory(2 * p.M),
        initial_disk=dict(program.initial_disk),
        ops=new_ops,
        input_addrs=list(program.input_addrs),
        output_addrs=list(program.output_addrs),
        round_boundaries=new_bounds,
    )
    report = ConversionReport(
        original_cost=program.cost,
        converted_cost=converted.cost,
        rounds=len(boundaries),
        max_round_cost=max_round_cost,
        max_spill_atoms=max_spill,
        dropped_reads=dropped,
    )
    return converted, report
