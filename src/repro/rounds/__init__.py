"""The Lemma 4.1 round-based program conversion and its verifier."""

from .convert import ConversionReport, to_round_based
from .verify import RoundBasedReport, verify_round_based

__all__ = [
    "ConversionReport",
    "RoundBasedReport",
    "to_round_based",
    "verify_round_based",
]
