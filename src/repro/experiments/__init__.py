"""The experiment suite (E1–E14): one experiment per quantitative claim.

The paper has no evaluation tables or figures; DESIGN.md's experiment
index maps each theorem/lemma/section claim to an experiment here. Every
experiment returns an :class:`~repro.experiments.common.ExperimentResult`
with rendered tables and named pass/fail checks; the benchmarks, the CLI
and EXPERIMENTS.md all consume the same functions.
"""

from . import (  # noqa: F401 — importing registers each experiment
    a1_fanout_ablation,
    a2_pointer_ablation,
    a3_layout_ablation,
    e01_mergesort_scaling,
    e02_omega_exceeds_b,
    e03_read_write_split,
    e04_merge_primitive,
    e05_fanout_advantage,
    e06_permute_crossover,
    e07_permute_lower_bound,
    e08_round_conversion,
    e09_flash_reduction,
    e10_spmxv_crossover,
    e11_spmxv_lower_bound,
    e12_small_sort,
    e13_sorter_comparison,
    e14_regime_boundary,
    e15_memory_scaling,
    e16_write_endurance,
    e17_transpose_structure,
    e18_index_build,
    e19_query_serving,
)
from .common import (
    REGISTRY,
    ExperimentConfig,
    ExperimentResult,
    experiment_order,
    measure_permute,
    measure_sort,
    measure_spmxv,
    natural_key,
    run_all,
    run_experiment,
)

__all__ = [
    "REGISTRY",
    "ExperimentConfig",
    "ExperimentResult",
    "experiment_order",
    "measure_permute",
    "measure_sort",
    "measure_spmxv",
    "natural_key",
    "run_all",
    "run_experiment",
]
