"""E19 — per-query serving cost vs k, posting lengths, omega (ISSUE E17).

The query path is the read-heavy half of the search engine: DAAT top-k
evaluation touches lexicon, skip, and postings blocks but never writes.
Empirically:

* every measured query phase has ``Qw == 0`` — serving is pure reads;
* because of that, the per-query cost is *invariant in omega*: the same
  index layout is traversed read-for-read whatever the write premium;
* conjunctive evaluation (rarest-term driver + skip-to-block probes) is
  never costlier than disjunctive evaluation of the same queries, and
  longer queries (more terms) cost more;
* counting and full machines agree bit-for-bit — including on the
  *results*, since ranking works on scheduling tokens — which is what
  makes the million-query record affordable.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..workloads.search.measures import measure_search_query
from .common import ExperimentConfig, ExperimentResult, register


@register("e19")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    base = AEMParams(M=128, B=16, omega=8)
    N = 2_500 if quick else 20_000
    n_queries = 30 if quick else 200
    ks = [1, 8] if quick else [1, 4, 16]
    tpqs = [2] if quick else [2, 3]
    omegas = [1.0, 8.0] if quick else [1.0, 8.0, 64.0]
    res = ExperimentResult(
        eid="E19",
        title="Query serving: per-query cost vs k, query shape, omega",
        claim=(
            "DAAT serving reads lexicon/skip/postings blocks and writes "
            "nothing, so its cost is omega-invariant — reads are the "
            "cheap currency of the AEM   [Sec. 1 asymmetry]"
        ),
    )

    points = [
        (mode, k, tpq)
        for mode in ("and", "or")
        for k in ks
        for tpq in tpqs
    ]
    recs = sweep_map(
        measure_search_query,
        [
            {
                "N": N,
                "params": base,
                "n_queries": n_queries,
                "k": k,
                "mode": mode,
                "terms_per_query": tpq,
                "seed": 5,
            }
            for mode, k, tpq in points
        ],
    )
    costs: dict[tuple, dict] = {}
    for (mode, k, tpq), rec in zip(points, recs):
        costs[(mode, k, tpq)] = rec
        res.records.append(
            {
                "N": N,
                "n_queries": n_queries,
                "mode": mode,
                "k": k,
                "terms_per_query": tpq,
                **rec,
            }
        )

    res.tables.append(
        format_table(
            ["mode", "terms/query"] + [f"k={k}" for k in ks],
            [
                [mode, tpq] + [costs[(mode, k, tpq)]["Q"] for k in ks]
                for mode in ("and", "or")
                for tpq in tpqs
            ],
            title=f"E19a: query-phase cost Q for {n_queries} queries, "
            f"N={N}, {base.describe()}",
        )
    )

    # Omega sweep at a fixed query shape: layout and traversal are
    # decided by the data alone, so reads (and hence Q: Qw == 0) match.
    omega_recs = sweep_map(
        measure_search_query,
        [
            {
                "N": N,
                "params": AEMParams(M=base.M, B=base.B, omega=om),
                "n_queries": n_queries,
                "k": ks[-1],
                "mode": "and",
                "seed": 5,
            }
            for om in omegas
        ],
    )
    res.tables.append(
        format_table(
            ["omega", "Qr", "Qw", "Q", "T"],
            [
                [om, r["Qr"], r["Qw"], r["Q"], r["T"]]
                for om, r in zip(omegas, omega_recs)
            ],
            title="E19b: the same queries under different write premiums",
        )
    )
    for om, r in zip(omegas, omega_recs):
        res.records.append(
            {"N": N, "n_queries": n_queries, "omega": om, "mode": "and", **r}
        )

    res.check(
        "every query phase performs zero writes (Qw == 0)",
        all(r["Qw"] == 0 for r in recs + omega_recs),
    )
    res.check(
        "conjunctive evaluation never costs more than disjunctive",
        all(
            costs[("and", k, tpq)]["Q"] <= costs[("or", k, tpq)]["Q"]
            for k in ks
            for tpq in tpqs
        ),
    )
    res.check(
        "per-query cost is omega-invariant (identical Qr/Qw/T across omega)",
        len(
            {
                (r["Qr"], r["Qw"], r["T"], r["Q"])
                for r in omega_recs
            }
        )
        == 1,
    )

    # Counting-vs-full parity, asserted directly (outside the engine);
    # measure_search_query verifies *results* against the reference in
    # both modes, so this pairs costs and rankings at once.
    pair_cfg = dict(N=1_200, params=base, n_queries=25, k=4, seed=9)
    full = dict(measure_search_query(**pair_cfg, counting=False))
    fast = dict(measure_search_query(**pair_cfg, counting=True))
    res.check("counting and full costs are bit-identical (paired config)", full == fast)

    if not quick:
        big = measure_search_query(
            100_000,
            AEMParams(M=4096, B=64, omega=8),
            n_queries=1_000_000,
            zipf_a=1.05,
            seed=0,
            verify=False,
            counting=True,
        )
        res.records.append(
            {
                "N": 100_000,
                "n_queries": 1_000_000,
                "mode": "and",
                "counting": True,
                **big,
            }
        )
        res.notes.append(
            f"million-query serve (counting mode): Q={big.Q:.0f}, "
            f"Qr={big.Qr}, Qw={big.Qw}"
        )
        res.check(
            "million-query serve produced a write-free record",
            big.Qr > 0 and big.Qw == 0,
        )
    return res
