"""E16 — write volume and endurance across the sorters.

The paper's motivation is not only that NVM writes are *slow* but that
they *wear the device out*. This experiment measures, for every sorter on
one instance: total write I/Os (the endurance budget consumed), the
hottest block's write count (wear concentration), and the write share of
total cost. The claims: the omega*m-fan-out sorters write a ~constant
number of passes independent of omega, so their write volume undercuts the
symmetric mergesort's by the ratio of level counts; and every algorithm
here writes out-of-place, so wear never concentrates.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..sorting.base import SORTERS, verify_sorted_output
from ..workloads.generators import sort_input
from .common import ExperimentConfig, ExperimentResult, register

NAMES = ["aem_mergesort", "aem_samplesort", "aem_heapsort", "aem_pqsort", "em_mergesort"]


@register("e16")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=64, B=8, omega=16)
    N = 8_000 if quick else 32_000
    res = ExperimentResult(
        eid="E16",
        title="Write volume and endurance",
        claim=(
            "omega*m-fan-out sorters keep write volume at a few passes "
            "regardless of omega; all sorters write out-of-place, so wear "
            "never concentrates on hot blocks"
        ),
    )
    atoms = sort_input(N, "uniform", np.random.default_rng(16))
    n = p.n(N)
    rows = []
    writes = {}
    wear_ok = True
    for name in NAMES:
        machine = AEMMachine.for_algorithm(p)
        addrs = machine.load_input(atoms)
        out = SORTERS[name](machine, addrs, p)
        verify_sorted_output(machine, atoms, out)
        wear = machine.wear()
        writes[name] = machine.writes
        wear_ok &= wear.max_writes <= max(8, machine.writes // 8)
        rows.append(
            [
                name,
                machine.writes,
                machine.writes / n,
                f"{100 * p.omega * machine.writes / machine.cost:.0f}%",
                wear.max_writes,
                f"{wear.mean_writes:.2f}",
            ]
        )
        res.records.append(
            {
                "sorter": name,
                "Qw": machine.writes,
                "write_passes": machine.writes / n,
                "max_wear": wear.max_writes,
            }
        )
    res.tables.append(
        format_table(
            ["sorter", "write I/Os", "write passes (Qw/n)",
             "write share of Q", "max wear", "mean wear"],
            rows,
            title=f"E16: N={N} on {p.describe()}",
        )
    )
    res.check(
        "AEM mergesort writes fewer I/Os than the symmetric mergesort",
        writes["aem_mergesort"] < writes["em_mergesort"],
    )
    res.check(
        "AEM mergesort write volume is a few passes (Qw/n <= 4)",
        writes["aem_mergesort"] / n <= 4.0,
    )
    res.check(
        "no sorter concentrates wear on a hot block",
        wear_ok,
    )
    res.check(
        "every AEM-native sorter beats the EM baseline on writes",
        all(
            writes[s] <= writes["em_mergesort"]
            for s in ("aem_mergesort", "aem_samplesort", "aem_heapsort")
        ),
    )
    return res
