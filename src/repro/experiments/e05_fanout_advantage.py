"""E5 — the omega*m-way fan-out beats the classic m-way mergesort.

Claim (Section 1/3): the AEM mergesort's recursion has fan-out
``omega*m``, so its level count is ``log_{omega m} n`` against the
Aggarwal–Vitter mergesort's ``log_m n`` — and each EM level pays
``omega`` on a full write pass. Empirically: the EM baseline's cost
exceeds the AEM mergesort's, increasingly so as omega grows, tracking the
predicted ratio within a constant.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..analysis.sweep import sweep_map
from ..core.bounds import em_sort_shape, sort_upper_shape
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("e5")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    # A small m makes the log-base gap dominate the constants: with m = 2
    # the EM mergesort is a binary merge (log_2 levels) while the AEM
    # fan-out omega*m collapses the tree to 2 levels for omega >= 16.
    M, B = 32, 16
    N = 8_192 if quick else 16_384
    omegas = [1, 4, 16, 32]
    res = ExperimentResult(
        eid="E5",
        title="Fan-out advantage: omega*m-way vs m-way",
        claim=(
            "AEM mergesort costs O(omega n log_{omega m} n); the classic "
            "m-way mergesort on the same machine costs "
            "O((1+omega) n log_m n) — a growing disadvantage in omega"
        ),
    )
    rows = []
    advantages = []
    recs = sweep_map(
        measure_sort,
        [
            {"sorter": s, "N": N, "params": AEMParams(M=M, B=B, omega=omega), "seed": 5}
            for omega in omegas
            for s in ("aem_mergesort", "em_mergesort")
        ],
    )
    for i, omega in enumerate(omegas):
        p = AEMParams(M=M, B=B, omega=omega)
        ours, baseline = recs[2 * i], recs[2 * i + 1]
        predicted = em_sort_shape(N, p) / sort_upper_shape(N, p)
        measured = baseline["Q"] / ours["Q"]
        advantages.append(measured)
        rows.append([omega, ours["Q"], baseline["Q"], measured, predicted])
        res.records.append(
            {
                "omega": omega,
                "aem_Q": ours["Q"],
                "em_Q": baseline["Q"],
                "measured_ratio": measured,
                "predicted_ratio": predicted,
            }
        )
    res.tables.append(
        format_table(
            ["omega", "AEM msort Q", "EM msort Q", "EM/AEM measured", "predicted"],
            rows,
            title=f"E5: N={N}, M={M}, B={B}",
        )
    )
    res.check(
        "AEM mergesort wins for omega >= 16",
        all(a > 1.0 for a, o in zip(advantages, omegas) if o >= 16),
    )
    res.check(
        "EM mergesort wins at omega = 1 (it is the right symmetric algorithm)",
        advantages[0] < 1.0,
    )
    res.check(
        "advantage grows with omega",
        all(advantages[i] < advantages[i + 1] for i in range(len(advantages) - 1)),
    )
    res.check(
        "advantage within 4x of predicted shape ratio",
        all(
            0.25 < row[3] / max(row[4], 1e-9) < 4.0
            for row in rows
            if row[0] >= 16
        ),
    )
    return res
