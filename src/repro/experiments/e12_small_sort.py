"""E12 — the small-array base case (Blelloch et al. Lemma 4.2).

Claim: an array of ``N' <= omega*M`` atoms sorts in ``O(omega*n')`` reads
and ``O(n')`` writes. Empirically: reads track ``ceil(N'/M) * n'``
(selection passes times scan cost, <= omega*n') and writes stay within a
whisker of one output pass ``n'``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import fit_constant
from ..analysis.tables import format_table
from ..core.params import AEMParams, ceil_div
from ..machine.aem import AEMMachine
from ..sorting.base import verify_sorted_output
from ..sorting.runs import run_of_input
from ..sorting.small import small_sort
from ..workloads.generators import sort_input
from .common import ExperimentConfig, ExperimentResult, register


@register("e12")
def run(config: ExperimentConfig) -> ExperimentResult:
    p = AEMParams(M=128, B=16, omega=8)
    cap = p.base_case_size()  # omega * M
    fractions = [0.1, 0.25, 0.5, 0.75, 1.0]
    res = ExperimentResult(
        eid="E12",
        title="Small-array sort (the Section 3 base case)",
        claim=(
            "N' <= omega*M sorts in O(omega n') reads and O(n') writes "
            "[Blelloch et al., Lemma 4.2, used by Sec. 3]"
        ),
    )
    rows = []
    reads, read_shapes, writes, write_shapes = [], [], [], []
    for frac in fractions:
        N = max(p.B, int(cap * frac))
        atoms = sort_input(N, "uniform", np.random.default_rng(N))
        machine = AEMMachine.for_algorithm(p)
        addrs = machine.load_input(atoms)
        out = small_sort(machine, run_of_input(machine, addrs), p)
        verify_sorted_output(machine, atoms, out.addrs)
        n_prime = p.n(N)
        passes = ceil_div(N, p.M)
        rows.append(
            [
                N,
                passes,
                machine.reads,
                passes * n_prime,
                machine.writes,
                n_prime,
                p.omega * n_prime,
            ]
        )
        reads.append(machine.reads)
        read_shapes.append(passes * n_prime)
        writes.append(machine.writes)
        write_shapes.append(n_prime)
        res.records.append(
            {"N": N, "reads": machine.reads, "writes": machine.writes,
             "passes": passes}
        )
    fit_r = fit_constant(reads, read_shapes)
    fit_w = fit_constant(writes, write_shapes)
    res.tables.append(
        format_table(
            ["N'", "passes", "reads", "passes*n'", "writes", "n'", "w*n' cap"],
            rows,
            title=f"E12: small sort up to omega*M = {cap} on {p.describe()}",
        )
    )
    res.notes.append(f"read fit: {fit_r.describe()}; write fit: {fit_w.describe()}")
    res.check("reads = passes * n' exactly (constant 1.0)",
              all(r == s for r, s in zip(reads, read_shapes)))
    res.check("reads <= omega * n' (the lemma's cap)",
              all(row[2] <= row[6] for row in rows))
    res.check("writes within one block of n'",
              all(abs(w - s) <= 1 for w, s in zip(writes, write_shapes)))
    return res
