"""E1 — AEM mergesort cost scales as Theta(omega * n * log_{omega m} n).

Claim (Section 3, Theorem 3.2 + recurrence): the AEM mergesort sorts N
atoms at total cost ``O(omega*n*log_{omega m} n)``. Empirically: over a
sweep of N at fixed (M, B, omega), the ratio of measured cost to the shape
``omega*n*levels(n)`` is a stable constant.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant, growth_exponent
from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.bounds import sort_read_shape, sort_upper_shape, sort_write_shape
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("e1")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=256, B=16, omega=8)
    # Start above the base-case size omega*M = 2048 so every point
    # exercises real merge levels (the base case is E12's subject).
    # The 128k point became affordable with the counting fast path (the
    # engine runs measure_sort on a payload-free machine when asked).
    Ns = [4_000, 8_000, 16_000] if quick else [
        4_000, 8_000, 16_000, 32_000, 64_000, 128_000
    ]
    res = ExperimentResult(
        eid="E1",
        title="AEM mergesort scaling",
        claim="Q(mergesort) = Theta(omega * n * log_{omega m} n)   [Sec. 3]",
    )
    rows = []
    measured, shapes = [], []
    measured_r, shapes_r = [], []
    measured_w, shapes_w = [], []
    recs = sweep_map(
        measure_sort,
        [{"sorter": "aem_mergesort", "N": N, "params": p, "seed": N} for N in Ns],
    )
    for N, rec in zip(Ns, recs):
        shape = sort_upper_shape(N, p)
        rows.append(
            [N, rec.Qr, rec.Qw, rec.Q, shape, rec.Q / shape]
        )
        measured.append(rec.Q)
        shapes.append(shape)
        measured_r.append(rec.Qr)
        shapes_r.append(sort_read_shape(N, p))
        measured_w.append(rec.Qw)
        shapes_w.append(sort_write_shape(N, p))
        res.records.append({**rec.as_dict(), "N": N, "shape": shape})

    fit = fit_constant(measured, shapes)
    fit_r = fit_constant(measured_r, shapes_r)
    fit_w = fit_constant(measured_w, shapes_w)
    res.tables.append(
        format_table(
            ["N", "Qr", "Qw", "Q", "shape w*n*log", "Q/shape"],
            rows,
            title=f"E1: mergesort cost vs N on {p.describe()}",
        )
    )
    res.notes.append(f"total-cost fit: {fit.describe()}")
    res.notes.append(f"read fit: {fit_r.describe()}; write fit: {fit_w.describe()}")
    exponent = growth_exponent(Ns, measured)
    res.notes.append(f"log-log growth exponent of Q in N: {exponent:.3f}")

    res.check("cost/shape ratio stable (spread < 2)", fit.spread < 2.0)
    res.check("reads/shape ratio stable (spread < 2)", fit_r.spread < 2.0)
    res.check("writes/shape ratio stable (spread < 2)", fit_w.spread < 2.0)
    res.check(
        "growth ~ n log n (exponent in (0.9, 1.25))", 0.9 < exponent < 1.25
    )
    return res
