"""A2 (ablation) — what do external pointer blocks cost?

The paper's merge stores the per-run pointers ``b[i]`` in external memory
to remove the ``omega < B`` assumption. This ablation quantifies the price
of that design in the regime where *both* schemes fit (omega well below B):
the internal-table variant skips all pointer-block I/O, so the difference
is exactly the paper's "O(n) pointer writes plus O(omega*m/B) pointer reads
per round" overhead — which should be a small fraction of the total.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("a2")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    N = 8_000 if quick else 24_000
    res = ExperimentResult(
        eid="A2",
        title="Ablation: external vs in-memory merge pointers",
        claim=(
            "externalizing b[i] costs only amortized O(n) extra writes and "
            "O(omega*m/B) reads per round — a small constant fraction"
        ),
    )
    rows = []
    overheads = []
    points = [(128, 16, 1), (128, 16, 2), (128, 16, 4), (256, 32, 4)]
    a2_recs = sweep_map(
        measure_sort,
        [
            {"sorter": s, "N": N, "params": AEMParams(M=M, B=B, omega=omega), "seed": 88}
            for M, B, omega in points
            for s in ("aem_mergesort", "pointer_mergesort")
        ],
    )
    for i, (M, B, omega) in enumerate(points):
        p = AEMParams(M=M, B=B, omega=omega)
        ext, internal = a2_recs[2 * i], a2_recs[2 * i + 1]
        overhead = ext["Q"] / internal["Q"] - 1.0
        overheads.append(overhead)
        rows.append(
            [
                f"{M}/{B}/{omega:g}",
                internal["Q"],
                ext["Q"],
                f"{100 * overhead:.1f}%",
                ext["Qw"] - internal["Qw"],
            ]
        )
        res.records.append(
            {
                "M": M,
                "B": B,
                "omega": omega,
                "internal_Q": internal["Q"],
                "external_Q": ext["Q"],
                "overhead": overhead,
            }
        )
    res.tables.append(
        format_table(
            ["M/B/omega", "internal-table Q", "external (paper) Q",
             "overhead", "extra writes"],
            rows,
            title=f"A2: the price of external pointers at N={N} (omega << B)",
        )
    )
    res.check(
        "external pointers cost at most 40% extra where both schemes fit",
        all(o <= 0.40 for o in overheads),
    )
    res.check(
        "external pointers are never cheaper (the overhead is real)",
        all(o >= 0 for o in overheads),
    )
    return res
