"""A1 (ablation) — is d = omega*m actually the right mergesort fan-out?

The Section 3 recurrence divides by ``d`` per level, so the level count is
``log_d(n)`` — minimized by the paper's ``d = omega*m``. But the merge's
per-round overhead (two-block initialization, the identify pass, pointer
peeks) grows with the fan-in ``k = d``: Theorem 3.2's round reads are
``Sum_i(N_i/B + 1) <= m + k``. At finite sizes these pull against each
other: among fan-outs achieving the *same* level count the smallest is
cheapest, while ``d = omega*m`` buys the minimal level count, which is what
dominates as N grows. The ablation sweeps d on one input and verifies this
two-regime structure — the design choice is an asymptotic one, near-optimal
(within a small factor) at laptop sizes, exactly optimal in level count.
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.cost import CostRecord
from ..sorting.base import verify_sorted_output
from ..sorting.mergesort import sort_run
from ..sorting.runs import run_of_input
from ..workloads.generators import sort_input
from .common import ExperimentConfig, ExperimentResult, register


def _levels(N: int, p: AEMParams, d: int) -> int:
    base = p.base_case_size()
    if N <= base:
        return 1
    return 1 + math.ceil(math.log(N / base) / math.log(d))


@register("a1")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=64, B=8, omega=8)  # fanout omega*m = 64
    N = 6_000 if quick else 20_000
    fanouts = [2, 4, 8, 16, 32, 64]
    res = ExperimentResult(
        eid="A1",
        title="Ablation: mergesort fan-out d",
        claim=(
            "d = omega*m minimizes the level count log_d n (the asymptotic "
            "driver); per-round overhead grows with d, so among equal-level "
            "fan-outs the smallest wins at finite N"
        ),
    )
    atoms = sort_input(N, "uniform", np.random.default_rng(77))
    rows = []
    costs, levels = [], []
    for d in fanouts:
        machine = AEMMachine.for_algorithm(p)
        addrs = machine.load_input(atoms)
        out = sort_run(machine, run_of_input(machine, addrs), p, fanout=d)
        verify_sorted_output(machine, atoms, list(out.addrs))
        lv = _levels(N, p, d)
        costs.append(machine.cost)
        levels.append(lv)
        rows.append([d, lv, machine.reads, machine.writes, machine.cost])
        rec = CostRecord.from_snapshot(machine.snapshot(), peak=machine.mem.peak)
        res.records.append({"fanout": d, "levels": lv, **rec})
    res.tables.append(
        format_table(
            ["fan-out d", "levels", "Qr", "Qw", "Q"],
            rows,
            title=f"A1: sorting N={N} on {p.describe()} with the fan-out dialed down",
        )
    )
    best = min(costs)
    best_d = fanouts[costs.index(best)]
    res.notes.append(
        f"cheapest fan-out at this N: d = {best_d} "
        f"(d = omega*m costs {costs[-1] / best:.2f}x the best)"
    )

    res.check(
        "d = omega*m achieves the minimal level count",
        levels[-1] == min(levels),
    )
    res.check(
        "the optimum is an intermediate fan-out: levels pull it above "
        "d = 4, per-round overhead can pull it below omega*m",
        best_d >= 4,
    )
    res.check(
        "binary fan-out (many levels) is the most expensive",
        costs[0] == max(costs),
    )
    res.check(
        "d = omega*m is near-optimal (within 2x of the best)",
        costs[-1] <= 2.0 * best,
    )
    res.check(
        "within the minimal-level group, per-round overhead makes larger d "
        "monotonically dearer",
        all(
            costs[i] <= costs[i + 1]
            for i in range(len(fanouts) - 1)
            if levels[i] == min(levels) and levels[i + 1] == min(levels)
        ),
    )
    return res
