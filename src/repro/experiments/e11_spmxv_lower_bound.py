"""E11 — Theorem 5.1: the SpMxV lower bound is sound and shape-matching.

Claims:
* (soundness) the exact evaluation of the proof's final display is below
  the measured cost of both algorithms on every applicable instance (the
  bound is existential over conformations; measured random conformations
  can only cost more than the easiest instance, so LB <= measured is the
  correct direction);
* (tightness) the bound's shape matches the sorting-based upper bound
  within a constant in the log regime — the theorem's punchline.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..spmxv.bounds import (
    spmxv_counting_general,
    spmxv_lower_shape,
    spmxv_min_rounds,
    spmxv_sort_shape,
    theorem_5_1_applicable,
    theorem_5_1_exact,
)
from ..analysis.sweep import sweep_map
from ..api.measures import measure_spmxv
from .common import ExperimentConfig, ExperimentResult, register


@register("e11")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    grid = [
        (2_048, 2, AEMParams(M=64, B=8, omega=2)),
        (2_048, 4, AEMParams(M=64, B=8, omega=2)),
        (4_096, 2, AEMParams(M=128, B=16, omega=4)),
    ]
    if not quick:
        grid += [
            (8_192, 4, AEMParams(M=128, B=16, omega=4)),
            (8_192, 8, AEMParams(M=64, B=8, omega=8)),
        ]
    res = ExperimentResult(
        eid="E11",
        title="SpMxV lower bound (Theorem 5.1)",
        claim=(
            "multiplying a column-major sparse matrix by a vector costs "
            "Omega(min{H, omega h log_{omega m}(N/max{delta,B})}) for "
            "semiring programs"
        ),
    )
    rows = []
    sound = True
    shape_ratios = []
    spmxv_recs = sweep_map(
        measure_spmxv,
        [
            {"algorithm": a, "N": N, "delta": delta, "params": p, "seed": N % 31}
            for N, delta, p in grid
            for a in ("naive", "sort_based")
        ],
    )
    for i, (N, delta, p) in enumerate(grid):
        lb = theorem_5_1_exact(N, delta, p)
        rounds_lb = spmxv_min_rounds(N, delta, p)
        general = spmxv_counting_general(N, delta, p)
        applicable = theorem_5_1_applicable(N, delta, p)
        naive, sortb = spmxv_recs[2 * i], spmxv_recs[2 * i + 1]
        best = min(naive["Q"], sortb["Q"])
        sound &= max(lb.cost, general) <= naive["Q"] and max(
            lb.cost, general
        ) <= sortb["Q"]
        lower_shape = spmxv_lower_shape(N, delta, p)
        upper_shape = spmxv_sort_shape(N, delta, p)
        shape_ratios.append(upper_shape / max(lower_shape, 1e-9))
        rows.append(
            [
                N,
                delta,
                f"{p.M}/{p.B}/{p.omega:g}",
                "yes" if applicable else "no",
                lb.cost,
                rounds_lb.cost,
                general,
                naive["Q"],
                sortb["Q"],
            ]
        )
        res.records.append(
            {
                "N": N,
                "delta": delta,
                "lb_display": lb.cost,
                "lb_rounds": rounds_lb.cost,
                "lb_general": general,
                "naive_Q": naive["Q"],
                "sort_Q": sortb["Q"],
                "applicable": applicable,
            }
        )
    res.tables.append(
        format_table(
            ["N", "delta", "M/B/w", "assumptions?", "LB display",
             "LB rounds", "LB general", "direct Q", "sort Q"],
            rows,
            title="E11: Theorem 5.1 (display / round-count / general-program "
            "forms) vs measured costs",
        )
    )
    res.notes.append(
        "the bound is existential over conformations: LB <= measured must "
        "hold for every conformation, including the random ones measured here"
    )
    res.check("LB <= measured cost for both algorithms everywhere", sound)
    res.check(
        "lower/upper shapes within a constant (ratio < 16, log regime)",
        all(r < 16 for r in shape_ratios),
    )
    res.check(
        "exact bounds are non-trivial (positive) somewhere",
        any(row[4] > 0 or row[5] > 0 for row in rows),
    )
    res.check(
        "the round-count form dominates the simplified display everywhere",
        all(row[5] >= 0.5 * row[4] for row in rows),
    )
    return res
