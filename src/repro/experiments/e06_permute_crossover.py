"""E6 — the permutation upper-bound crossover.

Claim (Theorem 4.5, upper side): permuting costs
``O(min{N + omega*n, omega*n*log_{omega m} n})`` — direct gathering wins
on small/fat-block instances, sorting wins when ``omega*log_{omega m} n``
beats ``B``. Empirically: sweeping B at fixed N, M, omega moves the
crossover; the adaptive chooser tracks the per-instance minimum of the two
measured costs within a small tolerance.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..core.regimes import find_crossover
from ..api.measures import measure_permute
from .common import ExperimentConfig, ExperimentResult, register


@register("e6")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    # Full size raised from 16_384 once the counting fast path made the
    # sort-based arm cheap to simulate at scale.
    N = 4_096 if quick else 32_768
    omega = 8
    Bs = [2, 4, 8, 16, 32, 64]
    res = ExperimentResult(
        eid="E6",
        title="Permuting: direct vs sort-based crossover",
        claim=(
            "permuting costs O(min{N + omega n, omega n log_{omega m} n}); "
            "the winner flips as B grows (naive pays ~N reads regardless of "
            "B, sorting amortizes by blocks)   [Thm 4.5 upper bound]"
        ),
    )
    rows = []
    winners = []
    adaptive_overhead = []
    strategies = ["naive", "sort_based", "adaptive"]
    recs = sweep_map(
        measure_permute,
        [
            {
                "permuter": s,
                "N": N,
                "params": AEMParams(M=8 * B, B=B, omega=omega),
                "seed": 9,
            }
            for B in Bs
            for s in strategies
        ],
    )
    by_point = {
        (B, s): rec
        for (B, s), rec in zip(
            ((B, s) for B in Bs for s in strategies), recs
        )
    }
    for B in Bs:
        naive = by_point[(B, "naive")]
        sortb = by_point[(B, "sort_based")]
        adaptive = by_point[(B, "adaptive")]
        best = min(naive["Q"], sortb["Q"])
        winner = "naive" if naive["Q"] <= sortb["Q"] else "sort"
        winners.append(winner)
        adaptive_overhead.append(adaptive["Q"] / best)
        rows.append(
            [B, naive["Q"], sortb["Q"], winner, adaptive["Q"], adaptive["Q"] / best]
        )
        res.records.append(
            {
                "B": B,
                "naive_Q": naive["Q"],
                "sort_Q": sortb["Q"],
                "adaptive_Q": adaptive["Q"],
                "winner": winner,
            }
        )
    crossover = find_crossover(Bs, lambda b: winners[Bs.index(b)] == "sort", "B")
    res.tables.append(
        format_table(
            ["B", "naive Q", "sort Q", "winner", "adaptive Q", "adapt/best"],
            rows,
            title=f"E6: N={N}, omega={omega}, M=8B; sweep B",
        )
    )
    if crossover.at is not None:
        res.notes.append(
            f"sort-based permuting starts winning at B = {crossover.at} "
            f"(naive still ahead at B = {crossover.before})"
        )
    else:
        res.notes.append("naive wins across the whole sweep")

    res.check("naive wins at the smallest B", winners[0] == "naive")
    res.check("sort-based wins at the largest B", winners[-1] == "sort")
    res.check(
        "winner flips exactly once across the sweep",
        sum(
            1
            for i in range(len(winners) - 1)
            if winners[i] != winners[i + 1]
        )
        == 1,
    )
    res.check(
        "adaptive chooser within 1.6x of the best strategy everywhere",
        max(adaptive_overhead) < 1.6,
    )
    return res
