"""E2 — the Section 3 mergesort needs no ``omega < B`` assumption.

Claim (Section 3): of the previously published AEM sorters, mergesort
relied on ``omega < B`` (its per-run pointer table lives in internal
memory); the paper's variant stores pointers externally and achieves the
same cost for *any* omega. Empirically: on a machine with physical memory
2M, the pointer-table variant raises CapacityError once ``omega*m``
pointers no longer fit, while the paper's variant completes at every
omega with a stable cost constant.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant
from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.bounds import sort_upper_shape
from ..core.params import AEMParams
from ..machine.errors import CapacityError
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("e2")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    M, B = 128, 16
    # Keep N > omega*M throughout so the merge (and hence the pointer
    # table) is actually exercised at every omega.
    omegas = [1, 2, 4, 8, 16, 32]
    N = 6_000 if quick else 20_000
    res = ExperimentResult(
        eid="E2",
        title="Mergesort beyond omega = B",
        claim=(
            "paper's mergesort: O(omega n log_{omega m} n) for any omega; "
            "pointer-in-memory variant requires omega*m words resident "
            "and fails once omega >> B   [Sec. 3]"
        ),
    )
    rows = []
    ours_measured, ours_shapes = [], []
    pointer_failed_at = None
    pointer_ok_through = 0
    # The paper's variant is exception-free, so its sweep fans out through
    # the engine; the pointer variant is *expected* to raise CapacityError
    # at large omega, which is a per-call control-flow probe, so it stays
    # inline.
    params = [AEMParams(M=M, B=B, omega=omega) for omega in omegas]
    ours_recs = sweep_map(
        measure_sort,
        [
            {"sorter": "aem_mergesort", "N": N, "params": p, "seed": 17, "slack": 2.0}
            for p in params
        ],
    )
    for omega, p, ours in zip(omegas, params, ours_recs):
        shape = sort_upper_shape(N, p)
        ours_measured.append(ours["Q"])
        ours_shapes.append(shape)
        try:
            theirs = measure_sort("pointer_mergesort", N, p, seed=17, slack=2.0)
            status = f"Q={theirs['Q']:.0f}"
            pointer_ok_through = omega
        except CapacityError:
            status = "CapacityError"
            if pointer_failed_at is None:
                pointer_failed_at = omega
        rows.append(
            [omega, ours["Q"], ours["Q"] / shape, status, omega * p.m]
        )
        res.records.append(
            {"omega": omega, "ours_Q": ours["Q"], "pointer_status": status}
        )
    fit = fit_constant(ours_measured, ours_shapes)
    res.tables.append(
        format_table(
            ["omega", "ours Q", "ours Q/shape", "pointer variant", "table size w*m"],
            rows,
            title=f"E2: sweep omega on M={M}, B={B}, N={N} (physical memory 2M)",
        )
    )
    res.notes.append(f"ours fit across all omega: {fit.describe()}")
    if pointer_failed_at is not None:
        res.notes.append(
            f"pointer variant fails from omega = {pointer_failed_at} "
            f"(table omega*m = {pointer_failed_at * (M // B)} words vs 2M = {2*M})"
        )

    res.check("paper's mergesort succeeds at every omega", True)
    res.check(
        "ours cost/shape constant stable across omega (spread < 3)",
        fit.spread < 3.0,
    )
    res.check(
        "pointer variant works while omega <= B/2",
        pointer_ok_through >= B // 2,
    )
    res.check(
        "pointer variant fails near omega ~ B (the paper's threshold)",
        pointer_failed_at is not None and B // 2 <= pointer_failed_at <= 4 * B,
    )
    return res
