"""E8 — Lemma 4.1: round-based conversion costs only a constant factor.

Claim: any AEM program of cost Q converts to a round-based program on a
(2M, B, omega)-AEM with cost O(Q). Empirically: converting the recorded
traces of real algorithms (both permuters, across instances) yields cost
ratios bounded well below the budgeted constant 6, rounds within the
2*omega*m + m cost cap, empty memory at every boundary (checked via the
liveness analysis), peak residency within 2M, and bit-identical outputs.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.counting import LEMMA_4_1_CONSTANT
from ..core.params import AEMParams
from ..permute.naive import permute_naive
from ..permute.sort_based import permute_sort_based
from ..trace.program import capture
from ..rounds.convert import to_round_based
from ..rounds.verify import verify_round_based
from .common import ExperimentConfig, ExperimentResult, register


@register("e8")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    configs = [
        ("naive", permute_naive, 800, AEMParams(M=64, B=8, omega=4)),
        ("sort_based", permute_sort_based, 800, AEMParams(M=64, B=8, omega=4)),
        ("naive", permute_naive, 1_600, AEMParams(M=128, B=16, omega=8)),
        ("sort_based", permute_sort_based, 1_600, AEMParams(M=128, B=16, omega=8)),
    ]
    if not quick:
        configs += [
            ("naive", permute_naive, 6_400, AEMParams(M=256, B=16, omega=2)),
            ("sort_based", permute_sort_based, 6_400, AEMParams(M=256, B=16, omega=2)),
        ]
    res = ExperimentResult(
        eid="E8",
        title="Lemma 4.1 round-based conversion",
        claim=(
            "any program of cost Q becomes a round-based program on 2M "
            "memory with cost O(Q): measured ratios stay below the "
            f"budgeted constant {LEMMA_4_1_CONSTANT:g}"
        ),
    )
    rows = []
    ratios = []
    all_valid = True
    for name, fn, N, p in configs:
        rng = np.random.default_rng(N + p.B)
        atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
        perm = Permutation.random(N, rng)
        prog = capture(p, atoms, fn, perm, p)
        conv, report = to_round_based(prog)
        try:
            rb = verify_round_based(conv, reference=prog)
            valid = True
        except Exception:
            valid = False
            all_valid = False
            rb = None
        ratios.append(report.cost_ratio)
        rows.append(
            [
                name,
                N,
                f"{p.M}/{p.B}/{p.omega:g}",
                prog.cost,
                conv.cost,
                report.cost_ratio,
                report.rounds,
                report.max_round_cost,
                rb.peak_live if rb else "-",
                "ok" if valid else "INVALID",
            ]
        )
        res.records.append(
            {
                "algorithm": name,
                "N": N,
                "Q": prog.cost,
                "Q_converted": conv.cost,
                "ratio": report.cost_ratio,
                "rounds": report.rounds,
                "valid": valid,
            }
        )
    res.tables.append(
        format_table(
            [
                "program",
                "N",
                "M/B/w",
                "Q",
                "Q'",
                "Q'/Q",
                "rounds",
                "max round cost",
                "peak live",
                "round-based?",
            ],
            rows,
            title="E8: converting real program traces (Lemma 4.1)",
        )
    )
    res.check("every converted program verifies as round-based", all_valid)
    res.check(
        f"cost ratio below the budgeted constant {LEMMA_4_1_CONSTANT:g}",
        max(ratios) <= LEMMA_4_1_CONSTANT,
    )
    res.check("cost ratio above 1 (conversion is not free)", min(ratios) >= 1.0)
    return res
