"""A3 (ablation) — how much is the column-major layout assumption worth?

Theorem 5.1 fixes the matrix layout to column-major; that is what makes the
direct algorithm's matrix accesses scattered (up to one read per entry).
Stored row-major, the same algorithm scans the matrix in ``h`` sequential
reads, leaving only the x accesses scattered. This ablation runs the direct
algorithm on both layouts of the *same matrices* and measures the gap —
the empirical content of "the layout is part of the problem".
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..spmxv.layouts import load_matrix_row_major, spmxv_naive_row_major
from ..spmxv.matrix import load_matrix, load_vector, reference_product
from ..spmxv.naive import spmxv_naive
from ..workloads.generators import spmxv_instance
from .common import ExperimentConfig, ExperimentResult, register


def _measure(p, conf, values, x, *, layout):
    machine = AEMMachine.for_algorithm(p)
    if layout == "column":
        ma = load_matrix(machine, conf, values)
        fn = spmxv_naive
    else:
        ma = load_matrix_row_major(machine, conf, values)
        fn = spmxv_naive_row_major
    xa = load_vector(machine, x)
    out = fn(machine, ma, xa, conf, p)
    y = machine.collect_output(out)
    ref = reference_product(conf, values, x)
    assert max(abs(a - b) for a, b in zip(y, ref)) < 1e-9
    return machine


@register("a3")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=128, B=16, omega=8)
    N = 1_024 if quick else 4_096
    deltas = [2, 4, 8]
    res = ExperimentResult(
        eid="A3",
        title="Ablation: column-major vs row-major layout for direct SpMxV",
        claim=(
            "the Section 5 hardness lives in the layout: row-major storage "
            "turns the direct algorithm's scattered matrix reads into a scan"
        ),
    )
    rows = []
    gaps = []
    for delta in deltas:
        conf, values, x = spmxv_instance(N, delta, "random", delta)
        col = _measure(p, conf, values, x, layout="column")
        rowm = _measure(p, conf, values, x, layout="row")
        gap = col.cost / rowm.cost
        gaps.append(gap)
        rows.append(
            [delta, delta * N, col.reads, col.cost, rowm.reads, rowm.cost,
             f"{gap:.2f}x"]
        )
        res.records.append(
            {
                "delta": delta,
                "column_Q": col.cost,
                "row_Q": rowm.cost,
                "gap": gap,
            }
        )
    res.tables.append(
        format_table(
            ["delta", "H", "col-major Qr", "col-major Q", "row-major Qr",
             "row-major Q", "col/row"],
            rows,
            title=f"A3: direct SpMxV on both layouts, N={N}, {p.describe()}",
        )
    )
    res.notes.append(
        "the remaining row-major cost is dominated by the scattered x-vector "
        "accesses, which no layout of A can remove"
    )
    res.check(
        "column-major is strictly more expensive at every density",
        all(g > 1.0 for g in gaps),
    )
    res.check(
        "the gap is substantial somewhere (>= 1.3x)",
        max(gaps) >= 1.3,
    )
    return res
