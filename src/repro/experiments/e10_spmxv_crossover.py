"""E10 — SpMxV: asymmetry flips the winner from sorting-based to direct.

Claim (Section 5 upper bounds): the direct algorithm costs ``O(H +
omega*n)`` — almost all *reads* — while the sorting-based one costs
``O(omega*h*log_{omega m}(N/max{delta,B}) + omega*n)``, i.e. ``~omega``
per transferred block either way. In the symmetric model (omega = 1)
sorting wins by its factor-B blocking; as omega grows, the direct
algorithm's read-heavy profile becomes the better deal — exactly the
``min{H, omega*h*log(...)}`` structure of the Section 5 bound. A second
sweep over delta at fixed omega shows both costs scaling linearly in the
density, with the winner set by the omega regime.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..spmxv.bounds import spmxv_naive_shape, spmxv_sort_shape
from ..api.measures import measure_spmxv
from .common import ExperimentConfig, ExperimentResult, register


@register("e10")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    N = 1_024 if quick else 4_096
    delta = 4
    M, B = 256, 16
    omegas = [1, 2, 4, 8, 16, 32]
    res = ExperimentResult(
        eid="E10",
        title="SpMxV: direct vs sorting-based",
        claim=(
            "direct: O(H + omega n), read-heavy; sorting-based: "
            "O(omega h log_{omega m}(N/max{delta,B}) + omega n); the winner "
            "flips from sorting to direct as omega grows  [Sec. 5, the "
            "min{H, omega h log} structure]"
        ),
    )
    rows = []
    winners = []
    pairs = sweep_map(
        measure_spmxv,
        [
            {
                "algorithm": alg,
                "N": N,
                "delta": delta,
                "params": AEMParams(M=M, B=B, omega=omega),
                "seed": omega,
            }
            for omega in omegas
            for alg in ("naive", "sort_based")
        ],
    )
    for i, omega in enumerate(omegas):
        p = AEMParams(M=M, B=B, omega=omega)
        naive, sortb = pairs[2 * i], pairs[2 * i + 1]
        winner = "direct" if naive["Q"] <= sortb["Q"] else "sort"
        winners.append(winner)
        rows.append(
            [
                omega,
                naive["Q"],
                spmxv_naive_shape(N, delta, p),
                sortb["Q"],
                spmxv_sort_shape(N, delta, p),
                winner,
            ]
        )
        res.records.append(
            {
                "omega": omega,
                "naive_Q": naive["Q"],
                "sort_Q": sortb["Q"],
                "winner": winner,
            }
        )
    res.tables.append(
        format_table(
            ["omega", "direct Q", "direct shape", "sort Q", "sort shape", "winner"],
            rows,
            title=f"E10a: N={N}, delta={delta}, M={M}, B={B}; sweep omega",
        )
    )

    # Density scaling at fixed asymmetry: both algorithms linear in delta.
    p8 = AEMParams(M=M, B=B, omega=8)
    deltas = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32]
    drows = []
    dpairs = sweep_map(
        measure_spmxv,
        [
            {"algorithm": alg, "N": N, "delta": d, "params": p8, "seed": d}
            for d in deltas
            for alg in ("naive", "sort_based")
        ],
    )
    for i, d in enumerate(deltas):
        naive, sortb = dpairs[2 * i], dpairs[2 * i + 1]
        drows.append([d, d * N, naive["Q"], sortb["Q"]])
        res.records.append(
            {"delta": d, "naive_Q": naive["Q"], "sort_Q": sortb["Q"]}
        )
    res.tables.append(
        format_table(
            ["delta", "H", "direct Q", "sort Q"],
            drows,
            title=f"E10b: density sweep at omega=8",
        )
    )

    res.check("sorting-based wins in the symmetric model (omega = 1)",
              winners[0] == "sort")
    res.check("direct wins at the largest omega", winners[-1] == "direct")
    res.check(
        "winner flips exactly once across the omega sweep",
        sum(1 for i in range(len(winners) - 1) if winners[i] != winners[i + 1])
        == 1,
    )
    expected = deltas[-1] / deltas[0]
    res.check(
        "both algorithms scale ~linearly in delta "
        "(cost ratio within [0.5, 1.5] of the density ratio)",
        0.5 * expected <= drows[-1][2] / drows[0][2] <= 1.5 * expected
        and 0.5 * expected <= drows[-1][3] / drows[0][3] <= 1.5 * expected,
    )
    res.check(
        "measured costs within 8x of their shapes",
        all(
            0.125 < row[1] / row[2] < 8 and 0.125 < row[3] / row[4] < 8
            for row in rows
        ),
    )
    return res
