"""E4 — the Section 3.1 merge primitive: Theorem 3.2 and Lemma 3.1.

Claims:
* merging ``omega*m`` runs of N total atoms costs ``O(omega*(n+m))`` reads
  and ``O(n+m)`` writes (Theorem 3.2);
* after each round's initialization at most ``m`` runs remain *active*
  (Lemma 3.1) — measured directly from the merge's instrumentation.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fit import fit_constant
from ..analysis.tables import format_table
from ..atoms.atom import Atom
from ..core.bounds import merge_read_shape, merge_write_shape
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..sorting.base import verify_sorted_output
from ..sorting.merge import MergeStats, multiway_merge
from ..sorting.runs import Run
from .common import ExperimentConfig, ExperimentResult, register


def _build_runs(machine: AEMMachine, k: int, per_run: int, rng) -> tuple[list, list]:
    runs, all_atoms = [], []
    uid = 0
    for _ in range(k):
        keys = np.sort(rng.integers(0, 10**8, per_run))
        atoms = [Atom(int(key), uid + t) for t, key in enumerate(keys)]
        uid += per_run
        all_atoms.extend(atoms)
        runs.append(Run.of(machine.load_input(atoms), per_run))
    return runs, all_atoms


@register("e4")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=128, B=16, omega=4)
    k = p.fanout  # omega * m runs
    sizes = [250, 500, 1_000] if quick else [250, 500, 1_000, 2_000, 4_000]
    res = ExperimentResult(
        eid="E4",
        title="The omega*m-way merge primitive",
        claim=(
            "merging omega*m runs costs O(omega*(n+m)) reads / O(n+m) writes "
            "(Thm 3.2); at most m runs are active per round (Lemma 3.1)"
        ),
    )
    rows = []
    reads, read_shapes, writes, write_shapes = [], [], [], []
    max_active_overall = 0
    rng = np.random.default_rng(42)
    for per_run in sizes:
        machine = AEMMachine.for_algorithm(p)
        runs, all_atoms = _build_runs(machine, k, per_run, rng)
        stats = MergeStats()
        out = multiway_merge(machine, runs, p, stats=stats)
        verify_sorted_output(machine, all_atoms, out.addrs)
        N = k * per_run
        rows.append(
            [
                N,
                machine.reads,
                merge_read_shape(N, p),
                machine.writes,
                merge_write_shape(N, p),
                stats.max_active,
                p.m,
            ]
        )
        reads.append(machine.reads)
        read_shapes.append(merge_read_shape(N, p))
        writes.append(machine.writes)
        write_shapes.append(merge_write_shape(N, p))
        max_active_overall = max(max_active_overall, stats.max_active)
        res.records.append(
            {
                "N": N,
                "reads": machine.reads,
                "writes": machine.writes,
                "max_active": stats.max_active,
                "rounds": len(stats.rounds),
            }
        )
    fit_r = fit_constant(reads, read_shapes)
    fit_w = fit_constant(writes, write_shapes)
    res.tables.append(
        format_table(
            ["N", "reads", "w(n+m)", "writes", "(n+m)", "max active", "m"],
            rows,
            title=f"E4: merging k={k} runs on {p.describe()}",
        )
    )
    res.notes.append(f"read fit: {fit_r.describe()}; write fit: {fit_w.describe()}")

    res.check("Lemma 3.1: active runs never exceed m", max_active_overall <= p.m)
    res.check("read constant stable (spread < 2)", fit_r.spread < 2.0)
    res.check("write constant stable (spread < 2)", fit_w.spread < 2.0)
    res.check("read constant bounded (< 12)", fit_r.max_ratio < 12.0)
    res.check("write constant bounded (< 4)", fit_w.max_ratio < 4.0)
    return res
