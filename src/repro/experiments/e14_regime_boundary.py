"""E14 — where Theorem 4.5's min switches branches.

Claim (Section 4.2 case analysis): the bound
``min{N, omega*n*log_{omega m} n}`` takes the ``omega*n*log`` branch when
``B >= c*omega*log N / log(3*e*omega*m)`` and the ``N`` branch otherwise.
Empirically: sweeping B at fixed N and omega, (a) the min's actual branch
flips where the bound terms cross, (b) the proof's predicted boundary B*
lands within a small factor of the observed flip, and (c) the exact
counting bound's value tracks the active branch's shape.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..core.counting import counting_lower_bound, theorem_4_5_shape
from ..core.params import AEMParams
from ..core.regimes import Regime, boundary_B, min_branch
from .common import ExperimentConfig, ExperimentResult, register


@register("e14")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    N = 1 << 16 if quick else 1 << 20
    omega = 8
    Bs = [2, 4, 8, 16, 32, 64, 128] if quick else [2, 4, 8, 16, 32, 64, 128, 256]
    m_blocks = 8  # keep m fixed: M = m * B
    res = ExperimentResult(
        eid="E14",
        title="Regime boundary of the permutation bound",
        claim=(
            "the min switches from the N branch to the sorting branch "
            "around B* = c*omega*logN/log(3e*omega*m)   [Sec. 4.2 cases]"
        ),
    )
    rows = []
    branches = []
    predicted = None
    for B in Bs:
        p = AEMParams(M=m_blocks * B, B=B, omega=omega)
        if predicted is None:
            predicted = boundary_B(N, p)
        branch = min_branch(N, p)
        branches.append(branch)
        shape = theorem_4_5_shape(N, p)
        exact = counting_lower_bound(N, p)
        n = p.n(N)
        sort_term = p.omega * n * max(
            1.0, math.log(max(n, 2)) / math.log(p.fanout)
        )
        rows.append(
            [B, branch.value, N, sort_term, shape, exact.cost, exact.rounds]
        )
        res.records.append(
            {
                "B": B,
                "branch": branch.value,
                "shape": shape,
                "exact_cost": exact.cost,
                "rounds": exact.rounds,
            }
        )
    res.tables.append(
        format_table(
            ["B", "min branch", "N term", "w*n*log term", "min shape",
             "exact LB", "rounds"],
            rows,
            title=f"E14: sweep B at N={N}, omega={omega}, m={m_blocks}",
        )
    )
    flip = next(
        (Bs[i] for i, b in enumerate(branches) if b == Regime.SORTING), None
    )
    res.notes.append(
        f"predicted boundary B* ~= {predicted:.1f}; "
        f"observed sorting branch from B = {flip}"
    )
    # Small B makes omega*n*log = (omega*N/B)*log huge, so the N branch
    # of the min is active; the sorting branch takes over past B*.
    res.check(
        "N branch active at the smallest B",
        branches[0] == Regime.NAIVE,
    )
    res.check(
        "sorting branch active at the largest B",
        branches[-1] == Regime.SORTING,
    )
    res.check(
        "branch flips exactly once across the sweep",
        sum(1 for i in range(len(branches) - 1) if branches[i] != branches[i + 1])
        == 1,
    )
    res.check(
        "observed flip within 8x of predicted B*",
        flip is not None and predicted is not None and flip / predicted < 8
        and predicted / flip < 8,
    )
    res.check(
        "exact counting bound <= min shape everywhere (it is a true LB)",
        all(row[5] <= row[4] * 1.0 + 1e-9 for row in rows),
    )
    return res
