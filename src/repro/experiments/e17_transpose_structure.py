"""E17 — structure beats generality: matrix transposition.

Transposition is the canonical hard-looking permutation (no locality for
the naive gather), yet a *structured* algorithm — B x B tiles, one pass —
does it in ``(1 + omega) * n`` I/Os when a tile fits in memory. The
Section 4 lower bound does not apply to a single permutation family (it
counts all N! permutations), and this experiment shows the gap in the
flesh: the generic permuters pay their min{N, omega*n*log} price on the
transpose instance while the tiled algorithm stays at two passes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..permute.base import verify_permutation_output
from ..permute.naive import permute_naive
from ..permute.sort_based import permute_sort_based
from ..primitives.transpose import transpose
from .common import ExperimentConfig, ExperimentResult, register


def _measure(p, rows, cols, fn, seed=0):
    rng = np.random.default_rng(seed)
    N = rows * cols
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
    machine = AEMMachine.for_algorithm(p)
    addrs = machine.load_input(atoms)
    out = fn(machine, addrs)
    verify_permutation_output(
        machine, atoms, out, Permutation.transpose(rows, cols)
    )
    return machine


@register("e17")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    # The gap's driver: the naive gather pays ~B reads per output block on
    # the transpose instance (each output block collects a column segment
    # scattered across B input blocks), so best-generic/tiled approaches
    # (B + omega)/(1 + omega). Sweep B at fixed omega and N.
    omega = 2
    rows = cols = 64 if quick else 128
    Bs = [2, 4, 8, 16]
    res = ExperimentResult(
        eid="E17",
        title="Structured vs generic permuting: matrix transposition",
        claim=(
            "a tiled transpose runs in exactly (1+omega)*n I/Os when B^2 "
            "fits in memory, while the naive gather pays ~(B+omega)*n on "
            "the same instance — a gap of (B+omega)/(1+omega), growing "
            "with B; the Sec. 4 lower bound counts all N! permutations, "
            "not one structured family"
        ),
    )
    rows_out = []
    gaps, predicted = [], []
    tiled_exact = True
    N = rows * cols
    for B in Bs:
        p = AEMParams(M=max(64, 2 * B * B), B=B, omega=omega)
        n = p.n(N)
        tiled = _measure(p, rows, cols, lambda m, a: transpose(m, a, rows, cols, p))
        naive = _measure(
            p, rows, cols,
            lambda m, a: permute_naive(m, a, Permutation.transpose(rows, cols), p),
        )
        sortb = _measure(
            p, rows, cols,
            lambda m, a: permute_sort_based(m, a, Permutation.transpose(rows, cols), p),
        )
        best_generic = min(naive.cost, sortb.cost)
        gap = best_generic / tiled.cost
        gaps.append(gap)
        predicted.append((B + omega) / (1 + omega))
        tiled_exact &= tiled.reads == n and tiled.writes == n
        rows_out.append(
            [B, tiled.cost, naive.cost, sortb.cost, f"{gap:.2f}x",
             f"{predicted[-1]:.2f}x"]
        )
        res.records.append(
            {
                "B": B,
                "tiled_Q": tiled.cost,
                "naive_Q": naive.cost,
                "sort_Q": sortb.cost,
                "gap": gap,
            }
        )
    res.tables.append(
        format_table(
            ["B", "tiled Q", "naive permute Q", "sort permute Q",
             "best generic / tiled", "predicted (B+w)/(1+w)"],
            rows_out,
            title=f"E17: transposing {rows}x{cols} at omega={omega}; sweep B",
        )
    )
    res.check(
        "tiled transpose is exactly one read + one write pass",
        tiled_exact,
    )
    res.check(
        "tiled beats the best generic permuter everywhere",
        all(g > 1.0 for g in gaps),
    )
    res.check(
        "the gap grows with B",
        all(gaps[i] < gaps[i + 1] for i in range(len(gaps) - 1)),
    )
    res.check(
        "the gap tracks the predicted (B+omega)/(1+omega) within 30%",
        all(abs(g / pr - 1.0) < 0.3 for g, pr in zip(gaps, predicted)),
    )
    return res
