"""E3 — mergesort's read/write split: reads pay omega, writes do not.

Claim (Theorem 3.2 / Section 3): the AEM mergesort performs
``O(omega*n*log_{omega m} n)`` *reads* but only ``O(n*log_{omega m} n)``
*writes* — the whole point of the asymmetric design is to trade many cheap
reads for few expensive writes. Empirically: at fixed N, sweeping omega,
the write count stays flat-to-falling (larger omega raises the fan-out and
lowers the level count) while the read count grows roughly linearly in
omega.
"""

from __future__ import annotations

from ..analysis.fit import growth_exponent
from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.bounds import sort_levels
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("e3")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    M, B = 128, 16
    N = 8_000 if quick else 32_000
    omegas = [1, 2, 4, 8, 16, 32]
    res = ExperimentResult(
        eid="E3",
        title="Read/write split of the AEM mergesort",
        claim=(
            "Qr = O(omega n log_{omega m} n) but Qw = O(n log_{omega m} n): "
            "write volume per level is one pass, independent of omega  [Thm 3.2]"
        ),
    )
    rows = []
    qrs, qws = [], []
    params = [AEMParams(M=M, B=B, omega=omega) for omega in omegas]
    recs = sweep_map(
        measure_sort,
        [
            {"sorter": "aem_mergesort", "N": N, "params": p, "seed": 23}
            for p in params
        ],
    )
    for omega, p, rec in zip(omegas, params, recs):
        levels = sort_levels(N, p)
        rows.append(
            [
                omega,
                rec["Qr"],
                rec["Qw"],
                rec["Qr"] / rec["Qw"],
                levels,
                rec["Qw"] / (p.n(N) * levels),
            ]
        )
        qrs.append(rec["Qr"])
        qws.append(rec["Qw"])
        res.records.append({"omega": omega, **rec, "levels": levels})
    res.tables.append(
        format_table(
            ["omega", "Qr", "Qw", "Qr/Qw", "levels", "Qw/(n*levels)"],
            rows,
            title=f"E3: read/write split at N={N}, M={M}, B={B}",
        )
    )
    read_growth = growth_exponent(omegas, qrs)
    res.notes.append(
        f"reads grow with exponent {read_growth:.2f} in omega; "
        f"writes range [{min(qws)}, {max(qws)}]"
    )
    # Writes per level stay within a constant of one pass (n blocks).
    per_level = [
        r[5] for r in rows
    ]
    res.check(
        "writes-per-level constant bounded (max < 3)", max(per_level) < 3.0
    )
    res.check(
        "writes do not grow with omega (max/min <= 2)",
        max(qws) / min(qws) <= 2.0,
    )
    res.check(
        "reads grow roughly linearly in omega (exponent in (0.5, 1.2))",
        0.5 < read_growth < 1.2,
    )
    res.check(
        "read/write cost asymmetry pays off: Qr/Qw rises with omega",
        rows[-1][3] > rows[0][3],
    )
    return res
