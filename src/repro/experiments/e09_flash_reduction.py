"""E9 — Lemma 4.3 + Corollary 4.4: the flash-model reduction.

Claims:
* a round-based AEM permutation program of cost Q induces a unit-cost
  flash program of I/O volume at most ``2N + 2*Q*B/omega`` (measured on a
  real :class:`FlashMachine`, with correctness of the flash output
  checked);
* chaining with the flash model's permutation bound yields Corollary 4.4,
  an AEM lower bound comparable to (and for some parameters slightly
  weaker than) the direct Section 4.2 counting bound.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.counting import counting_lower_bound_general
from ..core.params import AEMParams
from ..flashmodel.sort import flash_mergesort
from ..flashred.bounds import corollary_4_4_shape
from ..flashred.reduction import reduce_to_flash
from ..machine.flash import FlashMachine
from ..permute.naive import permute_naive
from ..permute.sort_based import permute_sort_based
from ..rounds.convert import to_round_based
from ..trace.program import capture
from .common import ExperimentConfig, ExperimentResult, register


@register("e9")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    configs = [
        ("naive", permute_naive, 512, AEMParams(M=64, B=8, omega=4)),
        ("sort_based", permute_sort_based, 512, AEMParams(M=64, B=8, omega=4)),
        ("naive", permute_naive, 1_024, AEMParams(M=128, B=16, omega=2)),
        ("sort_based", permute_sort_based, 1_024, AEMParams(M=128, B=16, omega=2)),
    ]
    if not quick:
        configs += [
            ("naive", permute_naive, 4_096, AEMParams(M=128, B=32, omega=8)),
            ("sort_based", permute_sort_based, 4_096, AEMParams(M=128, B=32, omega=8)),
        ]
    res = ExperimentResult(
        eid="E9",
        title="Lemma 4.3 flash reduction and Corollary 4.4",
        claim=(
            "round-based AEM permuting of cost Q simulates in the flash "
            "model (read B/omega, write B) with volume <= 2N + 2QB/omega"
        ),
    )
    rows = []
    all_within = True
    for name, fn, N, p in configs:
        rng = np.random.default_rng(N * 3 + p.B)
        atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
        perm = Permutation.random(N, rng)
        prog = capture(p, atoms, fn, perm, p)
        conv, _ = to_round_based(prog)
        _, report = reduce_to_flash(conv)
        all_within &= report.within_bound
        # Context: a *native* flash mergesort on the same N elements —
        # the reduced program should be the same order of volume, showing
        # the reduction emits a legitimate flash program, not an artifact.
        native = FlashMachine.for_aem_reduction(
            M=max(p.M, p.B), B=p.B, omega=int(p.omega)
        )
        flash_mergesort(native, native.load_input(list(range(N))))
        rows.append(
            [
                name,
                N,
                f"{p.M}/{p.B}/{p.omega:g}",
                conv.cost,
                report.volume,
                report.bound,
                report.utilization,
                native.volume,
                "yes" if report.within_bound else "NO",
            ]
        )
        res.records.append(
            {
                "algorithm": name,
                "N": N,
                "Q": conv.cost,
                "volume": report.volume,
                "bound": report.bound,
                "native_volume": native.volume,
                "within": report.within_bound,
            }
        )
    res.tables.append(
        format_table(
            ["program", "N", "M/B/w", "Q (round-based)", "flash volume",
             "2N + 2QB/w", "utilization", "native sort vol", "within?"],
            rows,
            title="E9a: measured flash volume vs the Lemma 4.3 budget "
            "(native flash mergesort volume for scale)",
        )
    )

    # Corollary 4.4 vs the direct counting bound (both constant-free shapes
    # of the same Omega statement). The corollary subtracts the 2N scan
    # term, so it only bites once N > M^2 / Br (here M=64, Br=4 -> N > 1024).
    comp_rows = []
    for N in ([4_096, 16_384] if quick else [4_096, 16_384, 65_536]):
        p = AEMParams(M=64, B=16, omega=4)
        cor = corollary_4_4_shape(N, p)
        direct = counting_lower_bound_general(N, p)
        comp_rows.append([N, p.M, p.B, p.omega, cor, direct])
        res.records.append(
            {"N": N, "corollary_4_4": cor, "counting_general": direct}
        )
    res.tables.append(
        format_table(
            ["N", "M", "B", "omega", "Cor 4.4 shape", "counting LB (general)"],
            comp_rows,
            title="E9b: the two lower-bound routes compared",
        )
    )

    res.check("flash volume within the Lemma 4.3 budget everywhere", all_within)
    res.check(
        "both lower-bound routes are non-trivial at large N",
        all(row[4] > 0 and row[5] > 0 for row in comp_rows[-1:]),
    )
    return res
