"""E18 — search-index build cost vs omega and merge fan-in (ISSUE E16).

The search engine's index build is the paper's sort pipeline on a real
workload: run generation, then a layered merge whose fan-in can be swept
up to the Theorem 3.2 choice ``omega*m``. Empirically:

* raising the fan-in (weakly) lowers the total cost — fewer merge layers
  means fewer times every posting is rewritten, the log_{omega*m} n
  level count made visible;
* the write share ``omega*Qw / Q`` grows with omega — the build is the
  write-heavy half of the asymmetry story;
* the ``index/postings`` emission phase is write-dominated, and pricing
  it separately shows where omega bites;
* counting and full machines agree bit-for-bit on every cost field, so
  the million-posting record is produced affordably in counting mode.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..workloads.search import build_index, corpus_postings, posting_tokens
from ..workloads.search.measures import measure_index_build
from .common import ExperimentConfig, ExperimentResult, register


@register("e18")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    base = AEMParams(M=128, B=16, omega=8)
    N = 3_000 if quick else 24_000
    omegas = [2.0, 8.0] if quick else [1.0, 4.0, 16.0, 64.0]
    fanins = [2, 4, 8] if quick else [2, 4, 8, 16, 32]
    res = ExperimentResult(
        eid="E18",
        title="Search-index build: cost vs omega and merge fan-in",
        claim=(
            "the layered omega*m-way merge builds the index with "
            "O(omega n log_{omega m} n) cost; larger fan-in means fewer "
            "layers, and omega shifts the cost into writes   [Thm. 3.2]"
        ),
    )

    points = [(om, f) for om in omegas for f in fanins]
    recs = sweep_map(
        measure_index_build,
        [
            {
                "N": N,
                "params": AEMParams(M=base.M, B=base.B, omega=om),
                "fanin": f,
                "seed": 7,
            }
            for om, f in points
        ],
    )
    costs: dict[tuple, dict] = {}
    for (om, f), rec in zip(points, recs):
        costs[(om, f)] = rec
        res.records.append({"N": N, "omega": om, "fanin": f, **rec})

    res.tables.append(
        format_table(
            ["omega \\ fanin"] + [str(f) for f in fanins],
            [[om] + [costs[(om, f)]["Q"] for f in fanins] for om in omegas],
            title=f"E18a: build cost Q vs fan-in, N={N}, {base.describe()}",
        )
    )
    shares = {
        om: om * costs[(om, fanins[-1])]["Qw"] / costs[(om, fanins[-1])]["Q"]
        for om in omegas
    }
    res.tables.append(
        format_table(
            ["omega", "Qr", "Qw", "write share of Q"],
            [
                [
                    om,
                    costs[(om, fanins[-1])]["Qr"],
                    costs[(om, fanins[-1])]["Qw"],
                    round(shares[om], 3),
                ]
                for om in omegas
            ],
            title=f"E18b: read/write split at fan-in {fanins[-1]}",
        )
    )

    # Phase breakdown on a direct counting machine: the postings write
    # phase priced separately from run generation and the layered merge.
    pp = base
    corpus = corpus_postings(N, rng=7)
    machine = AEMMachine.for_algorithm(pp, counting=True)
    addrs = machine.load_input(posting_tokens(corpus))
    build_index(
        machine, addrs, pp, n_docs=corpus.n_docs, n_terms=corpus.n_terms
    )
    phases = machine.counter.phases
    # Phase costs attribute to the *innermost* phase, so the pipeline
    # stages roll up by the phases their machinery opens: run generation
    # bottoms out in the sorter's phases, the layered merge in the
    # Section 3.1 round phases, and the emission in index/postings.
    groups = {
        "run generation": ("small_sort/", "mergesort/", "index/runs"),
        "layered merge": ("merge/", "index/merge"),
        "postings emission": ("index/postings",),
    }
    agg = {
        stage: [
            sum(s.reads for n, s in phases.items() if n.startswith(pres)),
            sum(s.writes for n, s in phases.items() if n.startswith(pres)),
        ]
        for stage, pres in groups.items()
    }
    res.tables.append(
        format_table(
            ["stage", "Qr", "Qw", "Q"],
            [
                [stage, r, w, r + pp.omega * w]
                for stage, (r, w) in agg.items()
            ],
            title=f"E18c: per-stage costs at omega={pp.omega}, N={N} "
            "(innermost-phase attribution rolled up by stage)",
        )
    )

    # Counting-vs-full parity, asserted directly (outside the engine).
    pair_cfg = dict(N=1_500, params=base, fanin=4, seed=11)
    full = dict(measure_index_build(**pair_cfg, counting=False))
    fast = dict(measure_index_build(**pair_cfg, counting=True))
    res.check("counting and full costs are bit-identical (paired config)", full == fast)

    for om in omegas:
        seq = [costs[(om, f)]["Q"] for f in fanins]
        # A fan-in above binary wins (fewer merge layers -> fewer
        # writes), but the optimum is interior at finite N: very large
        # fan-in pays priming reads per layer without saving one. So the
        # claim is "some larger fan-in strictly beats binary merging",
        # not monotonicity.
        best = min(seq)
        res.check(
            f"some fan-in above 2 strictly beats binary merge at omega={om:g}",
            best < seq[0] and seq.index(best) > 0,
        )
    share_seq = [shares[om] for om in omegas]
    res.check(
        "write share of Q grows with omega",
        all(b > a for a, b in zip(share_seq, share_seq[1:])),
    )
    pr, pw = agg["postings emission"]
    res.check(
        "postings emission is write-dominated (omega*Qw > Qr)",
        pp.omega * pw > pr,
    )

    if not quick:
        big = measure_index_build(
            1_000_000,
            AEMParams(M=4096, B=64, omega=8),
            seed=0,
            verify=False,
            counting=True,
        )
        res.records.append(
            {
                "N": 1_000_000,
                "omega": 8.0,
                "fanin": None,
                "counting": True,
                **big,
            }
        )
        res.notes.append(
            f"million-posting build (counting mode): Q={big.Q:.0f}, "
            f"Qr={big.Qr}, Qw={big.Qw}, peak={big.peak_mem}"
        )
        res.check("million-posting build produced a record", big.Q > 0)
    return res
