"""E13 — all three AEM sorters meet the same bound.

Claim (Section 1/3): mergesort (the paper's), sample sort and heapsort all
sort at cost ``O(omega*n*log_{omega m} n)``. Empirically:

* on uniform inputs across a sweep of N, each sorter's measured cost fits
  the shape with a stable constant, and the constants differ only by small
  factors;
* across input distributions the costs stay within the bound; heapsort's
  replacement-selection run formation additionally *exploits*
  presortedness (sorted inputs collapse to a single run), a known property
  the table makes visible rather than hides.
"""

from __future__ import annotations

from ..analysis.fit import fit_constant
from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.bounds import em_sort_shape, heapsort_shape, sort_upper_shape
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register

AEM_SORTERS = ["aem_mergesort", "aem_samplesort", "aem_heapsort", "aem_pqsort"]

#: Each sorter is fitted against its own level structure: heapsort's runs
#: start at ~M atoms (replacement selection), the others' at omega*M; the
#: PQ sorter's fan-in is ~m (its run cursors live in memory), giving it the
#: EM mergesort's (1+omega)*n*log_m n structure — included as the
#: "structure without the Section 3 tricks" reference point.
SHAPES = {
    "aem_mergesort": sort_upper_shape,
    "aem_samplesort": sort_upper_shape,
    "aem_heapsort": heapsort_shape,
    "aem_pqsort": em_sort_shape,
}


@register("e13")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    p = AEMParams(M=128, B=16, omega=8)
    Ns = [4_000, 8_000, 16_000] if quick else [4_000, 8_000, 16_000, 32_000]
    distributions = ["uniform", "sorted", "reversed", "few_distinct"]
    res = ExperimentResult(
        eid="E13",
        title="Sorter comparison: mergesort / samplesort / heapsort",
        claim=(
            "all three sorters achieve O(omega n log_{omega m} n) "
            "unconditionally   [Sec. 1, citing Blelloch et al. + Sec. 3]"
        ),
    )
    costs: dict[tuple, float] = {}
    points = [
        (sorter, N, dist)
        for sorter in AEM_SORTERS
        for N in Ns
        for dist in distributions
    ]
    recs = sweep_map(
        measure_sort,
        [
            {"sorter": s, "N": N, "params": p, "distribution": d, "seed": N}
            for s, N, d in points
        ],
    )
    for (sorter, N, dist), rec in zip(points, recs):
        costs[(sorter, N, dist)] = rec["Q"]
        res.records.append(
            {"sorter": sorter, "N": N, "distribution": dist, **rec}
        )

    # Scaling table + fits on uniform inputs.
    rows = [[N] + [costs[(s, N, "uniform")] for s in AEM_SORTERS] for N in Ns]
    res.tables.append(
        format_table(
            ["N"] + AEM_SORTERS,
            rows,
            title=f"E13a: total cost Q on uniform keys, {p.describe()}",
        )
    )
    fits = {
        s: fit_constant(
            [costs[(s, N, "uniform")] for N in Ns],
            [SHAPES[s](N, p) for N in Ns],
        )
        for s in AEM_SORTERS
    }
    res.tables.append(
        format_table(
            ["sorter", "fit constant", "min ratio", "max ratio", "spread"],
            [[s, f.constant, f.min_ratio, f.max_ratio, f.spread] for s, f in fits.items()],
            title="E13b: cost/shape fit on uniform inputs across N "
            "(each sorter against its own level structure)",
        )
    )

    # Distribution robustness at the largest N.
    N = Ns[-1]
    drows = [
        [dist] + [costs[(s, N, dist)] for s in AEM_SORTERS]
        for dist in distributions
    ]
    res.tables.append(
        format_table(
            ["distribution"] + AEM_SORTERS,
            drows,
            title=f"E13c: distribution robustness at N={N}",
        )
    )

    constants = [f.constant for f in fits.values()]
    shape_cap = sort_upper_shape(N, p) * 12
    res.check(
        "every sorter's constant is stable across N on uniform (spread < 2)",
        all(f.spread < 2.0 for f in fits.values()),
    )
    res.check(
        "constants within 8x of each other",
        max(constants) / min(constants) < 8.0,
    )
    res.check(
        "every distribution's cost stays within 12x of the shape",
        all(c <= shape_cap for (s, n, d), c in costs.items() if n == N),
    )
    res.check(
        "heapsort exploits presortedness (sorted input cheaper than uniform)",
        costs[("aem_heapsort", N, "sorted")]
        < costs[("aem_heapsort", N, "uniform")],
    )
    res.check(
        "duplicate-heavy keys are handled at normal cost (few_distinct "
        "within 2x of uniform for every sorter)",
        all(
            costs[(s, N, "few_distinct")] <= 2.0 * costs[(s, N, "uniform")]
            for s in AEM_SORTERS
        ),
    )
    return res
