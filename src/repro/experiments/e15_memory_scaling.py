"""E15 — how cost scales with internal memory M.

The bound ``omega*n*log_{omega m} n`` says memory enters only through the
log's base: doubling M buys shallower recursion, with diminishing returns
once a couple of levels remain. Sweeping M at fixed (N, B, omega) checks
that measured sorting cost falls with M, that the exact counting lower
bound falls alongside and stays below every measurement, and that the
gains flatten once the level count bottoms out — the hierarchy-design
story implicit in the model.
"""

from __future__ import annotations

from ..analysis.sweep import sweep_map
from ..analysis.tables import format_table
from ..core.bounds import sort_levels, sort_upper_shape
from ..core.counting import counting_lower_bound_general
from ..core.params import AEMParams
from ..api.measures import measure_sort
from .common import ExperimentConfig, ExperimentResult, register


@register("e15")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    N = 16_384 if quick else 65_536
    B, omega = 8, 8
    Ms = [16, 32, 64, 128, 256, 512]
    res = ExperimentResult(
        eid="E15",
        title="Memory scaling of sorting cost",
        claim=(
            "M enters the bound only through the log base omega*m: cost "
            "falls with M, with diminishing returns once few levels remain"
        ),
    )
    rows = []
    costs, lbs = [], []
    sound = True
    params = [AEMParams(M=M, B=B, omega=omega) for M in Ms]
    recs = sweep_map(
        measure_sort,
        [
            {"sorter": "aem_mergesort", "N": N, "params": p, "seed": 15}
            for p in params
        ],
    )
    for M, p, rec in zip(Ms, params, recs):
        lb = counting_lower_bound_general(N, p)
        sound &= lb <= rec["Q"]
        costs.append(rec["Q"])
        lbs.append(lb)
        rows.append(
            [M, sort_levels(N, p), rec["Qr"], rec["Qw"], rec["Q"],
             sort_upper_shape(N, p), lb]
        )
        res.records.append(
            {"M": M, "Q": rec["Q"], "lower_bound": lb,
             "levels": sort_levels(N, p)}
        )
    res.tables.append(
        format_table(
            ["M", "levels", "Qr", "Qw", "Q", "shape", "LB (general)"],
            rows,
            title=f"E15: sorting N={N} at B={B}, omega={omega}; sweep M",
        )
    )
    first_gain = costs[0] / costs[1]
    last_gain = costs[-2] / costs[-1]
    res.notes.append(
        f"doubling M at the small end saves {100 * (1 - 1 / first_gain):.0f}% "
        f"of cost; at the large end {100 * (1 - 1 / last_gain):.0f}%"
    )
    res.check("cost falls from the smallest to the largest M",
              costs[-1] < costs[0])
    res.check("cost is weakly decreasing in M (within 10% noise)",
              all(costs[i + 1] <= 1.1 * costs[i] for i in range(len(costs) - 1)))
    res.check("the lower bound stays below every measured cost", sound)
    # No monotonicity in M is promised for the exact bound: the per-round
    # floor omega*(m-1) grows with m while the round count falls. What
    # must hold is that the measured cost tracks the shape across M.
    ratios = [c / row[5] for c, row in zip(costs, rows)]
    res.check(
        "measured cost/shape constant stable across M (spread < 2)",
        max(ratios) / min(ratios) < 2.0,
    )
    res.check(
        "diminishing returns: the last doubling helps less than the first",
        last_gain <= first_gain,
    )
    return res
