"""E7 — soundness and tightness of the Section 4.2 counting lower bound.

Claims:
* (soundness) every permuting program costs at least the counting bound:
  for arbitrary programs, ``counting_lower_bound_general`` (Corollary 4.2
  constant included) is below every measured algorithm cost; for
  *round-based* programs produced by the real Lemma 4.1 converter, the
  round count is at least the exact ``R_min`` computed for their measured
  round budget — no fudge constants anywhere in that comparison;
* (tightness, Theorem 4.5) in the sorting regime the bound is within a
  constant factor of the sort-based upper bound.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_table
from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.counting import (
    theorem_4_5_shape,
    counting_lower_bound,
    counting_lower_bound_general,
    log2_permutations_per_round,
    log2_required_permutations,
)
from ..core.params import AEMParams
from ..permute.naive import permute_naive
from ..analysis.sweep import sweep_map
from ..rounds.convert import to_round_based
from ..trace.program import capture
from ..api.measures import measure_permute
from .common import ExperimentConfig, ExperimentResult, register


@register("e7")
def run(config: ExperimentConfig) -> ExperimentResult:
    quick = config.quick
    grid = [
        (4_096, AEMParams(M=64, B=8, omega=4)),
        (4_096, AEMParams(M=256, B=16, omega=8)),
        (8_192, AEMParams(M=128, B=32, omega=2)),
    ]
    if not quick:
        grid += [
            (16_384, AEMParams(M=256, B=16, omega=16)),
            (16_384, AEMParams(M=512, B=64, omega=4)),
            (32_768, AEMParams(M=1024, B=32, omega=8)),
        ]
    res = ExperimentResult(
        eid="E7",
        title="Permutation lower bound: soundness and tightness",
        claim=(
            "any permuting algorithm costs "
            "Omega(min{N, omega n log_{omega m} n}) [Thm 4.5]; "
            "the exact counting bound sits below every measured cost"
        ),
    )
    rows = []
    sound = True
    tight_ratios = []
    perm_recs = sweep_map(
        measure_permute,
        [
            {"permuter": s, "N": N, "params": p, "seed": N % 97}
            for N, p in grid
            for s in ("naive", "sort_based")
        ],
    )
    for i, (N, p) in enumerate(grid):
        lb = counting_lower_bound_general(N, p)
        shape = theorem_4_5_shape(N, p)
        naive, sortb = perm_recs[2 * i], perm_recs[2 * i + 1]
        best = min(naive["Q"], sortb["Q"])
        sound &= lb <= naive["Q"] and lb <= sortb["Q"]
        # Tightness is a statement about the asymptotic shapes: the best
        # measured cost should sit within a constant of the Theorem 4.5
        # shape (the exact counting bound additionally pays small-scale
        # slack, which soundness — not tightness — is about).
        tight_ratios.append(best / max(shape, 1e-9))
        rows.append(
            [N, p.M, p.B, p.omega, lb, naive["Q"], sortb["Q"], best / max(shape, 1e-9)]
        )
        res.records.append(
            {
                "N": N,
                "M": p.M,
                "B": p.B,
                "omega": p.omega,
                "lower_bound": lb,
                "naive_Q": naive["Q"],
                "sort_Q": sortb["Q"],
            }
        )
    res.tables.append(
        format_table(
            ["N", "M", "B", "omega", "LB(general)", "naive Q", "sort Q",
             "best/shape"],
            rows,
            title="E7a: counting lower bound vs measured permuting costs",
        )
    )

    # Exact round-based check, no constants: capture a real program,
    # convert it with Lemma 4.1, and compare its round count against R_min
    # computed for its actual round budget on the doubled memory.
    N_rb = 1_024 if quick else 4_096
    p_rb = AEMParams(M=64, B=8, omega=4)
    rng = np.random.default_rng(123)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N_rb, N_rb))]
    perm = Permutation.random(N_rb, rng)
    prog = capture(p_rb, atoms, permute_naive, perm, p_rb)
    conv, report = to_round_based(prog)
    p2 = p_rb.with_memory(2 * p_rb.M)
    per_round = log2_permutations_per_round(
        N_rb, p2, budget=report.max_round_cost, memory=2 * p_rb.M
    )
    required = log2_required_permutations(N_rb, p2)
    r_min = int(np.ceil(required / per_round)) if per_round > 0 else 0
    res.tables.append(
        format_table(
            ["N", "rounds (converted)", "R_min (exact)", "max round cost"],
            [[N_rb, report.rounds, r_min, report.max_round_cost]],
            title="E7b: exact round-count bound on a real round-based program",
        )
    )
    res.records.append(
        {"N": N_rb, "rounds": report.rounds, "r_min": r_min}
    )

    res.check("LB <= measured cost for every algorithm and instance", sound)
    res.check(
        "round-based program uses at least R_min rounds (exact, no constants)",
        report.rounds >= r_min,
    )
    res.check(
        "best measured cost within 16x of the Theorem 4.5 shape (tightness)",
        max(tight_ratios) < 16.0,
    )
    exact_rb = counting_lower_bound(N_rb, p_rb)
    res.notes.append(
        f"direct round-based bound at (M={p_rb.M}, B={p_rb.B}, w={p_rb.omega}), "
        f"N={N_rb}: rounds >= {exact_rb.rounds}, cost >= {exact_rb.cost:.0f}"
    )
    return res
