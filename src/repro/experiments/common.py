"""Shared infrastructure for the experiment suite (E1–E14).

The paper has no tables or figures — its claims are theorems. Each
experiment here is the empirical shadow of one claim, as indexed in
DESIGN.md: it sweeps instances, measures exact I/O costs on the simulator,
prints a table, and evaluates named *checks* (the shape assertions: who
wins, what grows how fast, which inequalities hold). Benchmarks and the
CLI both call :func:`run_experiment`; EXPERIMENTS.md embeds the rendered
output.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..api import measures as _measures
from ..engine import ExperimentConfig, active_engine, use_engine
from ..machine.cost import CostRecord


@dataclass
class ExperimentResult:
    """One experiment's rendered tables plus its named checks."""

    eid: str
    title: str
    claim: str
    tables: list[str] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def render(self) -> str:
        lines = [f"## {self.eid}: {self.title}", "", f"Claim: {self.claim}", ""]
        for t in self.tables:
            lines.append(t)
            lines.append("")
        if self.notes:
            lines.extend(f"note: {n}" for n in self.notes)
            lines.append("")
        lines.append("Checks:")
        for name, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Measurement helpers — deprecation shims. The implementations moved to
# repro.api.measures (the single routing table behind repro.api); these
# wrappers keep old imports working while steering callers to the facade.
# Experiments, the CLI, and the sanitizer battery all import the new
# location, so a warning here always means third-party/legacy code.
# ----------------------------------------------------------------------
def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"repro.experiments.common.{name} is deprecated; use "
        f"repro.api.evaluate(...) or repro.api.measures.{name}",
        DeprecationWarning,
        stacklevel=3,
    )


def measure_sort(*args, **kwargs) -> CostRecord:
    """Deprecated alias for :func:`repro.api.measures.measure_sort`."""
    _warn_deprecated("measure_sort")
    return _measures.measure_sort(*args, **kwargs)


def measure_permute(*args, **kwargs) -> CostRecord:
    """Deprecated alias for :func:`repro.api.measures.measure_permute`."""
    _warn_deprecated("measure_permute")
    return _measures.measure_permute(*args, **kwargs)


def measure_spmxv(*args, **kwargs) -> CostRecord:
    """Deprecated alias for :func:`repro.api.measures.measure_spmxv`."""
    _warn_deprecated("measure_spmxv")
    return _measures.measure_spmxv(*args, **kwargs)


# ----------------------------------------------------------------------
# Registry (populated by repro.experiments.__init__).
# ----------------------------------------------------------------------
Runner = Callable[[ExperimentConfig], ExperimentResult]
REGISTRY: Dict[str, Runner] = {}

_EID_RE = re.compile(r"([a-z]+)(\d+)")


def register(eid: str) -> Callable[[Runner], Runner]:
    def deco(fn: Runner) -> Runner:
        REGISTRY[eid.lower()] = fn
        return fn

    return deco


def natural_key(eid: str) -> tuple:
    """Sort key putting ``e2`` before ``e10`` (plain sort puts it after)."""
    m = _EID_RE.fullmatch(eid.lower())
    if m:
        return (m.group(1), int(m.group(2)))
    return (eid.lower(), -1)


def experiment_order() -> list[str]:
    """Registered experiment ids in natural order (a1..a3, e1..e19)."""
    return sorted(REGISTRY, key=natural_key)


def _resolve_config(
    config: Optional[ExperimentConfig], quick: Optional[bool]
) -> ExperimentConfig:
    """Coerce the (config, legacy quick) pair into one ExperimentConfig."""
    if quick is not None:
        if config is not None:
            raise TypeError("pass either config= or the legacy quick=, not both")
        warnings.warn(
            "quick= is deprecated; pass ExperimentConfig(budget='quick'|'full')",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExperimentConfig.from_quick(quick)
    return config if config is not None else ExperimentConfig()


def _run_under_engine(runner: Runner, config: ExperimentConfig) -> ExperimentResult:
    if active_engine() is not None:
        # A caller (the CLI, run_all, a test) already installed an engine;
        # share it so cache/pool state and stats aggregate across runs.
        return runner(config)
    with use_engine(config.make_engine()):
        return runner(config)


def run_experiment(
    eid: str,
    config: Optional[ExperimentConfig] = None,
    *,
    quick: Optional[bool] = None,
) -> ExperimentResult:
    """Run one experiment by id (``"e1"``..``"e19"``, ``"a1"``..``"a3"``).

    ``config`` carries the execution policy (budget, jobs, cache, seed,
    observers); the keyword ``quick=`` is a deprecated alias for
    ``ExperimentConfig(budget=...)``.
    """
    key = eid.lower()
    if key not in REGISTRY:
        raise KeyError(f"unknown experiment {eid!r}; available: {sorted(REGISTRY)}")
    cfg = _resolve_config(config, quick)
    return _run_under_engine(REGISTRY[key], cfg)


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    quick: Optional[bool] = None,
) -> list[ExperimentResult]:
    """Run every registered experiment, in natural id order."""
    cfg = _resolve_config(config, quick)
    ids = experiment_order()
    if active_engine() is not None:
        return [REGISTRY[k](cfg) for k in ids]
    with use_engine(cfg.make_engine()):
        return [REGISTRY[k](cfg) for k in ids]
