"""Shared infrastructure for the experiment suite (E1–E14).

The paper has no tables or figures — its claims are theorems. Each
experiment here is the empirical shadow of one claim, as indexed in
DESIGN.md: it sweeps instances, measures exact I/O costs on the simulator,
prints a table, and evaluates named *checks* (the shape assertions: who
wins, what grows how fast, which inequalities hold). Benchmarks and the
CLI both call :func:`run_experiment`; EXPERIMENTS.md embeds the rendered
output.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.params import AEMParams
from ..engine import ExperimentConfig, active_engine, use_engine
from ..machine.aem import AEMMachine
from ..machine.cost import CostRecord, CostSnapshot
from ..observe.base import MachineObserver
from ..permute.base import PERMUTERS, verify_permutation_output
from ..sorting.base import COUNTING_SORTERS, SORTERS, verify_sorted_output
from ..spmxv.matrix import load_matrix, load_vector, verify_spmxv_output
from ..spmxv.naive import spmxv_naive
from ..spmxv.sort_based import spmxv_sort_based
from ..workloads.generators import permutation, sort_input, spmxv_instance


@dataclass
class ExperimentResult:
    """One experiment's rendered tables plus its named checks."""

    eid: str
    title: str
    claim: str
    tables: list[str] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def render(self) -> str:
        lines = [f"## {self.eid}: {self.title}", "", f"Claim: {self.claim}", ""]
        for t in self.tables:
            lines.append(t)
            lines.append("")
        if self.notes:
            lines.extend(f"note: {n}" for n in self.notes)
            lines.append("")
        lines.append("Checks:")
        for name, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Measurement helpers (verified runs returning typed CostRecords, which
# read like flat cost dicts). Each accepts ``observers`` — extra
# MachineObserver instances attached to the fresh machine's event bus for
# the duration of the run (wear maps, progress readouts, trace
# recorders, ...). All three are top-level functions taking only picklable
# arguments, so the sweep engine can fan them out to worker processes and
# memoize them by content hash.
# ----------------------------------------------------------------------
def measure_sort(
    sorter: str,
    N: int,
    params: AEMParams,
    *,
    distribution: str = "uniform",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run a registered sorter on a fresh machine; returns cost fields.

    ``counting=True`` requests the payload-free fast path; sorters not yet
    ported to it (:data:`~repro.sorting.base.COUNTING_SORTERS` lists the
    ported ones) fall back to a full machine with identical costs. Output
    verification needs payloads, so a counting run skips it — the paired
    full-mode runs in the test suite carry the correctness burden.
    """
    counting = counting and sorter in COUNTING_SORTERS
    atoms = sort_input(N, distribution, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    addrs = machine.load_input(atoms)
    out = SORTERS[sorter](machine, addrs, params)
    if verify and not counting:
        verify_sorted_output(machine, atoms, out)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_permute(
    permuter: str,
    N: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run a registered permuter on a fresh machine; returns cost fields.

    Every registered permuter supports ``counting=True`` (payload-free fast
    path); verification is skipped there, as it needs the output payloads.
    """
    rng = np.random.default_rng(seed)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
    perm = permutation(N, family, rng)
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    addrs = machine.load_input(atoms)
    out = PERMUTERS[permuter](machine, addrs, perm, params)
    if verify and not counting:
        verify_permutation_output(machine, atoms, out, perm)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_spmxv(
    algorithm: str,
    N: int,
    delta: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run an SpMxV algorithm on a fresh machine; returns cost fields.

    Both algorithms support ``counting=True`` (payload-free fast path);
    verification is skipped there, as it needs the output vector.
    """
    conf, values, x = spmxv_instance(N, delta, family, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    ma = load_matrix(machine, conf, values)
    xa = load_vector(machine, x)
    fn = {"naive": spmxv_naive, "sort_based": spmxv_sort_based}[algorithm]
    out = fn(machine, ma, xa, conf, params)
    if verify and not counting:
        verify_spmxv_output(machine, conf, values, x, out)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def _cost_fields(snap: CostSnapshot, *, peak: int) -> CostRecord:
    return CostRecord.from_snapshot(snap, peak=peak)


# ----------------------------------------------------------------------
# Registry (populated by repro.experiments.__init__).
# ----------------------------------------------------------------------
Runner = Callable[[ExperimentConfig], ExperimentResult]
REGISTRY: Dict[str, Runner] = {}

_EID_RE = re.compile(r"([a-z]+)(\d+)")


def register(eid: str) -> Callable[[Runner], Runner]:
    def deco(fn: Runner) -> Runner:
        REGISTRY[eid.lower()] = fn
        return fn

    return deco


def natural_key(eid: str) -> tuple:
    """Sort key putting ``e2`` before ``e10`` (plain sort puts it after)."""
    m = _EID_RE.fullmatch(eid.lower())
    if m:
        return (m.group(1), int(m.group(2)))
    return (eid.lower(), -1)


def experiment_order() -> list[str]:
    """Registered experiment ids in natural order (a1..a3, e1..e17)."""
    return sorted(REGISTRY, key=natural_key)


def _resolve_config(
    config: Optional[ExperimentConfig], quick: Optional[bool]
) -> ExperimentConfig:
    """Coerce the (config, legacy quick) pair into one ExperimentConfig."""
    if quick is not None:
        if config is not None:
            raise TypeError("pass either config= or the legacy quick=, not both")
        warnings.warn(
            "quick= is deprecated; pass ExperimentConfig(budget='quick'|'full')",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExperimentConfig.from_quick(quick)
    return config if config is not None else ExperimentConfig()


def _run_under_engine(runner: Runner, config: ExperimentConfig) -> ExperimentResult:
    if active_engine() is not None:
        # A caller (the CLI, run_all, a test) already installed an engine;
        # share it so cache/pool state and stats aggregate across runs.
        return runner(config)
    with use_engine(config.make_engine()):
        return runner(config)


def run_experiment(
    eid: str,
    config: Optional[ExperimentConfig] = None,
    *,
    quick: Optional[bool] = None,
) -> ExperimentResult:
    """Run one experiment by id (``"e1"``..``"e17"``, ``"a1"``..``"a3"``).

    ``config`` carries the execution policy (budget, jobs, cache, seed,
    observers); the keyword ``quick=`` is a deprecated alias for
    ``ExperimentConfig(budget=...)``.
    """
    key = eid.lower()
    if key not in REGISTRY:
        raise KeyError(f"unknown experiment {eid!r}; available: {sorted(REGISTRY)}")
    cfg = _resolve_config(config, quick)
    return _run_under_engine(REGISTRY[key], cfg)


def run_all(
    config: Optional[ExperimentConfig] = None,
    *,
    quick: Optional[bool] = None,
) -> list[ExperimentResult]:
    """Run every registered experiment, in natural id order."""
    cfg = _resolve_config(config, quick)
    ids = experiment_order()
    if active_engine() is not None:
        return [REGISTRY[k](cfg) for k in ids]
    with use_engine(cfg.make_engine()):
        return [REGISTRY[k](cfg) for k in ids]
