"""Shared infrastructure for the experiment suite (E1–E14).

The paper has no tables or figures — its claims are theorems. Each
experiment here is the empirical shadow of one claim, as indexed in
DESIGN.md: it sweeps instances, measures exact I/O costs on the simulator,
prints a table, and evaluates named *checks* (the shape assertions: who
wins, what grows how fast, which inequalities hold). Benchmarks and the
CLI both call :func:`run_experiment`; EXPERIMENTS.md embeds the rendered
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.cost import CostSnapshot
from ..observe.base import MachineObserver
from ..permute.base import PERMUTERS, verify_permutation_output
from ..sorting.base import SORTERS, verify_sorted_output
from ..spmxv.matrix import Conformation, load_matrix, load_vector, reference_product
from ..spmxv.naive import spmxv_naive
from ..spmxv.sort_based import spmxv_sort_based
from ..workloads.generators import permutation, sort_input, spmxv_instance


@dataclass
class ExperimentResult:
    """One experiment's rendered tables plus its named checks."""

    eid: str
    title: str
    claim: str
    tables: list[str] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(self.checks.values())

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = bool(ok)

    def render(self) -> str:
        lines = [f"## {self.eid}: {self.title}", "", f"Claim: {self.claim}", ""]
        for t in self.tables:
            lines.append(t)
            lines.append("")
        if self.notes:
            lines.extend(f"note: {n}" for n in self.notes)
            lines.append("")
        lines.append("Checks:")
        for name, ok in self.checks.items():
            lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Measurement helpers (verified runs returning flat cost dicts). Each
# accepts ``observers`` — extra MachineObserver instances attached to the
# fresh machine's event bus for the duration of the run (wear maps,
# progress readouts, trace recorders, ...).
# ----------------------------------------------------------------------
def measure_sort(
    sorter: str,
    N: int,
    params: AEMParams,
    *,
    distribution: str = "uniform",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
) -> dict:
    """Run a registered sorter on a fresh machine; returns cost fields."""
    atoms = sort_input(N, distribution, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(params, slack=slack, observers=observers)
    addrs = machine.load_input(atoms)
    out = SORTERS[sorter](machine, addrs, params)
    if verify:
        verify_sorted_output(machine, atoms, out)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_permute(
    permuter: str,
    N: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
) -> dict:
    """Run a registered permuter on a fresh machine; returns cost fields."""
    rng = np.random.default_rng(seed)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
    perm = permutation(N, family, rng)
    machine = AEMMachine.for_algorithm(params, slack=slack, observers=observers)
    addrs = machine.load_input(atoms)
    out = PERMUTERS[permuter](machine, addrs, perm, params)
    if verify:
        verify_permutation_output(machine, atoms, out, perm)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_spmxv(
    algorithm: str,
    N: int,
    delta: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
) -> dict:
    """Run an SpMxV algorithm on a fresh machine; returns cost fields."""
    conf, values, x = spmxv_instance(N, delta, family, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(params, slack=slack, observers=observers)
    ma = load_matrix(machine, conf, values)
    xa = load_vector(machine, x)
    fn = {"naive": spmxv_naive, "sort_based": spmxv_sort_based}[algorithm]
    out = fn(machine, ma, xa, conf, params)
    if verify:
        y = machine.collect_output(out)
        ref = reference_product(conf, values, x)
        err = max(
            (abs(a - b) for a, b in zip(y, ref)), default=0.0
        )
        if len(y) != N or err > 1e-9 * max(1.0, conf.H):
            raise AssertionError(
                f"spmxv output mismatch: len={len(y)} vs {N}, err={err}"
            )
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def _cost_fields(snap: CostSnapshot, *, peak: int) -> dict:
    return {
        "Q": snap.Q,
        "Qr": snap.reads,
        "Qw": snap.writes,
        "T": snap.touches,
        "peak_mem": peak,
    }


# ----------------------------------------------------------------------
# Registry (populated by repro.experiments.__init__).
# ----------------------------------------------------------------------
Runner = Callable[..., ExperimentResult]
REGISTRY: Dict[str, Runner] = {}


def register(eid: str) -> Callable[[Runner], Runner]:
    def deco(fn: Runner) -> Runner:
        REGISTRY[eid.lower()] = fn
        return fn

    return deco


def run_experiment(eid: str, *, quick: bool = True) -> ExperimentResult:
    """Run one experiment by id (``"e1"``..``"e14"``)."""
    key = eid.lower()
    if key not in REGISTRY:
        raise KeyError(f"unknown experiment {eid!r}; available: {sorted(REGISTRY)}")
    return REGISTRY[key](quick=quick)


def run_all(*, quick: bool = True) -> list[ExperimentResult]:
    return [REGISTRY[k](quick=quick) for k in sorted(REGISTRY)]
