"""Seeded workload generators for sorting, permuting and SpMxV."""

from .generators import (
    CONFORMATION_FAMILIES,
    KEY_DISTRIBUTIONS,
    PERMUTATION_FAMILIES,
    conformation,
    few_distinct_keys,
    ksorted_keys,
    natural_runs_keys,
    organ_pipe_keys,
    permutation,
    reversed_keys,
    sort_input,
    sorted_keys,
    spmxv_instance,
    uniform_keys,
    zipf_keys,
)

__all__ = [
    "CONFORMATION_FAMILIES",
    "KEY_DISTRIBUTIONS",
    "PERMUTATION_FAMILIES",
    "conformation",
    "few_distinct_keys",
    "ksorted_keys",
    "natural_runs_keys",
    "organ_pipe_keys",
    "permutation",
    "reversed_keys",
    "sort_input",
    "sorted_keys",
    "spmxv_instance",
    "uniform_keys",
    "zipf_keys",
]
