"""Seeded workload generators and the search-engine workload family."""

from . import search
from .generators import (
    CONFORMATION_FAMILIES,
    KEY_DISTRIBUTIONS,
    PERMUTATION_FAMILIES,
    conformation,
    few_distinct_keys,
    ksorted_keys,
    natural_runs_keys,
    organ_pipe_keys,
    permutation,
    reversed_keys,
    sort_input,
    sorted_keys,
    spmxv_instance,
    uniform_keys,
    zipf_keys,
)

__all__ = [
    "search",
    "CONFORMATION_FAMILIES",
    "KEY_DISTRIBUTIONS",
    "PERMUTATION_FAMILIES",
    "conformation",
    "few_distinct_keys",
    "ksorted_keys",
    "natural_runs_keys",
    "organ_pipe_keys",
    "permutation",
    "reversed_keys",
    "sort_input",
    "sorted_keys",
    "spmxv_instance",
    "uniform_keys",
    "zipf_keys",
]
