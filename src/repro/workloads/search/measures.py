"""Canonical measurement functions for the search workloads.

Mirrors :mod:`repro.api.measures`: top-level functions with picklable
arguments, one fresh machine per call, verification in full mode, a
typed :class:`~repro.machine.cost.CostRecord` out. Registered in
:mod:`repro.api.registry` as the ``index_build`` and ``search_query``
workloads, so the CLI, the experiments, and the cost-oracle server all
share one cache identity for them.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...core.params import AEMParams
from ...machine.aem import AEMMachine
from ...machine.cost import CostRecord
from ...observe.base import MachineObserver
from ...sorting.base import COUNTING_SORTERS
from .corpus import Corpus, corpus_postings, posting_atoms, posting_tokens, query_stream
from .index import SearchIndex, build_index, verify_index
from .query import reference_search, run_queries


class SearchVerificationError(AssertionError):
    """Query results diverge from the reference evaluation."""


def _build(
    machine: AEMMachine,
    corpus: Corpus,
    params: AEMParams,
    *,
    fanin: Optional[int],
    sorter: str,
) -> SearchIndex:
    items = posting_tokens(corpus) if machine.counting else posting_atoms(corpus)
    addrs = machine.load_input(items)
    return build_index(
        machine,
        addrs,
        params,
        n_docs=corpus.n_docs,
        n_terms=corpus.n_terms,
        fanin=fanin,
        sorter=sorter,
    )


def measure_index_build(
    N: int,
    params: AEMParams,
    *,
    n_docs: Optional[int] = None,
    n_terms: Optional[int] = None,
    zipf_a: float = 1.4,
    fanin: Optional[int] = None,
    sorter: str = "aem_mergesort",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Build an index over a seeded N-posting corpus; returns cost fields.

    ``counting=True`` requests the payload-free fast path (available for
    the :data:`~repro.sorting.base.COUNTING_SORTERS`; others fall back to
    a full machine with identical costs). Verification needs payloads, so
    counting runs skip it — the paired full-mode runs in the test suite
    carry the correctness burden.
    """
    counting = counting and sorter in COUNTING_SORTERS
    corpus = corpus_postings(
        N,
        n_docs=n_docs,
        n_terms=n_terms,
        zipf_a=zipf_a,
        rng=np.random.default_rng(seed),
    )
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    index = _build(machine, corpus, params, fanin=fanin, sorter=sorter)
    if verify and not counting:
        verify_index(machine, corpus, index)
    return CostRecord.from_snapshot(machine.snapshot(), peak=machine.mem.peak)


def measure_search_query(
    N: int,
    params: AEMParams,
    *,
    n_queries: int = 64,
    k: int = 8,
    mode: str = "and",
    terms_per_query: int = 2,
    n_docs: Optional[int] = None,
    n_terms: Optional[int] = None,
    zipf_a: float = 1.4,
    fanin: Optional[int] = None,
    sorter: str = "aem_mergesort",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Serve ``n_queries`` DAAT queries; returns the *query-phase* cost.

    The index is built on the same machine first, then the cost snapshot
    is rebased so the returned record prices serving alone — the
    read-only half of the asymmetry story (``Qw == 0`` by construction,
    asserted by experiment e19). One seed drives corpus then queries, so
    a ``(N, seed)`` pair names one reproducible instance end to end.
    ``peak_mem`` remains the machine-lifetime peak (the build dominates).
    """
    counting = counting and sorter in COUNTING_SORTERS
    rng = np.random.default_rng(seed)
    corpus = corpus_postings(
        N, n_docs=n_docs, n_terms=n_terms, zipf_a=zipf_a, rng=rng
    )
    queries = query_stream(
        n_queries,
        n_terms=corpus.n_terms,
        terms_per_query=terms_per_query,
        zipf_a=zipf_a,
        rng=rng,
    )
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    index = _build(machine, corpus, params, fanin=fanin, sorter=sorter)
    base = machine.snapshot()
    results = run_queries(machine, index, queries, params, k=k, mode=mode)
    if verify:
        # Results are token-derived, so this referee check runs in *both*
        # modes — counting changes nothing the ranking can observe.
        expect = reference_search(corpus, queries, k=k, mode=mode)
        if results != expect:
            bad = next(i for i, (r, e) in enumerate(zip(results, expect)) if r != e)
            raise SearchVerificationError(
                f"query {bad}: got {results[bad]!r}, expected {expect[bad]!r}"
            )
    return CostRecord.from_snapshot(
        machine.snapshot() - base, peak=machine.mem.peak
    )
