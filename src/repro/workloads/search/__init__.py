"""The search-engine workload family (ROADMAP item 1).

An external-memory search engine priced end to end on the
:class:`~repro.machine.aem.AEMMachine`:

* **corpus** — seeded synthetic corpora with a zipfian term distribution
  (:mod:`repro.workloads.search.corpus`);
* **index build** — sorted-run generation through the sorter registry,
  a layered fan-in merge mapped onto the Section 3.1
  :func:`~repro.sorting.merge.multiway_merge`, and a blocked binary
  postings layout plus lexicon (:mod:`repro.workloads.search.index`);
* **query serving** — document-at-a-time top-k conjunctive/disjunctive
  evaluation with skip-to-block (:mod:`repro.workloads.search.query`).

The build is write-heavy (every posting lands on disk at cost ``omega``),
the query path is read-only — exactly the asymmetry the paper studies.
Everything is counting-mode safe: decisions are made on scheduling
tokens, so million-posting/million-query instances run affordably on a
payload-free machine with bit-identical costs.
"""

from .corpus import (
    FREQ_CAP,
    Corpus,
    corpus_postings,
    decode_posting,
    encode_posting,
    posting_atoms,
    posting_tokens,
    query_stream,
)
from .index import PostingsList, SearchIndex, build_index, generate_runs, verify_index
from .measures import measure_index_build, measure_search_query
from .query import run_queries

__all__ = [
    "FREQ_CAP",
    "Corpus",
    "PostingsList",
    "SearchIndex",
    "build_index",
    "corpus_postings",
    "decode_posting",
    "encode_posting",
    "generate_runs",
    "measure_index_build",
    "measure_search_query",
    "posting_atoms",
    "posting_tokens",
    "query_stream",
    "run_queries",
    "verify_index",
]
