"""DAAT top-k query serving over the blocked index.

Document-at-a-time evaluation with skip-to-block:

* **Conjunctive** (``mode="and"``): the rarest term (smallest df) drives;
  its postings are streamed block by block, and every candidate doc is
  probed in the other terms through :class:`_TermCursor`, which holds one
  skip block and one postings block resident and advances monotonically —
  each skip/postings block of a term is read at most once per query.
* **Disjunctive** (``mode="or"``): a doc-ordered multiway merge over all
  terms' postings streams, summing the frequencies of equal-doc heads.

Scores are frequency sums decoded from the packed keys, so ranking works
on scheduling tokens and the *results* — not just the costs — are
bit-identical between full and counting machines. The query path issues
no writes at all: serving is the read-heavy half of the asymmetry story,
and its cost is ``omega``-invariant by construction (experiment e19
asserts both).

Result delivery is cost-free (like
:meth:`~repro.machine.aem.AEMMachine.collect_output`): the engine hands
the top-k to the caller rather than writing it back to the store.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Sequence

from ...core.params import AEMParams
from ...machine.aem import AEMMachine
from ...machine.phantom import token_of
from ...machine.streams import BlockReader
from .corpus import FREQ_CAP, Corpus
from .index import PostingsList, SearchIndex, reference_index


class _TermCursor:
    """Monotone skip-to-block cursor over one term's postings.

    Holds at most one skip block (B last-doc words) and one postings
    block (B packed keys) resident. ``advance(doc)`` walks the skip run
    forward to the first postings block that can contain ``doc``, swaps
    that block in, and bisects for the doc — every block is read at most
    once per query because ``doc`` only grows.
    """

    def __init__(self, machine: AEMMachine, plist: PostingsList, n_docs: int):
        self.machine = machine
        self.plist = plist
        self.n_docs = n_docs
        self._skip_idx = -1  # index of the resident skip block
        self._skip: list[int] = []
        self._blk_idx = -1  # global index of the resident postings block
        self._keys: list[int] = []
        self._exhausted = not plist.addrs

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def _load_skip(self, idx: int) -> None:
        if self._skip:
            self.machine.release(len(self._skip))
        blk = self.machine.read(self.plist.skip_addrs[idx])
        self._skip = [token_of(w) for w in blk]
        self._skip_idx = idx

    def _load_block(self, idx: int) -> None:
        if self._keys:
            self.machine.release(len(self._keys))
        blk = self.machine.read(self.plist.addrs[idx])
        self.machine.touch(len(blk))  # key-extraction scan
        self._keys = [token_of(item)[0] for item in blk]
        self._blk_idx = idx

    def advance(self, doc: int):
        """Frequency of ``doc`` in this term, or ``None`` if absent.

        Monotone: callers must probe docs in ascending order. Sets
        :attr:`exhausted` once the term has no postings at or past
        ``doc``.
        """
        if self._exhausted:
            return None
        B = self.machine.params.B
        if self._skip_idx < 0:
            self._load_skip(0)
        # Walk skip blocks until one ends at or past the target doc.
        while self._skip[-1] < doc:
            self.machine.touch()
            if self._skip_idx + 1 >= len(self.plist.skip_addrs):
                self._exhausted = True
                return None
            self._load_skip(self._skip_idx + 1)
        # First postings block whose last doc is >= doc.
        self.machine.touch()
        blk_idx = self._skip_idx * B + bisect_left(self._skip, doc)
        if blk_idx > self._blk_idx or self._blk_idx < 0:
            self._load_block(blk_idx)
        lo = (self.plist.term * self.n_docs + doc) * FREQ_CAP
        self.machine.touch()
        pos = bisect_left(self._keys, lo)
        if pos < len(self._keys) and self._keys[pos] < lo + FREQ_CAP:
            return self._keys[pos] - lo
        return None

    def close(self) -> None:
        held = len(self._skip) + len(self._keys)
        if held:
            self.machine.release(held)
        self._skip = []
        self._keys = []


class _TopK:
    """A k-entry min-heap of ``(score, -doc)`` with honest slot accounting."""

    def __init__(self, machine: AEMMachine, k: int):
        self.machine = machine
        self.k = k
        self.heap: list[tuple[int, int]] = []

    def offer(self, doc: int, score: int) -> None:
        self.machine.touch()
        entry = (score, -doc)
        if len(self.heap) < self.k:
            self.machine.acquire(1, "top-k entry")
            heapq.heappush(self.heap, entry)
        elif entry > self.heap[0]:
            heapq.heapreplace(self.heap, entry)

    def close(self) -> list[tuple[int, int]]:
        """Drain to ``[(doc, score), ...]``, score desc then doc asc."""
        out = [
            (-neg_doc, score)
            for score, neg_doc in sorted(
                self.heap, key=lambda e: (-e[0], -e[1])
            )
        ]
        if self.heap:
            self.machine.release(len(self.heap))
        self.heap = []
        return out


def _doc_of(key: int, n_docs: int) -> int:
    return (key // FREQ_CAP) % n_docs


def _query_and(
    machine: AEMMachine,
    plists: list[PostingsList],
    n_docs: int,
    k: int,
) -> list[tuple[int, int]]:
    """Conjunctive DAAT: rarest term drives, others are probed via skips."""
    plists = sorted(plists, key=lambda p: (p.df, p.term))
    driver, rest = plists[0], plists[1:]
    cursors = [_TermCursor(machine, p, n_docs) for p in rest]
    reader = BlockReader(machine, driver.addrs)
    topk = _TopK(machine, k)
    try:
        for item in reader:
            machine.release(1)  # taken key inspected, not kept
            key = token_of(item)[0]
            doc = _doc_of(key, n_docs)
            score = key % FREQ_CAP
            dead = False
            for cur in cursors:
                freq = cur.advance(doc)
                if cur.exhausted:
                    dead = True
                    break
                if freq is None:
                    score = -1
                    break
                score += freq
            if dead:
                break
            if score >= 0:
                topk.offer(doc, score)
    finally:
        reader.close()
        for cur in cursors:
            cur.close()
    return topk.close()


def _query_or(
    machine: AEMMachine,
    plists: list[PostingsList],
    n_docs: int,
    k: int,
) -> list[tuple[int, int]]:
    """Disjunctive DAAT: doc-ordered merge of all streams, summing freqs."""
    readers = [BlockReader(machine, p.addrs) for p in plists]
    topk = _TopK(machine, k)
    try:
        while True:
            best_doc = None
            for r in readers:
                machine.touch()
                head = r.peek()
                if head is None:
                    continue
                doc = _doc_of(token_of(head)[0], n_docs)
                if best_doc is None or doc < best_doc:
                    best_doc = doc
            if best_doc is None:
                break
            score = 0
            for r in readers:
                head = r.peek()
                if head is None:
                    continue
                key = token_of(head)[0]
                if _doc_of(key, n_docs) == best_doc:
                    score += key % FREQ_CAP
                    r.drop()
            topk.offer(best_doc, score)
    finally:
        for r in readers:
            r.close()
    return topk.close()


def run_queries(
    machine: AEMMachine,
    index: SearchIndex,
    queries: Sequence[tuple[int, ...]],
    params: AEMParams,
    *,
    k: int = 8,
    mode: str = "and",
) -> list[list[tuple[int, int]]]:
    """Evaluate ``queries`` against ``index``; one top-k list per query.

    Each query is a tuple of term ids. Phases: ``query/lookup`` (one peek
    per distinct lexicon block of the query's present terms) and
    ``query/match`` (the DAAT evaluation proper). The path performs reads
    only — the cost delta it produces has ``Qw == 0``.
    """
    if mode not in ("and", "or"):
        raise ValueError(f"unknown query mode {mode!r}")
    if k < 1:
        raise ValueError("k must be >= 1")
    results: list[list[tuple[int, int]]] = []
    for terms in queries:
        with machine.phase("query/lookup"):
            present = [t for t in terms if t in index.lexicon]
            # One read per distinct lexicon block: the term -> df lookup a
            # real engine performs before planning the evaluation.
            for addr in sorted({index.lex_block_of[t] for t in present}):
                machine.peek(addr)
        with machine.phase("query/match"):
            plists = [index.lexicon[t] for t in present]
            if not plists or (mode == "and" and len(present) < len(terms)):
                results.append([])
            elif mode == "and":
                results.append(_query_and(machine, plists, index.n_docs, k))
            else:
                results.append(_query_or(machine, plists, index.n_docs, k))
    return results


def reference_search(
    corpus: Corpus,
    queries: Sequence[tuple[int, ...]],
    *,
    k: int = 8,
    mode: str = "and",
) -> list[list[tuple[int, int]]]:
    """Plain-Python reference evaluation (the referee's answer key)."""
    ref = reference_index(corpus)
    out: list[list[tuple[int, int]]] = []
    for terms in queries:
        scores: dict[int, int] = {}
        if mode == "and":
            if all(t in ref for t in terms):
                sets = [dict(ref[t]) for t in terms]
                common = set(sets[0])
                for s in sets[1:]:
                    common &= set(s)
                scores = {d: sum(s[d] for s in sets) for d in common}
        else:
            for t in terms:
                for doc, freq in ref.get(t, ()):
                    scores[doc] = scores.get(doc, 0) + freq
        ranked = sorted(scores.items(), key=lambda e: (-e[1], e[0]))[:k]
        out.append(ranked)
    return out
