"""Seeded synthetic corpora for the search workload.

A corpus is ``N`` unique ``(term, doc, freq)`` postings with terms drawn
from a zipfian distribution (a few very common terms, a long tail) and
docs drawn uniformly. Each posting is packed into a single integer key::

    key = (term * n_docs + doc) * FREQ_CAP + freq

so that sorting by key is exactly the ``(term, doc)`` postings order and
— crucially for counting mode — the frequency needed for DAAT scoring
rides inside the scheduling token. Every data-driven decision downstream
(merge order, skip-block selection, top-k ranking) works on the packed
key alone, which is bit-identical between full and counting machines.

Everything is driven by a :class:`numpy.random.Generator` (or a seed),
matching :mod:`repro.workloads.generators`: the same seed always yields
the same corpus and the same query stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...atoms.atom import Atom
from ..generators import _rng

#: Frequencies are capped at ``FREQ_CAP - 1`` so they fit in the low
#: digits of the packed key. 255 repetitions of one term in one document
#: is plenty for ranking; the cap keeps the encoding a fixed radix.
FREQ_CAP = 256


def encode_posting(term: int, doc: int, freq: int, n_docs: int) -> int:
    """Pack ``(term, doc, freq)`` into one sortable integer key."""
    return (term * n_docs + doc) * FREQ_CAP + freq


def decode_posting(key: int, n_docs: int) -> tuple[int, int, int]:
    """Invert :func:`encode_posting`: key → ``(term, doc, freq)``."""
    pair, freq = divmod(key, FREQ_CAP)
    term, doc = divmod(pair, n_docs)
    return term, doc, freq


@dataclass(frozen=True)
class Corpus:
    """A generated corpus: postings in arrival order plus its dimensions."""

    postings: tuple[tuple[int, int, int], ...]
    n_docs: int
    n_terms: int

    def __len__(self) -> int:
        return len(self.postings)

    def keys(self) -> list[int]:
        """Packed keys in arrival order (the index-build input)."""
        return [
            encode_posting(t, d, f, self.n_docs) for t, d, f in self.postings
        ]


def _default_dims(N: int, n_docs: int | None, n_terms: int | None) -> tuple[int, int]:
    if n_docs is None:
        n_docs = max(4, N // 8)
    if n_terms is None:
        n_terms = max(4, N // 16)
    return int(n_docs), int(n_terms)


def corpus_postings(
    N: int,
    *,
    n_docs: int | None = None,
    n_terms: int | None = None,
    zipf_a: float = 1.4,
    rng=None,
) -> Corpus:
    """Generate ``N`` unique ``(term, doc, freq)`` postings.

    Terms follow a zipf(``zipf_a``) distribution folded onto
    ``[0, n_terms)``; docs are uniform. Drawing the same ``(term, doc)``
    pair again bumps the frequency of the posting already emitted
    (capped at ``FREQ_CAP - 1``) rather than adding a duplicate, so the
    ``(term, doc)`` pairs — and hence the packed keys — are unique.
    """
    n_docs, n_terms = _default_dims(N, n_docs, n_terms)
    if N > n_docs * n_terms:
        raise ValueError(
            f"cannot draw {N} unique postings from "
            f"{n_terms} terms x {n_docs} docs"
        )
    r = _rng(rng)
    order: list[tuple[int, int]] = []  # arrival order of unique pairs
    freq: dict[tuple[int, int], int] = {}
    while len(order) < N:
        batch = max(256, (N - len(order)) * 2)
        terms = (r.zipf(zipf_a, size=batch) - 1) % n_terms
        docs = r.integers(0, n_docs, size=batch)
        for t, d in zip(terms.tolist(), docs.tolist()):
            pair = (int(t), int(d))
            if pair in freq:
                freq[pair] = min(FREQ_CAP - 1, freq[pair] + 1)
            else:
                freq[pair] = 1
                order.append(pair)
                if len(order) == N:
                    break
    postings = tuple((t, d, freq[(t, d)]) for t, d in order)
    return Corpus(postings=postings, n_docs=n_docs, n_terms=n_terms)


def posting_atoms(corpus: Corpus) -> list[Atom]:
    """Full-mode input: one :class:`Atom` per posting, keyed by packed key."""
    return [Atom(key, uid) for uid, key in enumerate(corpus.keys())]


def posting_tokens(corpus: Corpus) -> list[tuple[int, int]]:
    """Counting-mode input: bare ``(key, uid)`` scheduling tokens.

    Tuples are self-tokens under :func:`repro.machine.phantom.token_of`,
    so loading these onto a counting machine stashes exactly the tokens
    an Atom would produce — without materializing a million Atoms.
    """
    return [(key, uid) for uid, key in enumerate(corpus.keys())]


def query_stream(
    q: int,
    *,
    n_terms: int,
    terms_per_query: int = 2,
    zipf_a: float = 1.4,
    rng=None,
) -> list[tuple[int, ...]]:
    """``q`` queries, each a tuple of distinct zipf-distributed terms.

    Drawn from the same folded-zipf term distribution as the corpus, so
    frequent terms are queried frequently — the realistic hot-list case
    for DAAT evaluation.
    """
    if terms_per_query < 1:
        raise ValueError("terms_per_query must be >= 1")
    if terms_per_query > n_terms:
        raise ValueError(
            f"cannot draw {terms_per_query} distinct terms from {n_terms}"
        )
    r = _rng(rng)
    queries: list[tuple[int, ...]] = []
    for _ in range(q):
        picked: dict[int, None] = {}
        while len(picked) < terms_per_query:
            need = terms_per_query - len(picked)
            draw = (r.zipf(zipf_a, size=max(4, 2 * need)) - 1) % n_terms
            for t in draw.tolist():
                picked.setdefault(int(t), None)
                if len(picked) == terms_per_query:
                    break
        queries.append(tuple(picked))
    return queries
