"""External-memory inverted-index build.

The build is the paper's sort pipeline wearing a search-engine hat:

1. **Run generation** (:func:`generate_runs`) — the unsorted postings
   are cut into chunks of at most ``omega * M`` atoms and each chunk is
   sorted through the sorter registry, yielding sorted runs.
2. **Layered merge** (inside :func:`build_index`) — runs are merged in
   layers of fan-in up to ``omega * m`` with the Section 3.1
   :func:`~repro.sorting.merge.multiway_merge`, the paper's headline
   algorithm. Sweeping the fan-in reproduces the log_{omega*m} n level
   count of Theorem 3.2 on a "real" workload.
3. **Postings emission** — one streaming pass over the merged run writes
   the blocked index: per term, postings blocks (doc-ascending), a skip
   run holding the last doc of every postings block (the DAAT
   skip-to-block structure), and one ``(term, df)`` word in a shared
   lexicon run.

Every write costs ``omega`` — the build is the write-heavy half of the
asymmetry story. All term/doc decisions are made on packed-key
scheduling tokens via :func:`~repro.machine.phantom.token_of`, so a
counting machine follows the exact same branch-for-branch path and the
costs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ...core.params import AEMParams
from ...machine.aem import AEMMachine
from ...machine.phantom import token_of
from ...machine.streams import BlockReader, BlockWriter
from ...sorting.base import run_sorter
from ...sorting.merge import MergeStats, multiway_merge
from ...sorting.runs import Run, run_of_input
from .corpus import FREQ_CAP, Corpus, decode_posting, encode_posting


@dataclass(frozen=True)
class PostingsList:
    """One term's on-disk postings: data blocks plus their skip run."""

    term: int
    df: int  # document frequency == number of postings
    addrs: tuple[int, ...]  # postings blocks, doc-ascending
    skip_addrs: tuple[int, ...]  # skip run: last doc of each postings block

    @property
    def blocks(self) -> int:
        return len(self.addrs)


@dataclass(frozen=True)
class SearchIndex:
    """A built index: the lexicon and the address map into the block store.

    The address map (which block holds which term's postings) is problem
    metadata in the model's sense — like run addresses and lengths, it is
    what the directory of a real index encodes — so holding it Python-side
    is cost-free. What *is* charged is every lexicon/skip/postings block
    read the query path performs.
    """

    lexicon: dict[int, PostingsList]
    lex_block_of: dict[int, int]  # term -> address of its lexicon block
    lexicon_addrs: tuple[int, ...]
    n_postings: int
    n_docs: int
    n_terms: int

    @property
    def terms(self) -> int:
        return len(self.lexicon)


def _chunk_addrs(
    machine: AEMMachine, addrs: Sequence[int], atoms_per_chunk: int
) -> list[list[int]]:
    """Cut input blocks into groups of at most ``atoms_per_chunk`` atoms."""
    chunks: list[list[int]] = []
    cur: list[int] = []
    count = 0
    for addr in addrs:
        n = machine.block_len(addr)
        if cur and count + n > atoms_per_chunk:
            chunks.append(cur)
            cur, count = [], 0
        cur.append(addr)
        count += n
    if cur:
        chunks.append(cur)
    return chunks


def generate_runs(
    machine: AEMMachine,
    addrs: Sequence[int],
    params: AEMParams,
    *,
    sorter: str = "aem_mergesort",
) -> list[Run]:
    """Sort base-case-sized chunks of the input into runs.

    Each chunk holds at most ``omega * M`` atoms — the mergesort base
    case — so the registered sorter handles it in one pass hierarchy and
    the subsequent layered merge gets runs of uniform scale. Consumed
    input blocks are freed (unless the sorter returned them as output),
    which keeps the counting machine's token stash proportional to live
    data even at millions of postings.
    """
    runs: list[Run] = []
    with machine.phase("index/runs"):
        for chunk in _chunk_addrs(machine, addrs, params.base_case_size()):
            out = run_sorter(sorter, machine, chunk, params)
            out_set = set(out)
            for addr in chunk:
                if addr not in out_set:
                    machine.free(addr)
            runs.append(run_of_input(machine, out))
    return runs


def build_index(
    machine: AEMMachine,
    addrs: Sequence[int],
    params: AEMParams,
    *,
    n_docs: int,
    n_terms: int,
    fanin: Optional[int] = None,
    sorter: str = "aem_mergesort",
    stats: Optional[MergeStats] = None,
) -> SearchIndex:
    """Build the blocked inverted index from unsorted postings blocks.

    ``fanin`` caps the merge fan-in per layer (default and upper bound:
    ``omega * m``, the paper's choice — the fan-in sweep of experiment
    e18 passes smaller values). ``stats``, when given, collects the
    per-round merge instrumentation.

    Phases: ``index/runs`` (run generation), ``index/merge`` (the layered
    fan-in merge), ``index/postings`` (the write-heavy emission of
    postings + skip + lexicon blocks) — so profiles and phase snapshots
    price the postings write phase separately.
    """
    fan_limit = max(2, params.fanout)
    fanin = fan_limit if fanin is None else max(2, min(int(fanin), fan_limit))

    runs = generate_runs(machine, addrs, params, sorter=sorter)
    total = sum(r.length for r in runs)

    with machine.phase("index/merge"):
        while len(runs) > 1:
            merged_layer: list[Run] = []
            for i in range(0, len(runs), fanin):
                group = runs[i : i + fanin]
                if len(group) == 1:
                    merged_layer.append(group[0])
                    continue
                merged = multiway_merge(machine, group, params, stats=stats)
                for r in group:
                    for addr in r.addrs:
                        machine.free(addr)
                merged_layer.append(merged)
            runs = merged_layer
    final = runs[0] if runs else Run.of((), 0)

    with machine.phase("index/postings"):
        index = _emit_postings(machine, final, n_docs=n_docs, n_terms=n_terms)
    for addr in final.addrs:
        machine.free(addr)
    return index


def _emit_postings(
    machine: AEMMachine, final: Run, *, n_docs: int, n_terms: int
) -> SearchIndex:
    """One streaming pass: merged run -> postings + skip + lexicon blocks.

    Residency stays O(B): one reader block, one postings buffer, one
    skip-writer buffer (only the current term's is live — the stream is
    term-sorted), one lexicon-writer buffer.
    """
    B = machine.params.B
    pair_cap = n_docs * FREQ_CAP  # key // pair_cap == term
    reader = BlockReader(machine, final.addrs)
    lex_writer = BlockWriter(machine)
    lex_terms: list[int] = []
    lexicon: dict[int, PostingsList] = {}

    cur_term = -1
    buf: list = []  # resident postings of the pending block
    post_addrs: list[int] = []
    skip_writer: Optional[BlockWriter] = None
    df = 0

    def flush_block() -> None:
        # Skip entry: the last doc of the block, decoded from its token.
        last_doc = (token_of(buf[-1])[0] // FREQ_CAP) % n_docs
        addr = machine.write_fresh(buf)  # releases the buffered slots
        post_addrs.append(addr)
        assert skip_writer is not None
        skip_writer.push_new(last_doc)
        buf.clear()

    def close_term() -> None:
        nonlocal df
        if buf:
            flush_block()
        assert skip_writer is not None
        skip_addrs = skip_writer.close()
        lexicon[cur_term] = PostingsList(
            term=cur_term,
            df=df,
            addrs=tuple(post_addrs),
            skip_addrs=tuple(skip_addrs),
        )
        lex_writer.push_new((cur_term, df))
        lex_terms.append(cur_term)
        post_addrs.clear()
        df = 0

    for item in reader:  # take(): the slot transfers to our buffer
        machine.touch()
        term = token_of(item)[0] // pair_cap
        if term != cur_term:
            if cur_term >= 0:
                close_term()
            cur_term = term
            skip_writer = BlockWriter(machine)
        buf.append(item)
        df += 1
        if len(buf) == B:
            flush_block()
    if cur_term >= 0:
        close_term()

    lexicon_addrs = lex_writer.close()
    lex_block_of = {
        term: lexicon_addrs[i // B] for i, term in enumerate(lex_terms)
    }
    return SearchIndex(
        lexicon=lexicon,
        lex_block_of=lex_block_of,
        lexicon_addrs=tuple(lexicon_addrs),
        n_postings=final.length,
        n_docs=n_docs,
        n_terms=n_terms,
    )


class IndexVerificationError(AssertionError):
    """The built index disagrees with the reference index."""


def reference_index(corpus: Corpus) -> dict[int, list[tuple[int, int]]]:
    """Plain-Python reference: term -> [(doc, freq), ...] doc-ascending."""
    ref: dict[int, list[tuple[int, int]]] = {}
    for term, doc, freq in corpus.postings:
        ref.setdefault(term, []).append((doc, freq))
    for plist in ref.values():
        plist.sort()
    return ref


def verify_index(
    machine: AEMMachine, corpus: Corpus, index: SearchIndex
) -> None:
    """Check the on-disk index against a reference build (cost-free).

    Full-mode only: inspection reads payloads straight off the block
    store, the referee's privilege. Raises
    :class:`IndexVerificationError` with a pinpointed message.
    """
    ref = reference_index(corpus)
    if set(index.lexicon) != set(ref):
        raise IndexVerificationError(
            f"lexicon terms {sorted(index.lexicon)} != reference {sorted(ref)}"
        )
    B = machine.params.B
    for term, plist in index.lexicon.items():
        expect = ref[term]
        if plist.df != len(expect):
            raise IndexVerificationError(
                f"term {term}: df {plist.df} != reference {len(expect)}"
            )
        atoms = machine.collect_output(plist.addrs)
        keys = [token_of(a)[0] for a in atoms]
        want = [
            encode_posting(term, doc, freq, index.n_docs)
            for doc, freq in expect
        ]
        if keys != want:
            raise IndexVerificationError(
                f"term {term}: postings keys diverge from reference"
            )
        skips = machine.collect_output(plist.skip_addrs)
        want_skips = [
            decode_posting(keys[min(i + B, len(keys)) - 1], index.n_docs)[1]
            for i in range(0, len(keys), B)
        ]
        if list(skips) != want_skips:
            raise IndexVerificationError(
                f"term {term}: skip entries {list(skips)} != {want_skips}"
            )
    lex_words = machine.collect_output(index.lexicon_addrs)
    want_lex = [(t, index.lexicon[t].df) for t in sorted(index.lexicon)]
    if [tuple(w) for w in lex_words] != want_lex:
        raise IndexVerificationError("lexicon blocks diverge from reference")
    for term, plist in index.lexicon.items():
        if index.lex_block_of.get(term) not in index.lexicon_addrs:
            raise IndexVerificationError(
                f"term {term}: lexicon block map points outside the lexicon"
            )
