"""Machine instrumentation: one event bus under every memory model.

Every machine in :mod:`repro.machine` (the AEM, its EM/ARAM special cases,
and the unit-cost flash model) is built on a shared
:class:`~repro.machine.core.MachineCore` that emits a uniform stream of
*machine events* — one per I/O, ledger movement, phase transition, and
round boundary. Anything that wants per-I/O observability implements the
:class:`MachineObserver` protocol and attaches to a machine; the machine
itself stays a thin model-semantics veneer.

The observers shipped here re-implement what used to be hard-wired into
the machines:

* :class:`CostObserver` — the ``Q = Qr + omega*Qw`` accounting with named
  phase attribution (wraps a :class:`~repro.machine.cost.CostCounter`);
  for the flash model the same observer accumulates I/O *volume*.
* :class:`TraceRecorder` — straight-line program recording (the successor
  of the ``record=True`` flag), emitting the exact
  :class:`~repro.trace.ops.ReadOp` / :class:`~repro.trace.ops.WriteOp`
  sequences the Section 4–5 lower-bound machinery consumes.
* :class:`WearMap` — per-block write-endurance histogram (NVM wear).
* :class:`ProgressObserver` — live I/O/phase readout for long CLI runs.
* :class:`PhaseStack` — the shared nested-phase bookkeeping those
  consumers (and the telemetry profiler) drive from
  ``on_phase_enter``/``on_phase_exit``.

Dispatch is cheap by construction: a machine core keeps one callback list
per event kind, populated only with observers that *override* that event,
so un-observed events cost a single truthiness check. On top of that,
cores default to *batched* dispatch: batchable events accumulate into a
reused columnar :class:`EventBatch` and are flushed to consumers at phase
and round boundaries (exact flush points), attach/detach, and every
``flush_every`` events — see :mod:`repro.observe.batch` for the consumer
tiers (``on_batch`` / ``needs_events`` / per-event replay).
"""

from .base import EVENTS, MachineObserver
from .batch import BATCHED_EVENTS, EventBatch
from .cost import CostObserver
from .phases import PhaseStack
from .progress import ProgressObserver
from .trace import TraceRecorder
from .wear import WearMap

__all__ = [
    "BATCHED_EVENTS",
    "EVENTS",
    "CostObserver",
    "EventBatch",
    "MachineObserver",
    "PhaseStack",
    "ProgressObserver",
    "TraceRecorder",
    "WearMap",
]
