"""Program recording as an observer.

:class:`TraceRecorder` replaces the machines' ``record=True`` flag: it
appends one :class:`~repro.trace.ops.ReadOp` / :class:`~repro.trace.ops.WriteOp`
per I/O event, producing exactly the straight-line *programs* that the
paper's Section 4–5 machinery (round conversion, flash reduction,
usefulness analysis) consumes. The op sequence is identical to what the
legacy flag produced — a property the tests pin — so recorded programs
remain byte-compatible with every existing trace transformation.

Round boundaries declared through the bus (``machine.round_boundary()``)
are captured as op indices, ready for
:attr:`repro.trace.program.Program.round_boundaries`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..trace.ops import Op, ReadOp, WriteOp
from .base import MachineObserver


def _uids_of(items: Sequence) -> Tuple[Optional[int], ...]:
    """Atom identities of a block's payload (None for identity-less data)."""
    return tuple(getattr(it, "uid", None) for it in items)


class TraceRecorder(MachineObserver):
    """Record every I/O event as a trace op.

    Attributes
    ----------
    ops:
        The recorded program so far (mutable; ``clear()`` between runs to
        reuse the recorder).
    round_boundaries:
        Indices into ``ops`` where declared rounds start.
    """

    # Recorded ops capture atom uids and write payloads; a counting
    # machine has neither, so attachment must fail loudly there, and
    # batched dispatch must keep delivering real per-event payloads.
    needs_payloads = True
    needs_events = True

    def __init__(self):
        self.ops: list[Op] = []
        self.round_boundaries: list[int] = []

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.ops.append(ReadOp(addr, _uids_of(items)))

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.ops.append(WriteOp(addr, _uids_of(items), tuple(items)))

    def on_round_boundary(self, index: int) -> None:
        self.round_boundaries.append(len(self.ops))

    # ------------------------------------------------------------------
    # Convenience surface.
    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.ops.clear()
        self.round_boundaries.clear()

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRecorder({len(self.ops)} ops)"
