"""The machine-event observer protocol.

:class:`MachineObserver` is a base class of no-op handlers, one per event a
:class:`~repro.machine.core.MachineCore` can emit. Subclasses override only
the events they care about; the core inspects each attached observer and
builds per-event dispatch lists from the *overridden* methods only, so an
observer that ignores an event adds zero cost to it.

Event vocabulary (``EVENTS``):

``on_read(addr, items, cost)``
    One read I/O brought ``items`` (a sequence of atoms) in from external
    block ``addr``. ``cost`` is the model's charge for the transfer: ``1``
    on an AEM/EM/ARAM machine, the read-block size ``Br`` (the I/O volume)
    on a flash machine.
``on_write(addr, items, cost)``
    One write I/O sent ``items`` to block ``addr``; ``cost`` is ``omega``
    on an AEM machine and the write-block size ``Bw`` on a flash machine.
``on_acquire(k, what)`` / ``on_release(k)``
    ``k`` internal-memory slots were explicitly claimed/discarded by the
    program (atom creation/destruction inside internal memory). The
    implicit ledger movements of ``read``/``write`` are *not* re-emitted —
    they are derivable from the I/O events themselves.
``on_touch(k)``
    ``k`` internal operations (the model's time ``T``), batched: algorithms
    report whole chunks of internal work in one event.
``on_phase_enter(name)`` / ``on_phase_exit(name)``
    Lexical phase boundaries (cost attribution, progress display).
``on_round_boundary(index)``
    The program declared a round boundary (Section 4's round-based
    programs): internal memory has just been drained. ``index`` is the
    machine's running I/O count at the boundary.

Handlers must not mutate ``items``; the sequence is shared with the
running algorithm (observation is free in the model and must stay free in
the simulation).

Observers that *read* the atoms inside ``items`` — trace recorders
capturing payloads, provenance checks following uids — must declare
``needs_payloads = True``. On a counting-mode machine (whose store is a
:class:`~repro.machine.phantom.PhantomBlockStore`, so ``items`` carries
lengths but no contents) attaching such an observer raises ``ValueError``
at attach time instead of silently feeding it placeholders. Observers
that use only ``len(items)``, addresses, and costs — the default — keep
the class-level ``needs_payloads = False`` and work on both kinds of
machine unchanged.

Batched dispatch (PR 6): on a core running in the default ``batched``
dispatch mode, the batchable events (read/write/acquire/release/touch)
are buffered into a columnar :class:`~repro.observe.batch.EventBatch`
and delivered at flush boundaries. Three class-level knobs control how
an observer participates:

``on_batch(batch)``
    Override to consume whole batches in one call — the vectorized fast
    path. The batch object and its column lists are reused by the bus;
    copy anything you keep (lint rule AEM107). Observers that override
    ``on_batch`` do **not** also get their per-event batchable handlers
    called in batched mode (keep those for events-mode parity); their
    phase/round handlers still fire synchronously.
``needs_events``
    Declare True to opt out of batching entirely: the observer's
    overridden handlers stay on the synchronous per-event path with real
    payloads, exactly as in events mode. Implied by ``needs_payloads``.
``batch_columns``
    Set False on ``on_batch`` implementations that use only the batch
    aggregates (``reads``/``writes``/``read_cost``/...). When every
    attached consumer says False the bus skips recording the per-event
    columns altogether — the machine's cheapest configuration.

Observers that override a batchable handler but none of the above are
*replayed* event-by-event at each flush, in original order, with sized
placeholder payloads — correct for every ``len(items)``-only consumer.
"""

from __future__ import annotations

from typing import Sequence

EVENTS = (
    "on_read",
    "on_write",
    "on_acquire",
    "on_release",
    "on_touch",
    "on_phase_enter",
    "on_phase_exit",
    "on_round_boundary",
)


class MachineObserver:
    """No-op base implementation of every machine event handler.

    Subclass and override the events you need. ``on_attach`` /
    ``on_detach`` are lifecycle hooks, not dispatched events: they run
    once when the observer joins/leaves a machine core and receive the
    core itself (e.g. to inspect its block store or parameters).
    """

    #: Set True in subclasses whose handlers read atom contents (not just
    #: ``len(items)``); such observers cannot attach to counting machines.
    needs_payloads = False

    #: Set True to keep exact synchronous per-event delivery under
    #: batched dispatch (implied by ``needs_payloads``).
    needs_events = False

    #: Set False on ``on_batch`` implementations that only use the batch
    #: aggregates, never the per-event columns.
    batch_columns = True

    def on_batch(self, batch) -> None:
        """Consume one flushed :class:`~repro.observe.batch.EventBatch`.

        Override for vectorized dispatch. The batch (and its column
        lists) are reused after this call returns — copy, don't retain.
        """

    def on_attach(self, core) -> None:  # pragma: no cover - trivial
        pass

    def on_detach(self, core) -> None:  # pragma: no cover - trivial
        pass

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        pass

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        pass

    def on_acquire(self, k: int, what: str) -> None:
        pass

    def on_release(self, k: int) -> None:
        pass

    def on_touch(self, k: int) -> None:
        pass

    def on_phase_enter(self, name: str) -> None:
        pass

    def on_phase_exit(self, name: str) -> None:
        pass

    def on_round_boundary(self, index: int) -> None:
        pass
