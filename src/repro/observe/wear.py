"""Write-endurance observation.

NVM cells wear out after a bounded number of writes — the paper's second
motivation (besides latency/energy) for write-avoidance, and the quantity
the write-endurance literature (Gu et al., *Algorithmic Building Blocks
for Asymmetric Memories*) budgets per block. :class:`WearMap` listens to
write events and maintains the per-block histogram, independent of any
particular machine: attach it to an AEM machine, an EM baseline, or a
flash machine and compare profiles on equal terms.

Unlike :meth:`repro.machine.blockstore.BlockStore.wear` (which summarizes
the store's whole lifetime), a ``WearMap`` sees only the events emitted
while it was attached, so it can scope wear to one algorithm, one phase,
or one round of a longer run.

Under batched dispatch the map is a vectorized batch consumer: one
``on_batch`` call walks the kind/addr columns and bumps write counts in a
tight loop (skipped outright for write-free batches). Readout goes
through the ``counts`` property, which flushes the owning core first, so
the histogram is exact whenever it is read.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..machine.blockstore import WearStats
from .base import MachineObserver
from .batch import KIND_WRITE


class WearMap(MachineObserver):
    """Per-block write counts, accumulated from write events."""

    def __init__(self):
        self._counts: Dict[int, int] = {}
        self._core = None

    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self._counts[addr] = self._counts.get(addr, 0) + 1

    def on_batch(self, batch) -> None:
        if not batch.writes:
            return
        counts = self._counts
        get = counts.get
        for kind, addr in zip(batch.kinds, batch.addrs):
            if kind == KIND_WRITE:
                counts[addr] = get(addr, 0) + 1

    # ------------------------------------------------------------------
    # Readout.
    # ------------------------------------------------------------------
    @property
    def counts(self) -> Dict[int, int]:
        """The per-block write counts (buffered events flushed first)."""
        core = self._core
        if core is not None:
            core.flush_events()
        return self._counts

    @property
    def total_writes(self) -> int:
        """Total write I/Os seen — equals ``CostSnapshot.writes`` for a
        machine observed over its whole run."""
        return sum(self.counts.values())

    @property
    def blocks_written(self) -> int:
        return len(self.counts)

    @property
    def max_writes(self) -> int:
        return max(self.counts.values(), default=0)

    @property
    def hottest(self) -> Optional[int]:
        counts = self.counts
        if not counts:
            return None
        return max(counts, key=counts.get)  # type: ignore[arg-type]

    def stats(self) -> WearStats:
        """The same summary shape as ``BlockStore.wear()``."""
        return WearStats(
            total_writes=self.total_writes,
            blocks_written=self.blocks_written,
            max_writes=self.max_writes,
            hottest=self.hottest,
        )

    def histogram(self) -> Dict[int, int]:
        """Map ``write count -> number of blocks written that many times``."""
        hist: Dict[int, int] = {}
        for c in self.counts.values():
            hist[c] = hist.get(c, 0) + 1
        return hist

    def clear(self) -> None:
        self.counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"WearMap({s.total_writes} writes over {s.blocks_written} blocks, "
            f"max {s.max_writes})"
        )
