"""Write-endurance observation.

NVM cells wear out after a bounded number of writes — the paper's second
motivation (besides latency/energy) for write-avoidance, and the quantity
the write-endurance literature (Gu et al., *Algorithmic Building Blocks
for Asymmetric Memories*) budgets per block. :class:`WearMap` listens to
write events and maintains the per-block histogram, independent of any
particular machine: attach it to an AEM machine, an EM baseline, or a
flash machine and compare profiles on equal terms.

Unlike :meth:`repro.machine.blockstore.BlockStore.wear` (which summarizes
the store's whole lifetime), a ``WearMap`` sees only the events emitted
while it was attached, so it can scope wear to one algorithm, one phase,
or one round of a longer run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..machine.blockstore import WearStats
from .base import MachineObserver


class WearMap(MachineObserver):
    """Per-block write counts, accumulated from write events."""

    def __init__(self):
        self.counts: Dict[int, int] = {}

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.counts[addr] = self.counts.get(addr, 0) + 1

    # ------------------------------------------------------------------
    # Readout.
    # ------------------------------------------------------------------
    @property
    def total_writes(self) -> int:
        """Total write I/Os seen — equals ``CostSnapshot.writes`` for a
        machine observed over its whole run."""
        return sum(self.counts.values())

    @property
    def blocks_written(self) -> int:
        return len(self.counts)

    @property
    def max_writes(self) -> int:
        return max(self.counts.values(), default=0)

    @property
    def hottest(self) -> Optional[int]:
        if not self.counts:
            return None
        return max(self.counts, key=self.counts.get)  # type: ignore[arg-type]

    def stats(self) -> WearStats:
        """The same summary shape as ``BlockStore.wear()``."""
        return WearStats(
            total_writes=self.total_writes,
            blocks_written=self.blocks_written,
            max_writes=self.max_writes,
            hottest=self.hottest,
        )

    def histogram(self) -> Dict[int, int]:
        """Map ``write count -> number of blocks written that many times``."""
        hist: Dict[int, int] = {}
        for c in self.counts.values():
            hist[c] = hist.get(c, 0) + 1
        return hist

    def clear(self) -> None:
        self.counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"WearMap({s.total_writes} writes over {s.blocks_written} blocks, "
            f"max {s.max_writes})"
        )
