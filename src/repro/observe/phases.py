"""Shared nested-phase bookkeeping for observers.

Several observers need to know *where in the phase tree* the machine
currently is: the profiler attributes every I/O to the live stack path,
and :class:`~repro.observe.progress.ProgressObserver` renders it. Both
used to keep (or mis-keep) private stacks; :class:`PhaseStack` is the one
implementation.

A stack path is a tuple of phase names from outermost to innermost —
``("sort", "form_runs", "merge_pass/2")``. ``enter``/``exit`` mirror the
machine core's ``on_phase_enter``/``on_phase_exit`` events; because the
core guarantees strictly nested phases (``PhaseError`` on mismatch), the
stack here only has to be a faithful mirror, plus two conveniences:

* first-seen path recording (``paths``) — the distinct stack paths in the
  order they first appeared, for end-of-run summaries;
* graceful handling of an ``exit`` with nothing open (an aborted run
  whose observer outlived the machine) — ignored rather than raised,
  since observation must never take down the run.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

#: The path used for events emitted outside any declared phase.
ROOT_PATH: Tuple[str, ...] = ()


class PhaseStack:
    """A live mirror of the machine's nested ``phase()`` state."""

    __slots__ = ("_stack", "_seen", "paths")

    def __init__(self) -> None:
        self._stack: list[str] = []
        self._seen: set[Tuple[str, ...]] = set()
        #: Distinct non-empty stack paths, in first-seen order.
        self.paths: list[Tuple[str, ...]] = []

    def enter(self, name: str) -> None:
        self._stack.append(name)
        path = tuple(self._stack)
        if path not in self._seen:
            self._seen.add(path)
            self.paths.append(path)

    def exit(self, name: Optional[str] = None) -> None:
        if self._stack:
            self._stack.pop()

    @property
    def current(self) -> Tuple[str, ...]:
        """The live stack path (``()`` outside any phase)."""
        return tuple(self._stack)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def render(self, sep: str = "/") -> str:
        """The live path as ``outer/inner``; ``"-"`` outside any phase."""
        return sep.join(self._stack) if self._stack else "-"

    def render_paths(
        self, sep: str = "/", limit: Optional[int] = None
    ) -> str:
        """Every first-seen path, comma-joined, optionally truncated."""
        rendered = [sep.join(p) for p in self.paths]
        if limit is not None and len(rendered) > limit:
            more = len(rendered) - limit
            rendered = rendered[:limit] + [f"+{more} more"]
        return ",".join(rendered)

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterable[str]:
        return iter(self._stack)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseStack({self.render()!r}, {len(self.paths)} paths seen)"
