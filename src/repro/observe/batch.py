"""Columnar event batches: the vectorized half of the machine event bus.

Per-event dispatch costs one Python call per observer per I/O — the
dominant wall-time term once counting mode (PR 5) removed payload copies.
:class:`EventBatch` is the fix: a :class:`~repro.machine.core.MachineCore`
running in ``batched`` dispatch mode appends each batchable event
(read/write/acquire/release/touch) to one reused set of parallel columns
and *flushes* the batch to consumers at phase boundaries, round
boundaries, attach/detach, every ``flush_every`` events, and on demand
(``core.flush_events()``).

Consumers come in three tiers:

* observers overriding :meth:`MachineObserver.on_batch` consume whole
  batches (one call per flush, vectorized loops inside);
* observers declaring ``needs_events = True`` (or ``needs_payloads``,
  which implies it) keep exact synchronous per-event delivery with the
  real payloads — batching never touches them;
* everything else is *replayed* event-by-event at flush time from the
  columns (:meth:`EventBatch.replay`), in original order, with sized
  placeholder payloads — the automatic compatibility fallback.

Layout: parallel lists ``kinds``/``addrs``/``lengths``/``costs``/``occs``
(one entry per event; ``whats`` is a side list holding acquire labels in
order), plus O(1) running aggregates (``reads``, ``writes``,
``read_cost``, ``write_cost``, ``touches``) maintained at append time so
aggregate-only consumers (the cost ledger, progress readouts) never need
the columns at all. When *no* attached consumer needs columns the core
skips filling them entirely — the per-I/O cost of the default machine
(one :class:`~repro.observe.CostObserver`) drops to a few inline
increments.

The batch object and its column lists are **reused** across flushes
(``clear()`` empties them in place). ``on_batch`` implementations must
therefore copy any column they want to keep (``list(batch.addrs)``) —
retaining a reference is lint rule AEM107.
"""

from __future__ import annotations

#: Event kind codes, one per batchable event. Phase and round events are
#: never batched: they *are* the flush boundaries.
KIND_READ = 0
KIND_WRITE = 1
KIND_ACQUIRE = 2
KIND_RELEASE = 3
KIND_TOUCH = 4

#: Human-readable names, indexed by kind code.
KIND_NAMES = ("read", "write", "acquire", "release", "touch")

#: The events that flow through batches (the rest stay synchronous).
BATCHED_EVENTS = ("on_read", "on_write", "on_acquire", "on_release", "on_touch")


class EventBatch:
    """One reused columnar buffer of machine events.

    Columns (parallel, one entry per buffered event):

    ``kinds``
        Kind code (:data:`KIND_READ` ... :data:`KIND_TOUCH`).
    ``addrs``
        Block address for I/O events; ``-1`` for ledger/touch events.
    ``lengths``
        ``len(items)`` for I/O events; ``k`` for acquire/release/touch.
    ``costs``
        The model's charge for I/O events; ``0`` otherwise.
    ``occs``
        Ledger occupancy *after* the event applied — the same value a
        synchronous handler would read from ``core.mem.occupancy``, so
        capacity checks vectorize without live ledger reads.
    ``whats``
        Side list: the ``what`` labels of acquire events, in order.

    Aggregates (maintained inline at append time, valid even when the
    columns are not being recorded): ``n`` (buffered events), ``reads``,
    ``writes``, ``read_cost``, ``write_cost``, ``touches`` (summed ``k``),
    ``touch_events`` (number of touch events).
    """

    __slots__ = (
        "kinds",
        "addrs",
        "lengths",
        "costs",
        "occs",
        "whats",
        "n",
        "reads",
        "writes",
        "read_cost",
        "write_cost",
        "touches",
        "touch_events",
    )

    def __init__(self) -> None:
        self.kinds: list[int] = []
        self.addrs: list[int] = []
        self.lengths: list[int] = []
        self.costs: list[float] = []
        self.occs: list[int] = []
        self.whats: list[str] = []
        self.n = 0
        self.reads = 0
        self.writes = 0
        self.read_cost = 0.0
        self.write_cost = 0.0
        self.touches = 0
        self.touch_events = 0

    def __len__(self) -> int:
        return self.n

    def clear(self) -> None:
        """Empty the batch in place (the column lists are reused)."""
        self.kinds.clear()
        self.addrs.clear()
        self.lengths.clear()
        self.costs.clear()
        self.occs.clear()
        self.whats.clear()
        self.n = 0
        self.reads = 0
        self.writes = 0
        self.read_cost = 0.0
        self.write_cost = 0.0
        self.touches = 0
        self.touch_events = 0

    def replay(self, observer) -> None:
        """Deliver the buffered events to ``observer`` one at a time.

        The compatibility fallback for observers that neither implement
        ``on_batch`` nor declare ``needs_events``: events arrive in their
        original order through the classic per-event handlers. I/O
        payloads are sized :class:`~repro.machine.phantom.PhantomBlock`
        placeholders — correct for every ``len(items)``-only consumer;
        observers that read real atom contents must declare
        ``needs_payloads``/``needs_events`` and are dispatched
        synchronously instead.
        """
        from ..machine.phantom import PhantomBlock

        on_read = observer.on_read
        on_write = observer.on_write
        on_acquire = observer.on_acquire
        on_release = observer.on_release
        on_touch = observer.on_touch
        wi = 0
        for kind, addr, length, cost in zip(
            self.kinds, self.addrs, self.lengths, self.costs
        ):
            if kind == KIND_READ:
                on_read(addr, PhantomBlock(length), cost)
            elif kind == KIND_WRITE:
                on_write(addr, PhantomBlock(length), cost)
            elif kind == KIND_TOUCH:
                on_touch(length)
            elif kind == KIND_ACQUIRE:
                on_acquire(length, self.whats[wi])
                wi += 1
            else:
                on_release(length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventBatch({self.n} events: {self.reads}r/{self.writes}w, "
            f"columns={'on' if self.kinds else 'off'})"
        )
