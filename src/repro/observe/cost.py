"""Cost accounting as an observer.

:class:`CostObserver` is the event-bus re-implementation of the accounting
that used to be hard-wired into :class:`~repro.machine.aem.AEMMachine` and
:class:`~repro.machine.flash.FlashMachine`. It wraps a
:class:`~repro.machine.cost.CostCounter`, so everything downstream —
snapshots, ``Q = Qr + omega*Qw``, named phase attribution — keeps its exact
legacy semantics, and additionally accumulates the *model cost* each event
carries: on an AEM machine that sum is redundant with the counter, on a
flash machine it is the I/O volume (``Br`` per small read, ``Bw`` per
write), which is that model's notion of cost.

Every machine attaches one of these at construction; ``machine.counter``,
``machine.snapshot()`` and friends read through to it.

Under batched dispatch this observer is an aggregates-only batch consumer
(``batch_columns = False``): one ``on_batch`` call per flush adds the
batch's read/write/touch totals to the counter, attributed to the
innermost phase — exact, because phase boundaries force a flush. Every
readout path (the properties and ``snapshot()``/``describe()``) first
flushes the owning core, so totals read back exact at any moment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..machine.cost import CostCounter, CostSnapshot
from .base import MachineObserver


class CostObserver(MachineObserver):
    """Count reads/writes/touches and attribute them to phases.

    Parameters
    ----------
    omega:
        The write/read cost ratio of the machine being observed (``1`` for
        symmetric models, including the flash model, whose asymmetry lives
        in the per-event ``cost`` instead).
    counter:
        An existing :class:`CostCounter` to drive, for callers that share
        one counter across machines; a fresh one is created by default.
    """

    batch_columns = False

    def __init__(self, omega: float = 1.0, counter: Optional[CostCounter] = None):
        self._counter = counter if counter is not None else CostCounter(omega)
        # Accumulated per-event costs. For the AEM these mirror the counter
        # (read_cost == Qr, write_cost == omega*Qw); for the flash model
        # they are the read/write I/O volumes.
        self._read_cost: float = 0
        self._write_cost: float = 0
        self._core = None

    # ------------------------------------------------------------------
    # Lifecycle + flush-on-readout.
    # ------------------------------------------------------------------
    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def _sync(self) -> None:
        core = self._core
        if core is not None:
            core.flush_events()

    # ------------------------------------------------------------------
    # Event handlers (events-mode / replay delivery).
    # ------------------------------------------------------------------
    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self._counter.add_read()
        self._read_cost += cost

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self._counter.add_write()
        self._write_cost += cost

    def on_touch(self, k: int) -> None:
        self._counter.touch(k)

    def on_phase_enter(self, name: str) -> None:
        self._counter.enter_phase(name)

    def on_phase_exit(self, name: str) -> None:
        self._counter.exit_phase(name)

    def on_batch(self, batch) -> None:
        # Whole-batch attribution to the innermost phase is exact: phase
        # transitions flush, so a batch never straddles a boundary. The
        # underscore fields are used directly — the properties would
        # re-enter the flush this call is part of.
        counter = self._counter
        if batch.reads:
            counter.add_read(batch.reads)
        if batch.writes:
            counter.add_write(batch.writes)
        if batch.touches:
            counter.touch(batch.touches)
        self._read_cost += batch.read_cost
        self._write_cost += batch.write_cost

    # ------------------------------------------------------------------
    # Readout (the CostCounter surface, passed through).
    # ------------------------------------------------------------------
    @property
    def counter(self) -> CostCounter:
        self._sync()
        return self._counter

    @property
    def read_cost(self) -> float:
        self._sync()
        return self._read_cost

    @read_cost.setter
    def read_cost(self, value: float) -> None:
        self._sync()
        self._read_cost = value

    @property
    def write_cost(self) -> float:
        self._sync()
        return self._write_cost

    @write_cost.setter
    def write_cost(self, value: float) -> None:
        self._sync()
        self._write_cost = value

    @property
    def reads(self) -> int:
        return self.counter.reads

    @property
    def writes(self) -> int:
        return self.counter.writes

    @property
    def Q(self) -> float:
        return self.counter.Q

    @property
    def total_cost(self) -> float:
        """Sum of per-event costs (the flash model's total volume)."""
        self._sync()
        return self._read_cost + self._write_cost

    def snapshot(self) -> CostSnapshot:
        return self.counter.snapshot()

    def reset(self) -> None:
        self._sync()
        self._counter.reset()
        self._read_cost = 0
        self._write_cost = 0

    def describe(self) -> str:
        return self.counter.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostObserver({self.describe()})"
