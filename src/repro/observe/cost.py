"""Cost accounting as an observer.

:class:`CostObserver` is the event-bus re-implementation of the accounting
that used to be hard-wired into :class:`~repro.machine.aem.AEMMachine` and
:class:`~repro.machine.flash.FlashMachine`. It wraps a
:class:`~repro.machine.cost.CostCounter`, so everything downstream —
snapshots, ``Q = Qr + omega*Qw``, named phase attribution — keeps its exact
legacy semantics, and additionally accumulates the *model cost* each event
carries: on an AEM machine that sum is redundant with the counter, on a
flash machine it is the I/O volume (``Br`` per small read, ``Bw`` per
write), which is that model's notion of cost.

Every machine attaches one of these at construction; ``machine.counter``,
``machine.snapshot()`` and friends read through to it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..machine.cost import CostCounter, CostSnapshot
from .base import MachineObserver


class CostObserver(MachineObserver):
    """Count reads/writes/touches and attribute them to phases.

    Parameters
    ----------
    omega:
        The write/read cost ratio of the machine being observed (``1`` for
        symmetric models, including the flash model, whose asymmetry lives
        in the per-event ``cost`` instead).
    counter:
        An existing :class:`CostCounter` to drive, for callers that share
        one counter across machines; a fresh one is created by default.
    """

    def __init__(self, omega: float = 1.0, counter: Optional[CostCounter] = None):
        self.counter = counter if counter is not None else CostCounter(omega)
        # Accumulated per-event costs. For the AEM these mirror the counter
        # (read_cost == Qr, write_cost == omega*Qw); for the flash model
        # they are the read/write I/O volumes.
        self.read_cost: float = 0
        self.write_cost: float = 0

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.counter.add_read()
        self.read_cost += cost

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.counter.add_write()
        self.write_cost += cost

    def on_touch(self, k: int) -> None:
        self.counter.touch(k)

    def on_phase_enter(self, name: str) -> None:
        self.counter.enter_phase(name)

    def on_phase_exit(self, name: str) -> None:
        self.counter.exit_phase(name)

    # ------------------------------------------------------------------
    # Readout (the CostCounter surface, passed through).
    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        return self.counter.reads

    @property
    def writes(self) -> int:
        return self.counter.writes

    @property
    def Q(self) -> float:
        return self.counter.Q

    @property
    def total_cost(self) -> float:
        """Sum of per-event costs (the flash model's total volume)."""
        return self.read_cost + self.write_cost

    def snapshot(self) -> CostSnapshot:
        return self.counter.snapshot()

    def reset(self) -> None:
        self.counter.reset()
        self.read_cost = 0
        self.write_cost = 0

    def describe(self) -> str:
        return self.counter.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostObserver({self.describe()})"
