"""Live progress readout for long-running simulations.

:class:`ProgressObserver` renders a single updating status line — I/O
counts, current phase, declared rounds — to a stream (stderr by default).
The CLI attaches one when invoked with ``--progress``, so full-size sweeps
show where they are instead of going silent for minutes.

The carriage-return frames only render *live* when the stream is a TTY
(or ``REPRO_PROGRESS=1`` forces them, or the caller passes
``live=True``): a piped CI log gets exactly one final summary line from
``close()`` instead of thousands of ``\\r`` frames. Counting continues
either way, so the final line is always accurate.

Rendering is rate-limited by event count (``every``), not wall clock, to
keep the observer deterministic and cheap: between renders an event costs
two integer increments and a comparison.
"""

from __future__ import annotations

import os
import sys
from typing import IO, Optional, Sequence

from .base import MachineObserver
from .phases import PhaseStack

#: Environment override: force live frames even on a non-TTY stream.
PROGRESS_ENV = "REPRO_PROGRESS"


def _stream_is_live(stream: IO[str]) -> bool:
    if os.environ.get(PROGRESS_ENV, "") == "1":
        return True
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty()) if callable(isatty) else False
    except (OSError, ValueError):  # closed or exotic streams
        return False


class ProgressObserver(MachineObserver):
    """Emit a ``\\r``-refreshed ``Qr/Qw/phase`` status line.

    Parameters
    ----------
    stream:
        Where to render (default ``sys.stderr``).
    every:
        Render after this many I/O events (default 1000).
    label:
        Prefix identifying the run (e.g. the algorithm name).
    live:
        Whether to render intermediate ``\\r`` frames. ``None`` (the
        default) auto-detects: frames render only when ``stream`` is a
        TTY or ``REPRO_PROGRESS=1`` is set. ``close()`` always writes
        the final summary line and flushes, live or not.
    """

    batch_columns = False

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        every: int = 1000,
        label: str = "",
        live: Optional[bool] = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.label = label
        self.live = _stream_is_live(self.stream) if live is None else bool(live)
        self.reads = 0
        self.writes = 0
        self.rounds = 0
        self.phases = PhaseStack()
        self._pending = 0
        self._core = None

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.reads += 1
        self._tick()

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.writes += 1
        self._tick()

    def on_batch(self, batch) -> None:
        io = batch.reads + batch.writes
        if not io:
            return
        self.reads += batch.reads
        self.writes += batch.writes
        self._pending += io
        if self._pending >= self.every:
            self._render()

    def on_phase_enter(self, name: str) -> None:
        self.phases.enter(name)
        self._render()

    def on_phase_exit(self, name: str) -> None:
        self.phases.exit(name)

    def on_round_boundary(self, index: int) -> None:
        self.rounds += 1

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def _line(self) -> str:
        phase = self.phases.render()
        prefix = f"[{self.label}] " if self.label else ""
        line = f"{prefix}Qr={self.reads} Qw={self.writes} phase={phase}"
        if self.rounds:
            line += f" rounds={self.rounds}"
        return line

    def _tick(self) -> None:
        self._pending += 1
        if self._pending >= self.every:
            self._render()

    def _render(self) -> None:
        self._pending = 0
        if not self.live:
            return
        self.stream.write("\r" + self._line().ljust(78))
        self.stream.flush()

    def close(self) -> None:
        """Write the final summary line and flush.

        On a live stream this replaces the in-place status line and moves
        off it; on a piped stream it is the *only* output the observer
        ever produces. Buffered batch events are flushed first, so the
        printed counts are exact rather than trailing the run. By the
        time a run closes every phase has exited, so the summary reports
        the *visited* nested paths (``phases=sort/merge,...``) instead of
        the long-empty current stack.
        """
        if self._core is not None:
            self._core.flush_events()
        line = self._line()
        if self.phases.paths:
            line += f" phases={self.phases.render_paths(limit=8)}"
        if self.live:
            self.stream.write("\r" + line.ljust(78) + "\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
