"""Live progress readout for long-running simulations.

:class:`ProgressObserver` renders a single updating status line — I/O
counts, current phase, declared rounds — to a stream (stderr by default).
The CLI attaches one when invoked with ``--progress``, so full-size sweeps
show where they are instead of going silent for minutes.

Rendering is rate-limited by event count (``every``), not wall clock, to
keep the observer deterministic and cheap: between renders an event costs
two integer increments and a comparison.
"""

from __future__ import annotations

import sys
from typing import IO, Optional, Sequence

from .base import MachineObserver


class ProgressObserver(MachineObserver):
    """Emit a ``\\r``-refreshed ``Qr/Qw/phase`` status line.

    Parameters
    ----------
    stream:
        Where to render (default ``sys.stderr``).
    every:
        Render after this many I/O events (default 1000).
    label:
        Prefix identifying the run (e.g. the algorithm name).
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        every: int = 1000,
        label: str = "",
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.stream = stream if stream is not None else sys.stderr
        self.every = every
        self.label = label
        self.reads = 0
        self.writes = 0
        self.rounds = 0
        self._phases: list[str] = []
        self._pending = 0

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.reads += 1
        self._tick()

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.writes += 1
        self._tick()

    def on_phase_enter(self, name: str) -> None:
        self._phases.append(name)
        self._render()

    def on_phase_exit(self, name: str) -> None:
        if self._phases:
            self._phases.pop()

    def on_round_boundary(self, index: int) -> None:
        self.rounds += 1

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._pending += 1
        if self._pending >= self.every:
            self._render()

    def _render(self) -> None:
        self._pending = 0
        phase = "/".join(self._phases) if self._phases else "-"
        prefix = f"[{self.label}] " if self.label else ""
        line = f"{prefix}Qr={self.reads} Qw={self.writes} phase={phase}"
        if self.rounds:
            line += f" rounds={self.rounds}"
        self.stream.write("\r" + line.ljust(78))
        self.stream.flush()

    def close(self) -> None:
        """Render a final line and move off the status line."""
        self._render()
        self.stream.write("\n")
        self.stream.flush()
