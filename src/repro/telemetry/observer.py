"""Machine events → metrics registry.

:class:`MetricsObserver` sits on a machine's event bus and aggregates the
quantities the asymmetric-memory analysis cares about, labeled by the
innermost phase the machine was in when they happened:

* read/write I/O counts per phase (the ``Qr``/``Qw`` split of
  ``Q = Qr + omega*Qw``);
* read/write *cost* per phase — on an AEM machine the model's charge
  (``1``/``omega``), on a flash machine the transferred volume;
* internal-operation counts (``T``) per phase, round boundaries;
* a per-block write histogram, whose percentiles summarize wear the way
  the write-endurance literature budgets it.

Like every observer, attaching one is the *opt-in*: a machine with no
``MetricsObserver`` never pays a single instruction for any of this —
the core's per-event callback lists stay exactly as short as before.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..observe.base import MachineObserver
from ..observe.batch import KIND_WRITE
from .metrics import MetricsRegistry

#: Label applied to events that happen outside any declared phase.
NO_PHASE = "-"


class MetricsObserver(MachineObserver):
    """Aggregate machine events into a :class:`MetricsRegistry`.

    Parameters
    ----------
    registry:
        The registry to populate; a private one is created by default
        (``.registry`` to read it out either way).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._reads = reg.counter(
            "machine_reads_total", "read I/Os by phase", labels=("phase",)
        )
        self._writes = reg.counter(
            "machine_writes_total", "write I/Os by phase", labels=("phase",)
        )
        self._read_cost = reg.counter(
            "machine_read_cost_total",
            "summed per-event read cost by phase (AEM: Qr; flash: read volume)",
            labels=("phase",),
        )
        self._write_cost = reg.counter(
            "machine_write_cost_total",
            "summed per-event write cost by phase (AEM: omega*Qw; flash: write volume)",
            labels=("phase",),
        )
        self._touches = reg.counter(
            "machine_touches_total", "internal operations (T) by phase", labels=("phase",)
        )
        self._rounds = reg.counter(
            "machine_rounds_total", "declared round boundaries"
        )
        self._phase_stack: list[str] = []
        # Per-block write counts, folded into the wear histogram at
        # readout (a percentile over *final* counts, not running ones).
        self._block_writes: Dict[int, int] = {}
        self._core = None

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def _phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else NO_PHASE

    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def _sync(self) -> None:
        core = self._core
        if core is not None:
            core.flush_events()

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        phase = self._phase()
        self._reads.labels(phase=phase).inc()
        self._read_cost.labels(phase=phase).inc(cost)

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        phase = self._phase()
        self._writes.labels(phase=phase).inc()
        self._write_cost.labels(phase=phase).inc(cost)
        self._block_writes[addr] = self._block_writes.get(addr, 0) + 1

    def on_touch(self, k: int) -> None:
        self._touches.labels(phase=self._phase()).inc(k)

    def on_phase_enter(self, name: str) -> None:
        self._phase_stack.append(name)

    def on_phase_exit(self, name: str) -> None:
        if self._phase_stack:
            self._phase_stack.pop()

    def on_round_boundary(self, index: int) -> None:
        self._rounds.inc()

    def on_batch(self, batch) -> None:
        # One labels() resolution per family per flush instead of one per
        # event; the whole batch shares the innermost phase (exact, since
        # phase boundaries flush). The ``touch_events`` guard — not
        # ``touches`` — keeps series creation identical to synchronous
        # dispatch when a phase only ever reports touch(0).
        phase = self._phase()
        if batch.reads:
            self._reads.labels(phase=phase).inc(batch.reads)
            self._read_cost.labels(phase=phase).inc(batch.read_cost)
        if batch.writes:
            self._writes.labels(phase=phase).inc(batch.writes)
            self._write_cost.labels(phase=phase).inc(batch.write_cost)
            block_writes = self._block_writes
            get = block_writes.get
            for kind, addr in zip(batch.kinds, batch.addrs):
                if kind == KIND_WRITE:
                    block_writes[addr] = get(addr, 0) + 1
        if batch.touch_events:
            self._touches.labels(phase=phase).inc(batch.touches)

    # ------------------------------------------------------------------
    # Readout (buffered events are flushed first, so reads are exact).
    # ------------------------------------------------------------------
    def wear_histogram(self):
        """Per-block write counts as a :class:`~repro.telemetry.metrics.Histogram`."""
        self._sync()
        hist = self.registry.histogram(
            "machine_block_writes", "writes per external block (wear)"
        )
        solo = hist.labels()
        solo.values = list(self._block_writes.values())
        return solo

    def per_phase(self) -> Dict[str, dict]:
        """``{phase: {reads, writes, read_cost, write_cost, touches}}``."""
        self._sync()
        out: Dict[str, dict] = {}
        for family, field in (
            (self._reads, "reads"),
            (self._writes, "writes"),
            (self._read_cost, "read_cost"),
            (self._write_cost, "write_cost"),
            (self._touches, "touches"),
        ):
            for labels, metric in family.series():
                out.setdefault(labels["phase"], {})[field] = metric.value
        return out

    def summary(self) -> dict:
        """The manifest-ready aggregate: totals, phase split, wear."""
        wear = self.wear_histogram().summary()
        per_phase = self.per_phase()
        return {
            "reads": sum(p.get("reads", 0) for p in per_phase.values()),
            "writes": sum(p.get("writes", 0) for p in per_phase.values()),
            "read_cost": sum(p.get("read_cost", 0) for p in per_phase.values()),
            "write_cost": sum(p.get("write_cost", 0) for p in per_phase.values()),
            "rounds": self._rounds.labels().value,
            "per_phase": per_phase,
            "wear": {**wear, "blocks_written": wear["count"]},
        }

    def collect(self) -> dict:
        """The full registry dump (includes the wear histogram)."""
        self.wear_histogram()  # materialize before collecting
        return self.registry.collect()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.summary()
        return f"MetricsObserver(Qr={s['reads']} Qw={s['writes']})"
