"""I/O cost-attribution profiling: where Q = Qr + omega*Qw is spent.

:class:`CostProfiler` is a machine observer that mirrors the live nested
phase stack (via :class:`~repro.observe.phases.PhaseStack`) and
attributes every I/O to the *stack path* under which it happened —
``("sort", "form_runs")`` rather than the flat innermost-phase totals
the cost ledger keeps. On the batched bus it consumes whole
:class:`~repro.observe.batch.EventBatch` aggregates (phase boundaries
are flush points, so charging a batch to the current path is exact); in
events mode the per-event handlers produce the identical attribution.
It needs no payloads, so it works on counting machines unchanged.

The cardinal invariant is **conservation**: summed over all paths, the
attributed Qr / Qw / Q / T equal the machine's own cost ledger — checked
by :meth:`CostProfiler.conservation_errors` the same way
:class:`~repro.sanitize.cost.CostSanitizer` reconciles recomputed costs
against the ledger.

Exports:

* :func:`folded` — collapsed folded-stack text (``sort;form_runs 1340``,
  one line per path), the format flamegraph tooling ingests directly;
* :func:`speedscope` — a ``speedscope.app``-loadable sampled profile;
* :func:`render_table` — the top-N attribution table ``repro-aem
  profile`` prints.

All three take a ``weight`` from :data:`WEIGHTS`: ``q`` (the asymmetric
cost), ``qw`` / ``qr`` (write/read I/O counts — the quantities the
paper's lower bounds constrain), or ``io`` (total I/Os).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..observe.base import MachineObserver
from ..observe.batch import KIND_READ, KIND_WRITE
from ..observe.phases import PhaseStack

#: Selectable attribution weights: name -> PathStats accessor.
WEIGHTS = ("q", "qw", "qr", "io")

#: Reconciliation tolerance; costs are exact rational sums of 1/omega
#: steps accumulated in floats, same as the sanitizer's.
_TOL = 1e-9


@dataclass(frozen=True)
class PathStats:
    """Attributed totals for one phase-stack path."""

    reads: int = 0
    writes: int = 0
    read_cost: float = 0.0
    write_cost: float = 0.0
    touches: int = 0
    blocks: int = 0  # distinct blocks touched (when tracked; else 0)

    @property
    def q(self) -> float:
        """The asymmetric cost attributed here (Qr + omega*Qw on an AEM)."""
        return self.read_cost + self.write_cost

    @property
    def io(self) -> int:
        return self.reads + self.writes

    def weight(self, key: str) -> float:
        if key == "q":
            return self.q
        if key == "qw":
            return self.writes
        if key == "qr":
            return self.reads
        if key == "io":
            return self.io
        raise ValueError(f"weight must be one of {WEIGHTS}, got {key!r}")

    def merged(self, other: "PathStats") -> "PathStats":
        return PathStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_cost=self.read_cost + other.read_cost,
            write_cost=self.write_cost + other.write_cost,
            touches=self.touches + other.touches,
            blocks=max(self.blocks, other.blocks),
        )

    def as_dict(self) -> dict:
        # Ledger-keyed readout of *attributed* totals (the quantities the
        # conservation check reconciles), not a shadow cost record.
        return {  # lint: disable=AEM104
            "Qr": self.reads,
            "Qw": self.writes,
            "Q": self.q,
            "T": self.touches,
            "io_count": self.io,
            "blocks": self.blocks,
        }


Paths = Dict[Tuple[str, ...], PathStats]


class CostProfiler(MachineObserver):
    """Attribute I/O costs to live phase-stack paths; see the module doc.

    Parameters
    ----------
    root:
        The synthetic root frame exported profiles hang under (the
        workload or task label).
    track_blocks:
        Also count *distinct* blocks touched per path. This needs the
        per-event address columns, so it flips ``batch_columns`` on for
        this instance — slightly more bus work, identical attribution.
    """

    batch_columns = False

    def __init__(self, root: str = "run", *, track_blocks: bool = False):
        self.root = root
        self.track_blocks = bool(track_blocks)
        if self.track_blocks:
            # Instance-level override: this consumer now needs columns.
            self.batch_columns = True
        self.stack = PhaseStack()
        self._paths: Dict[Tuple[str, ...], list] = {}
        self._blocks: Dict[Tuple[str, ...], set] = {}
        self._core = None

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def _bucket(self) -> list:
        path = self.stack.current
        bucket = self._paths.get(path)
        if bucket is None:
            # [reads, writes, read_cost, write_cost, touches]
            bucket = self._paths[path] = [0, 0, 0.0, 0.0, 0]
        return bucket

    def _blockset(self) -> set:
        path = self.stack.current
        blocks = self._blocks.get(path)
        if blocks is None:
            blocks = self._blocks[path] = set()
        return blocks

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        bucket = self._bucket()
        bucket[0] += 1
        bucket[2] += cost
        if self.track_blocks:
            self._blockset().add(addr)

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        bucket = self._bucket()
        bucket[1] += 1
        bucket[3] += cost
        if self.track_blocks:
            self._blockset().add(addr)

    def on_touch(self, k: int) -> None:
        self._bucket()[4] += k

    def on_batch(self, batch) -> None:
        # Whole-batch attribution to the current path is exact: phase
        # boundaries flush before their callbacks fire, so everything in
        # the batch happened under the current stack.
        if not batch.n:
            return
        bucket = self._bucket()
        bucket[0] += batch.reads
        bucket[1] += batch.writes
        bucket[2] += batch.read_cost
        bucket[3] += batch.write_cost
        bucket[4] += batch.touches
        if self.track_blocks and batch.kinds:
            blocks = self._blockset()
            for kind, addr in zip(batch.kinds, batch.addrs):
                if kind == KIND_READ or kind == KIND_WRITE:
                    blocks.add(addr)

    def on_phase_enter(self, name: str) -> None:
        self.stack.enter(name)

    def on_phase_exit(self, name: str) -> None:
        self.stack.exit(name)

    # ------------------------------------------------------------------
    # Readout (flush-first, like every observer readout).
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        if self._core is not None:
            self._core.flush_events()

    def paths(self) -> Paths:
        """Attribution by stack path (root not included in the keys)."""
        self._sync()
        return {
            path: PathStats(
                reads=bucket[0],
                writes=bucket[1],
                read_cost=bucket[2],
                write_cost=bucket[3],
                touches=bucket[4],
                blocks=len(self._blocks.get(path, ())),
            )
            for path, bucket in self._paths.items()
        }

    def totals(self) -> PathStats:
        """Everything attributed, summed over paths."""
        total = PathStats()
        for stats in self.paths().values():
            total = total.merged(stats)
        return total

    def conservation_errors(self, ledger: Mapping) -> list[str]:
        """Reconcile attributed totals against a cost ledger.

        ``ledger`` is anything Mapping-shaped with the ledger keys — a
        :class:`~repro.machine.cost.CostRecord`, a ``CostObserver``
        snapshot dict, or a plain dict. Returns human-readable mismatch
        descriptions (empty == conserved), mirroring how the cost
        sanitizer reconciles recomputed costs.
        """
        def lookup(key: str):
            # CostRecord is Mapping-shaped but has no .get; plain dicts do.
            try:
                return ledger[key]
            except (KeyError, TypeError):
                return None

        total = self.totals()
        io_count = lookup("io_count")
        if io_count is None and lookup("Qr") is not None and lookup("Qw") is not None:
            io_count = lookup("Qr") + lookup("Qw")
        checks = (
            ("Qr", total.reads, lookup("Qr")),
            ("Qw", total.writes, lookup("Qw")),
            ("Q", total.q, lookup("Q")),
            ("T", total.touches, lookup("T")),
            ("io_count", total.io, io_count),
        )
        errors = []
        for name, attributed, expected in checks:
            if expected is None:
                continue
            if abs(attributed - expected) > _TOL:
                errors.append(
                    f"{name}: attributed {attributed!r} != ledger {expected!r}"
                )
        return errors

    # Export conveniences over this profiler's own paths.
    def folded(self, weight: str = "q") -> str:
        return folded(self.paths(), weight=weight, root=self.root)

    def speedscope(self, weight: str = "q", name: Optional[str] = None) -> dict:
        return speedscope(
            self.paths(), weight=weight, name=name or self.root, root=self.root
        )

    def table(self, weight: str = "q", top: int = 20) -> str:
        return render_table(self.paths(), weight=weight, top=top, root=self.root)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostProfiler({self.root!r}, {len(self._paths)} paths)"


# ----------------------------------------------------------------------
# Path-dict combinators and exports (module functions so merged/aggregated
# path dicts — e.g. one per sweep config — share the same formatting).
# ----------------------------------------------------------------------
def merge_paths(
    parts: Iterable[Tuple[str, Paths]],
) -> Paths:
    """Combine per-run path dicts, rooting each under its label.

    ``[("aem_mergesort[0]", paths0), ...]`` becomes one dict whose keys
    are ``(label, *path)`` — the aggregate profile of a whole sweep with
    per-config provenance preserved.
    """
    merged: Paths = {}
    for label, paths in parts:
        for path, stats in paths.items():
            key = (label,) + path
            merged[key] = merged[key].merged(stats) if key in merged else stats
    return merged


def _ordered(paths: Paths, weight: str) -> list[Tuple[Tuple[str, ...], PathStats]]:
    return sorted(
        paths.items(),
        key=lambda item: (-item[1].weight(weight), item[0]),
    )


def folded(paths: Paths, *, weight: str = "q", root: str = "") -> str:
    """Collapsed folded-stack text: ``root;outer;inner weight`` per line.

    Weights are *exclusive* by construction — the profiler attributes
    each event to the innermost live path only — which is exactly what
    folded-stack consumers (flamegraph.pl, speedscope, inferno) expect.
    Zero-weight paths are dropped.
    """
    prefix = (root,) if root else ()
    lines = []
    for path in sorted(paths):
        value = paths[path].weight(weight)
        if not value:
            continue
        lines.append(f"{';'.join(prefix + path)} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope(
    paths: Paths,
    *,
    weight: str = "q",
    name: str = "repro-aem profile",
    root: str = "",
) -> dict:
    """The profile as a speedscope *sampled* profile JSON object.

    Each attributed path becomes one sample whose weight is the selected
    metric — load the file at ``https://www.speedscope.app`` (or pipe
    through ``speedscope`` locally) for an interactive flame view.
    """
    prefix = (root,) if root else ()
    frame_index: Dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[float] = []
    for path, stats in _ordered(paths, weight):
        value = stats.weight(weight)
        if not value:
            continue
        stack = []
        for frame_name in prefix + path:
            idx = frame_index.get(frame_name)
            if idx is None:
                idx = frame_index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            stack.append(idx)
        samples.append(stack)
        weights.append(value)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro-aem profile",
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": f"{name} ({weight})",
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def render_table(
    paths: Paths, *, weight: str = "q", top: int = 20, root: str = ""
) -> str:
    """The top-N attribution table the CLI prints."""
    ordered = [
        (path, stats)
        for path, stats in _ordered(paths, weight)
        if stats.weight(weight)
    ]
    total = sum(stats.weight(weight) for _, stats in ordered) or 1.0
    shown = ordered[: max(top, 0)]
    prefix = (root,) if root else ()
    rows = [
        (
            ";".join(prefix + path),
            f"{stats.reads}",
            f"{stats.writes}",
            f"{stats.q:g}",
            f"{stats.io}",
            f"{stats.weight(weight) / total:6.1%}",
        )
        for path, stats in shown
    ]
    header = ("path", "Qr", "Qw", "Q", "io", f"%{weight}")
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows))
        if rows
        else len(header[col])
        for col in range(len(header))
    ]
    def fmt(row: Tuple[str, ...]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[col].rjust(widths[col]) for col in range(1, len(row))]
        return "  ".join(cells)

    lines = [fmt(header)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    if len(ordered) > len(shown):
        lines.append(f"... {len(ordered) - len(shown)} more path(s)")
    return "\n".join(lines)
