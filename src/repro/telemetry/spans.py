"""End-to-end trace propagation: span contexts + machine span recording.

A :class:`SpanContext` is the identity of one unit of traced work —
``trace_id`` names the whole request chain, ``span_id`` this hop,
``parent_id`` the hop that caused it. The serving layer mints a root
context per admitted query, returns it in the ``/evaluate`` response,
and threads it through :func:`repro.api.sweep` →
:meth:`repro.engine.core.SweepEngine.map` → (pickled) into pool workers,
where it is re-established around the machine run. The pieces of one
request then stitch into a single navigable Perfetto timeline via flow
events (``s``/``t``/``f`` — see
:meth:`~repro.telemetry.perfetto.ChromeTraceBuilder.flow_start`).

Propagation is *ambient* inside one process: :func:`use_span` installs
the current span, :func:`use_collector` the segment sink, and any
:class:`~repro.machine.core.MachineCore` constructed while both are
active auto-attaches a :class:`SpanPhaseRecorder` (the machine layer
stays import-free of telemetry — it only calls a factory this module
installs via
:func:`repro.machine.core.install_span_observer_factory`). Workers
re-establish the span explicitly from the pickled context and ship their
recorded segments back as plain dicts.

The machine has no wall clock — its timeline is the logical one
microsecond per I/O — so each recorded segment also carries the
``time.perf_counter()`` at which its machine was built. Rendering
(:func:`render_machine_segments`) anchors the logical timeline at that
wall instant relative to the trace's ``t0``, which keeps the flow chain
monotonic: request lane → engine task lane → machine phases.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence

from ..machine.core import install_span_observer_factory
from ..observe.base import MachineObserver
from ..observe.phases import PhaseStack
from .perfetto import MACHINE_PID, ChromeTraceBuilder

#: Category stamped on every flow event a span chain emits; the flow
#: name/cat/id triple must match across s/t/f for viewers to bind them.
FLOW_CAT = "flow"
FLOW_NAME = "query"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """One hop of a traced request: (trace_id, span_id, parent_id).

    Frozen and trivially picklable — it crosses the process boundary
    into pool workers and comes back in JSON responses and manifests.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def root(cls) -> "SpanContext":
        """Mint a fresh root span (new trace)."""
        return cls(trace_id=_new_id(), span_id=_new_id())

    def child(self) -> "SpanContext":
        """A new span in the same trace, parented to this one."""
        return SpanContext(
            trace_id=self.trace_id, span_id=_new_id(), parent_id=self.span_id
        )

    @property
    def flow_id(self) -> str:
        """The Perfetto flow-event id: the whole chain shares the trace."""
        return self.trace_id

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
        )


# ----------------------------------------------------------------------
# Ambient propagation (one process, one strand of execution at a time:
# the engine runs batches sequentially and workers re-establish their
# own span, so plain module state is sufficient and cheap).
# ----------------------------------------------------------------------
_SPAN_STACK: list[SpanContext] = []
_COLLECTOR: Optional["SpanCollector"] = None


def current_span() -> Optional[SpanContext]:
    """The innermost span installed by :func:`use_span`, or ``None``."""
    return _SPAN_STACK[-1] if _SPAN_STACK else None


def current_collector() -> Optional["SpanCollector"]:
    """The segment sink installed by :func:`use_collector`, or ``None``."""
    return _COLLECTOR


@contextmanager
def use_span(span: SpanContext) -> Iterator[SpanContext]:
    """Install ``span`` as the ambient span for the ``with`` block."""
    _SPAN_STACK.append(span)
    try:
        yield span
    finally:
        _SPAN_STACK.pop()


def set_collector(
    collector: Optional["SpanCollector"],
) -> Optional["SpanCollector"]:
    """Install the ambient segment collector; returns the previous one.

    The server uses this across its whole lifetime (start → drain);
    scoped callers should prefer :func:`use_collector`.
    """
    global _COLLECTOR
    previous = _COLLECTOR
    _COLLECTOR = collector
    return previous


@contextmanager
def use_collector(collector: "SpanCollector") -> Iterator["SpanCollector"]:
    """Install ``collector`` as the ambient sink for the ``with`` block."""
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


class SpanPhaseRecorder(MachineObserver):
    """Record one machine run's phase timeline under a span context.

    Attached automatically (via the machine-core factory hook) to every
    machine built while an ambient span *and* collector are active. The
    timeline uses the machine's logical clock (one tick per I/O) and is
    aggregate-only on the batched bus (``batch_columns = False``) —
    phase boundaries are flush points, so the tick at each ``B``/``E``
    mark is exact in either dispatch mode.
    """

    batch_columns = False

    def __init__(self, span: SpanContext):
        self.span = span
        self.wall_start = time.perf_counter()
        self.clock = 0  # logical microseconds: one per I/O
        self.reads = 0
        self.writes = 0
        self.read_cost = 0.0
        self.write_cost = 0.0
        self.timeline: list[tuple] = []  # ("B"|"E", phase name, tick)
        self._core = None

    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.clock += 1
        self.reads += 1
        self.read_cost += cost

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.clock += 1
        self.writes += 1
        self.write_cost += cost

    def on_batch(self, batch) -> None:
        self.clock += batch.reads + batch.writes
        self.reads += batch.reads
        self.writes += batch.writes
        self.read_cost += batch.read_cost
        self.write_cost += batch.write_cost

    def on_phase_enter(self, name: str) -> None:
        self.timeline.append(("B", name, self.clock))

    def on_phase_exit(self, name: str) -> None:
        self.timeline.append(("E", name, self.clock))

    def export(self) -> dict:
        """The segment as a plain picklable dict (buffered events first)."""
        if self._core is not None:
            self._core.flush_events()
        return {
            "span": self.span.as_dict(),
            "wall_start": self.wall_start,
            "io": self.clock,
            "reads": self.reads,
            "writes": self.writes,
            "read_cost": self.read_cost,
            "write_cost": self.write_cost,
            "timeline": list(self.timeline),
        }


class SpanCollector:
    """Gathers the machine segments recorded under one trace sink.

    Local machine runs contribute live :class:`SpanPhaseRecorder`
    instances (created by the factory hook); pool workers contribute
    already-exported dicts shipped back through the engine.
    """

    def __init__(self) -> None:
        self._recorders: list[SpanPhaseRecorder] = []
        self._imported: list[dict] = []

    def make_recorder(self, span: SpanContext) -> SpanPhaseRecorder:
        recorder = SpanPhaseRecorder(span)
        self._recorders.append(recorder)
        return recorder

    def extend(self, segments: Sequence[Mapping]) -> None:
        """Absorb exported segments (e.g. shipped back from a worker)."""
        self._imported.extend(dict(seg) for seg in segments)

    def export(self) -> list[dict]:
        """Every segment, exported, in recording order."""
        return [r.export() for r in self._recorders] + list(self._imported)

    def __len__(self) -> int:
        return len(self._recorders) + len(self._imported)


def _ambient_recorder() -> Optional[SpanPhaseRecorder]:
    """The machine-core factory: record only inside an active trace."""
    span = current_span()
    collector = current_collector()
    if span is None or collector is None:
        return None
    return collector.make_recorder(span)


install_span_observer_factory(_ambient_recorder)


# ----------------------------------------------------------------------
# Rendering: machine segments → pid-1 tracks + flow terminations.
# ----------------------------------------------------------------------
def render_machine_segments(
    builder: ChromeTraceBuilder,
    segments: Sequence[Mapping],
    *,
    t0: float,
    pid: int = MACHINE_PID,
    flow: bool = True,
) -> ChromeTraceBuilder:
    """Render exported machine segments into a shared trace builder.

    Each segment gets its own thread lane: a root ``machine run`` span
    anchored at ``(wall_start - t0)`` wall microseconds, its phase
    timeline at ``anchor + logical tick`` (one microsecond per I/O), and
    — when ``flow`` is set — the terminating ``f`` flow event of the
    segment's trace, landing on the root span so the chain
    request lane → engine task → machine phases is navigable.
    """
    if segments:
        builder.process_name(pid, "machine runs (logical I/O clock)")
    for lane, seg in enumerate(segments, start=1):
        span = SpanContext.from_dict(seg["span"])
        anchor = (float(seg["wall_start"]) - t0) * 1e6
        builder.thread_name(pid, lane, f"machine run {span.span_id[:8]}")
        builder.begin(
            "machine run",
            anchor,
            pid=pid,
            tid=lane,
            cat="machine",
            args={  # trace args, not a cost record  # lint: disable=AEM104
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "Qr": seg["reads"],
                "Qw": seg["writes"],
            },
        )
        if flow:
            builder.flow_end(
                FLOW_NAME, anchor, id=span.flow_id, pid=pid, tid=lane,
                cat=FLOW_CAT,
            )
        for kind, name, tick in seg["timeline"]:
            ts = anchor + tick
            if kind == "B":
                builder.begin(name, ts, pid=pid, tid=lane, cat="phase")
            else:
                builder.end(name, ts, pid=pid, tid=lane)
        builder.end("machine run", anchor + seg["io"], pid=pid, tid=lane)
    return builder
