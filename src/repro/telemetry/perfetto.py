"""Chrome-trace/Perfetto export of machine and engine activity.

Emits the `Trace Event Format`_ JSON that ``ui.perfetto.dev`` (and
``chrome://tracing``) loads directly:

* :class:`ChromeTraceBuilder` — the low-level event sink: duration
  begin/end pairs (``B``/``E``), complete spans (``X``), counter samples
  (``C``), instants (``i``), and process/thread-name metadata (``M``),
  serialized as ``{"traceEvents": [...]}``.
* :class:`PerfettoObserver` — a machine observer that renders a run's
  event stream onto a builder: declared phases become nested duration
  spans, every I/O advances counter tracks (``Qr``/``Qw`` and their
  summed costs), and round boundaries become instant markers.
* :func:`validate_trace` — the structural checks the test suite (and the
  CLI, cheaply) run on every exported trace: required keys, monotonic
  timestamps, matched ``B``/``E`` nesting per thread, and flow-event
  integrity (every ``s``/``t``/``f`` flow lands on a real slice and
  forms a well-ordered chain per id; see
  :meth:`ChromeTraceBuilder.flow_start`).

The simulator has no wall clock of its own, so the machine timeline uses
a *logical* clock: one microsecond per I/O event. That makes span widths
in Perfetto directly proportional to I/O counts — the model's actual
notion of time — rather than to Python's execution speed. Engine worker
spans (:meth:`repro.telemetry.engine_metrics.EngineTelemetry.to_trace`)
use real wall-clock microseconds on their own process track; the two
clocks never share a track, so mixing them in one file is safe.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Mapping, Optional, Sequence, Union

from ..observe.base import MachineObserver
from ..observe.batch import KIND_READ, KIND_WRITE

#: pid assigned to machine-event tracks (engine tracks use ENGINE_PID).
MACHINE_PID = 1
ENGINE_PID = 2

#: Keys every trace event must carry to be loadable.
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


class ChromeTraceBuilder:
    """Accumulates trace events; serializes the Chrome trace JSON object."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    # Event constructors.
    # ------------------------------------------------------------------
    def _event(self, **fields) -> dict:
        if fields.get("args") is None:
            fields.pop("args", None)
        if not fields.get("cat"):
            fields.pop("cat", None)
        self.events.append(fields)
        return fields

    def begin(
        self,
        name: str,
        ts: float,
        *,
        pid: int = MACHINE_PID,
        tid: int = 1,
        cat: str = "",
        args: Optional[Mapping] = None,
    ) -> dict:
        return self._event(name=name, ph="B", ts=ts, pid=pid, tid=tid, cat=cat, args=args)

    def end(self, name: str, ts: float, *, pid: int = MACHINE_PID, tid: int = 1) -> dict:
        return self._event(name=name, ph="E", ts=ts, pid=pid, tid=tid)

    def complete(
        self,
        name: str,
        ts: float,
        dur: float,
        *,
        pid: int = MACHINE_PID,
        tid: int = 1,
        cat: str = "",
        args: Optional[Mapping] = None,
    ) -> dict:
        return self._event(
            name=name, ph="X", ts=ts, dur=dur, pid=pid, tid=tid, cat=cat, args=args
        )

    def counter(
        self,
        name: str,
        ts: float,
        values: Mapping[str, float],
        *,
        pid: int = MACHINE_PID,
        tid: int = 1,
    ) -> dict:
        return self._event(name=name, ph="C", ts=ts, pid=pid, tid=tid, args=dict(values))

    def instant(
        self,
        name: str,
        ts: float,
        *,
        pid: int = MACHINE_PID,
        tid: int = 1,
        scope: str = "t",
        args: Optional[Mapping] = None,
    ) -> dict:
        return self._event(
            name=name, ph="i", ts=ts, pid=pid, tid=tid, s=scope, args=args
        )

    def _flow(
        self,
        ph: str,
        name: str,
        ts: float,
        *,
        id: str,
        pid: int,
        tid: int,
        cat: str,
    ) -> dict:
        fields = dict(name=name, ph=ph, ts=ts, pid=pid, tid=tid, cat=cat, id=id)
        if ph == "f":
            # Bind the termination to its enclosing slice (not the next
            # slice to start), matching how s/t bind.
            fields["bp"] = "e"
        return self._event(**fields)

    def flow_start(
        self,
        name: str,
        ts: float,
        *,
        id: str,
        pid: int = MACHINE_PID,
        tid: int = 1,
        cat: str = "flow",
    ) -> dict:
        """Open a flow (``ph="s"``); must land inside a slice on (pid, tid).

        Flow events stitch slices on different tracks into one causal
        chain: the viewer draws an arrow from each flow event to the
        next one carrying the same ``name``/``cat``/``id``. Exactly one
        ``s`` starts a chain; ``t`` steps continue it; ``f`` ends it.
        """
        return self._flow("s", name, ts, id=id, pid=pid, tid=tid, cat=cat)

    def flow_step(
        self,
        name: str,
        ts: float,
        *,
        id: str,
        pid: int = MACHINE_PID,
        tid: int = 1,
        cat: str = "flow",
    ) -> dict:
        """Continue a flow (``ph="t"``) on another slice."""
        return self._flow("t", name, ts, id=id, pid=pid, tid=tid, cat=cat)

    def flow_end(
        self,
        name: str,
        ts: float,
        *,
        id: str,
        pid: int = MACHINE_PID,
        tid: int = 1,
        cat: str = "flow",
    ) -> dict:
        """Terminate a flow (``ph="f"``, bound to the enclosing slice)."""
        return self._flow("f", name, ts, id=id, pid=pid, tid=tid, cat=cat)

    def process_name(self, pid: int, name: str) -> dict:
        return self._event(
            name="process_name", ph="M", ts=0, pid=pid, tid=0, args={"name": name}
        )

    def thread_name(self, pid: int, tid: int, name: str) -> dict:
        return self._event(
            name="thread_name", ph="M", ts=0, pid=pid, tid=tid, args={"name": name}
        )

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def trace(self) -> dict:
        """The JSON object Perfetto loads.

        Events are stably sorted by timestamp (metadata first), so a
        builder fed by several sources still reads in time order;
        same-timestamp events keep their emission order, preserving
        ``B``-before-``E`` nesting.
        """
        meta = [e for e in self.events if e["ph"] == "M"]
        rest = sorted(
            (e for e in self.events if e["ph"] != "M"), key=lambda e: e["ts"]
        )
        return {"traceEvents": meta + rest, "displayTimeUnit": "ms"}

    def write(self, destination: Union[str, Path, IO[str]]) -> None:
        blob = json.dumps(self.trace())
        if hasattr(destination, "write"):
            destination.write(blob)
            return
        path = Path(destination)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(blob, encoding="utf-8")

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChromeTraceBuilder({len(self.events)} events)"


class PerfettoObserver(MachineObserver):
    """Render a machine's event stream as a Perfetto-loadable timeline.

    Parameters
    ----------
    builder:
        Sink shared with other sources (engine spans, a second machine on
        another ``tid``); private by default.
    label:
        Process name shown in the Perfetto track list.
    tid:
        Thread track for this machine's spans/counters.
    every:
        Sample the counter tracks every this-many I/Os (default 1 =
        every I/O; raise it for very long runs to bound trace size).
    """

    def __init__(
        self,
        builder: Optional[ChromeTraceBuilder] = None,
        *,
        label: str = "machine",
        pid: int = MACHINE_PID,
        tid: int = 1,
        every: int = 1,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.builder = builder if builder is not None else ChromeTraceBuilder()
        self.pid = pid
        self.tid = tid
        self.every = every
        self.clock = 0  # logical microseconds: one per I/O event
        self._reads = 0
        self._writes = 0
        self._read_cost = 0.0
        self._write_cost = 0.0
        self._open_phases: list[str] = []
        self._core = None
        self.builder.process_name(pid, label)
        self.builder.thread_name(pid, tid, "machine events")

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_attach(self, core) -> None:
        self._core = core

    def on_detach(self, core) -> None:
        self._core = None
    def _sample_counters(self) -> None:
        io = self._reads + self._writes
        if io % self.every:
            return
        self.builder.counter(
            "I/O", self.clock,
            {"Qr": self._reads, "Qw": self._writes},  # lint: disable=AEM104
            pid=self.pid, tid=self.tid,
        )
        self.builder.counter(
            "cost", self.clock,
            {"read": self._read_cost, "write": self._write_cost},
            pid=self.pid, tid=self.tid,
        )

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.clock += 1
        self._reads += 1
        self._read_cost += cost
        self._sample_counters()

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.clock += 1
        self._writes += 1
        self._write_cost += cost
        self._sample_counters()

    def on_batch(self, batch) -> None:
        # The logical clock advances one tick per I/O, and counter
        # sampling keys off the running totals, so batched delivery walks
        # the kind/cost columns and produces the identical event list a
        # synchronous run would. Phase/round marks stay synchronous and
        # land at the right clock because boundaries flush first.
        if not (batch.reads or batch.writes):
            return
        for kind, cost in zip(batch.kinds, batch.costs):
            if kind == KIND_READ:
                self.clock += 1
                self._reads += 1
                self._read_cost += cost
                self._sample_counters()
            elif kind == KIND_WRITE:
                self.clock += 1
                self._writes += 1
                self._write_cost += cost
                self._sample_counters()

    def on_phase_enter(self, name: str) -> None:
        self._open_phases.append(name)
        self.builder.begin(name, self.clock, pid=self.pid, tid=self.tid, cat="phase")

    def on_phase_exit(self, name: str) -> None:
        if self._open_phases:
            self._open_phases.pop()
        self.builder.end(name, self.clock, pid=self.pid, tid=self.tid)

    def on_round_boundary(self, index: int) -> None:
        self.builder.instant(
            "round boundary", self.clock, pid=self.pid, tid=self.tid,
            args={"io_count": index},
        )

    # ------------------------------------------------------------------
    # Finalization.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close any phases left open (e.g. a run aborted mid-phase), so
        the exported trace always has matched ``B``/``E`` pairs. Buffered
        batch events are flushed first so the timeline is complete."""
        if self._core is not None:
            self._core.flush_events()
        while self._open_phases:
            self.builder.end(
                self._open_phases.pop(), self.clock, pid=self.pid, tid=self.tid
            )

    def write(self, destination: Union[str, Path, IO[str]]) -> None:
        """Finalize and serialize this observer's builder."""
        self.close()
        self.builder.write(destination)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PerfettoObserver({len(self.builder)} events, clock={self.clock})"


def validate_trace(trace: Mapping) -> None:
    """Raise ``ValueError`` unless ``trace`` is structurally loadable.

    Checks the invariants the exporters guarantee: a ``traceEvents``
    list; every event carrying :data:`REQUIRED_EVENT_KEYS` with sane
    types; per-``(pid, tid)`` non-decreasing timestamps; strictly
    matched, properly nested ``B``/``E`` pairs; non-negative ``X``
    durations; counter samples with numeric values; flow-event
    integrity — every ``s``/``t``/``f`` carries an ``id``, lands inside
    a real slice on its track, and each flow id forms a well-ordered
    chain (exactly one ``s``, opening the chain; at most one ``f``,
    closing it; one flow name throughout).
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    last_ts: dict = {}
    stacks: dict = {}  # track -> [(name, begin ts), ...] open B events
    slices: dict = {}  # track -> [(start, end), ...] closed B/E + X spans
    flows: list = []  # (event index, event)
    for i, ev in enumerate(events):
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                raise ValueError(f"event {i} missing required key {key!r}: {ev}")
        if not isinstance(ev["ts"], (int, float)):
            raise ValueError(f"event {i} has non-numeric ts: {ev['ts']!r}")
        if ev["ph"] == "M":
            continue
        track = (ev["pid"], ev["tid"])
        if ev["ts"] < last_ts.get(track, float("-inf")):
            raise ValueError(
                f"event {i} goes backwards on track {track}: "
                f"ts {ev['ts']} after {last_ts[track]}"
            )
        last_ts[track] = ev["ts"]
        if ev["ph"] == "B":
            stacks.setdefault(track, []).append((ev["name"], ev["ts"]))
        elif ev["ph"] == "E":
            stack = stacks.get(track) or []
            if not stack:
                raise ValueError(f"event {i}: 'E' {ev['name']!r} with no open 'B'")
            top, begin_ts = stack.pop()
            if top != ev["name"]:
                raise ValueError(
                    f"event {i}: 'E' {ev['name']!r} closes open 'B' {top!r}"
                )
            slices.setdefault(track, []).append((begin_ts, ev["ts"]))
        elif ev["ph"] == "X":
            if ev.get("dur", -1) < 0:
                raise ValueError(f"event {i}: 'X' span needs a dur >= 0: {ev}")
            slices.setdefault(track, []).append((ev["ts"], ev["ts"] + ev["dur"]))
        elif ev["ph"] == "C":
            args = ev.get("args", {})
            if not args or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ValueError(f"event {i}: counter needs numeric args: {ev}")
        elif ev["ph"] in ("s", "t", "f"):
            if "id" not in ev:
                raise ValueError(f"event {i}: flow event needs an 'id': {ev}")
            flows.append((i, ev))
    for track, stack in stacks.items():
        if stack:
            raise ValueError(
                f"track {track} has unclosed 'B' events: "
                f"{[name for name, _ in stack]}"
            )
    _validate_flows(flows, slices)


def _validate_flows(flows: list, slices: Mapping) -> None:
    """Flow integrity: every flow lands on a real span, chains are sane."""
    chains: dict = {}
    for i, ev in flows:
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not any(
            start <= ts <= end for start, end in slices.get(track, ())
        ):
            raise ValueError(
                f"event {i}: flow '{ev['ph']}' (id {ev['id']!r}) at ts {ts} "
                f"lands on no slice of track {track}"
            )
        chains.setdefault(ev["id"], []).append((ts, i, ev))
    for flow_id, chain in chains.items():
        chain.sort(key=lambda item: item[:2])
        starts = [item for item in chain if item[2]["ph"] == "s"]
        ends = [item for item in chain if item[2]["ph"] == "f"]
        if len(starts) != 1:
            raise ValueError(
                f"flow id {flow_id!r} has {len(starts)} 's' events (need 1)"
            )
        if chain[0][2]["ph"] != "s":
            raise ValueError(
                f"flow id {flow_id!r} does not open with its 's' event"
            )
        if len(ends) > 1:
            raise ValueError(
                f"flow id {flow_id!r} has {len(ends)} 'f' events (max 1)"
            )
        if ends and chain[-1][2]["ph"] != "f":
            raise ValueError(
                f"flow id {flow_id!r} continues past its 'f' event"
            )
        names = {item[2]["name"] for item in chain}
        if len(names) != 1:
            raise ValueError(
                f"flow id {flow_id!r} mixes names {sorted(names)}; viewers "
                "bind flows by (name, cat, id)"
            )
