"""Telemetry: durable, comparable observability artifacts.

PR 1 put an event bus under every machine and PR 2 made sweeps parallel
and cached; this package turns those signals into things you can keep,
diff, and load into other tools:

* :mod:`~repro.telemetry.metrics` — a lightweight labeled metrics
  registry (:class:`MetricsRegistry`: counters, gauges, exact-storage
  histograms with percentiles);
* :mod:`~repro.telemetry.observer` — :class:`MetricsObserver`, the event
  bus → registry bridge (per-phase ``Qr``/``Qw``/cost splits, wear
  percentiles);
* :mod:`~repro.telemetry.engine_metrics` — :class:`EngineTelemetry`,
  the sweep engine's task-span recorder (per-task wall time, cache
  hit/miss provenance, worker utilization);
* :mod:`~repro.telemetry.perfetto` — Chrome-trace/Perfetto export
  (:class:`ChromeTraceBuilder`, :class:`PerfettoObserver`,
  :func:`validate_trace`): phases as duration spans, I/Os as counter
  tracks, rounds as instants, engine tasks as worker-lane spans, all in
  one ``trace.json`` loadable at ``ui.perfetto.dev``;
* :mod:`~repro.telemetry.spans` — end-to-end trace propagation
  (:class:`SpanContext`, :class:`SpanCollector`,
  :class:`SpanPhaseRecorder`): one id minted per serve request, carried
  through the engine into the machine, stitched back together as
  Perfetto flow events;
* :mod:`~repro.telemetry.profile` — :class:`CostProfiler`, the
  I/O cost-attribution profiler (per-phase-path ``Qr``/``Qw``/``Q``
  attribution, folded-stack and speedscope export);
* :mod:`~repro.telemetry.manifest` — the JSONL run manifest every
  ``--telemetry-dir`` invocation appends to;
* :mod:`~repro.telemetry.bench` — the ``BENCH_<stamp>.json`` benchmark
  trajectory and its CI regression gate.

Everything is attach-to-observe: a run without telemetry observers pays
nothing beyond the machine core's empty-callback-list check.
"""

from .engine_metrics import EngineTelemetry, TaskSpan
from .manifest import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    append_record,
    read_manifest,
    run_record,
)
from .metrics import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry
from .observer import MetricsObserver
from .perfetto import (
    ChromeTraceBuilder,
    PerfettoObserver,
    validate_trace,
)
from .profile import (
    WEIGHTS,
    CostProfiler,
    PathStats,
    folded,
    merge_paths,
    render_table,
    speedscope,
)
from .spans import (
    SpanCollector,
    SpanContext,
    SpanPhaseRecorder,
    current_collector,
    current_span,
    render_machine_segments,
    set_collector,
    use_collector,
    use_span,
)

__all__ = [
    "ChromeTraceBuilder",
    "CostProfiler",
    "Counter",
    "EngineTelemetry",
    "Gauge",
    "Histogram",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "MetricFamily",
    "MetricsObserver",
    "MetricsRegistry",
    "PathStats",
    "PerfettoObserver",
    "SpanCollector",
    "SpanContext",
    "SpanPhaseRecorder",
    "TaskSpan",
    "WEIGHTS",
    "append_record",
    "current_collector",
    "current_span",
    "folded",
    "merge_paths",
    "read_manifest",
    "render_machine_segments",
    "render_table",
    "run_record",
    "set_collector",
    "speedscope",
    "use_collector",
    "use_span",
    "validate_trace",
]
