"""The benchmark trajectory: ``BENCH_<stamp>.json`` points + regression gate.

The ROADMAP's mandate is "fast as the hardware allows"; this module is
how the repository *knows* whether it still is. One run of the suite

1. executes a fixed set of benchmark cases (sorters, permuters, SpMxV
   on pinned instances) measuring wall time and the exact model costs
   (``Q``/``Qr``/``Qw`` — deterministic, so any drift is an algorithm
   change, not noise);
2. writes the results as one ``BENCH_<stamp>.json`` *trajectory point*
   (committing a sequence of them across PRs plots the repo's
   performance history);
3. gates against the committed baseline
   (``benchmarks/BENCH_baseline.json``): any case slower than
   ``baseline * threshold`` exits nonzero. The threshold lives in ONE
   place — :data:`DEFAULT_THRESHOLD`, overridable by the
   ``REPRO_BENCH_THRESHOLD`` environment variable or ``--threshold`` —
   so tightening the gate is a one-line change.

Wall times are min-of-``repeats`` (the standard noise floor estimator);
cost drift is reported as a warning rather than a failure, because a
deliberate algorithmic improvement *should* change costs — the fix is
``--write-baseline``, reviewed like any other diff.

Entry points: ``repro-aem bench`` (the CLI) and
``scripts/bench_trajectory.py`` (CI / direct use).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

from ..core.params import AEMParams
from .manifest import json_default, utc_now

#: The one place the gate's slowdown threshold is defined (a current
#: wall time above ``baseline * threshold`` fails the gate). CI and the
#: CLI both read it through :func:`default_threshold`.
DEFAULT_THRESHOLD = 2.5

THRESHOLD_ENV = "REPRO_BENCH_THRESHOLD"

#: Where the committed baseline trajectory point lives.
BASELINE_PATH = "benchmarks/BENCH_baseline.json"

BENCH_SCHEMA = 1


def default_threshold() -> float:
    return float(os.environ.get(THRESHOLD_ENV, DEFAULT_THRESHOLD))


# ----------------------------------------------------------------------
# The suite.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a callable returning a CostRecord-like mapping.

    ``setup``, when present, runs fresh before every timed repeat and its
    return value is passed to ``run``; its wall time is excluded. Use it
    when instance construction would otherwise dominate the measured
    region (the micro cases); end-to-end cases leave it ``None``.
    """

    name: str
    run: Callable[..., Mapping]
    setup: Optional[Callable[[], object]] = None


def _sort_case(
    sorter: str, n: int, params: AEMParams, *, counting: bool = False
) -> BenchCase:
    from ..api.measures import measure_sort

    return BenchCase(
        f"sort/{sorter}/n{n}" + ("/counting" if counting else ""),
        lambda: measure_sort(sorter, n, params, counting=counting),
    )


def _permute_case(
    permuter: str, n: int, params: AEMParams, *, counting: bool = False
) -> BenchCase:
    from ..api.measures import measure_permute

    return BenchCase(
        f"permute/{permuter}/n{n}" + ("/counting" if counting else ""),
        lambda: measure_permute(permuter, n, params, counting=counting),
    )


def _spmxv_case(
    algorithm: str, n: int, delta: int, params: AEMParams, *, counting: bool = False
) -> BenchCase:
    from ..api.measures import measure_spmxv

    return BenchCase(
        f"spmxv/{algorithm}/n{n}d{delta}" + ("/counting" if counting else ""),
        lambda: measure_spmxv(algorithm, n, delta, params, counting=counting),
    )


def _index_case(
    n: int, params: AEMParams, *, counting: bool = False
) -> BenchCase:
    from ..workloads.search.measures import measure_index_build

    return BenchCase(
        f"index/build/n{n}" + ("/counting" if counting else ""),
        lambda: measure_index_build(n, params, counting=counting, verify=False),
    )


def _search_case(
    n: int, queries: int, params: AEMParams, *, counting: bool = False
) -> BenchCase:
    from ..workloads.search.measures import measure_search_query

    return BenchCase(
        f"search/and/n{n}q{queries}" + ("/counting" if counting else ""),
        lambda: measure_search_query(
            n, params, n_queries=queries, counting=counting, verify=False
        ),
    )


def _scan_case(
    B: int,
    n: int,
    *,
    passes: int = 6,
    counting: bool = False,
    dispatch: Optional[str] = None,
) -> BenchCase:
    """Machine-bound microbench: pure block I/O dispatch, no algorithm.

    At B=128 the full run's wall time is dominated by payload copies —
    exactly what counting mode removes — so the counting/full pair of this
    case is the suite's direct readout of the fast path's speedup. Atom
    construction and problem placement happen in ``setup`` (untimed);
    the timed region is ``passes`` streaming scans over the input, so the
    measurement is the per-I/O machine overhead and nothing else.

    ``dispatch`` pins the event-bus mode (PR 6): the default cases run the
    machine default (batched), and the ``/events`` twins pin the
    synchronous per-event bus so the trajectory records the columnar
    batching speedup the same way the ``/counting`` twins record the
    phantom-store speedup.
    """

    def setup() -> object:
        from ..atoms.atom import make_atoms
        from ..machine.aem import AEMMachine

        params = AEMParams(M=8 * B, B=B, omega=8)
        machine = AEMMachine.for_algorithm(
            params, counting=counting, dispatch=dispatch
        )
        addrs = machine.load_input(make_atoms(range(n)))
        return machine, addrs

    def run(state: object) -> Mapping:
        from ..machine.cost import CostRecord
        from ..machine.streams import scan_copy

        machine, addrs = state
        for _ in range(passes):
            scan_copy(machine, addrs)
        return CostRecord.from_snapshot(
            machine.snapshot(), peak=machine.core.mem.peak
        )

    return BenchCase(
        f"micro/scan_copy/B{B}n{n}"
        + ("/counting" if counting else "")
        + (f"/{dispatch}" if dispatch is not None else ""),
        run,
        setup,
    )


_P = AEMParams(M=128, B=16, omega=8)


def default_suite() -> Tuple[BenchCase, ...]:
    """The pinned trajectory suite: one case per hot code path.

    Sizes are chosen so every case runs well above the OS noise floor
    (tens of milliseconds) while the whole suite stays CI-cheap. The
    ``/counting`` twins run the same instance on a counting machine —
    their cost counters must match the full case exactly (any drift is a
    counting-mode bug), and their wall times record the fast path's
    speedup in the trajectory.
    """
    return (
        _sort_case("aem_mergesort", 20000, _P),
        _sort_case("aem_mergesort", 20000, _P, counting=True),
        _sort_case("em_mergesort", 20000, _P),
        _sort_case("aem_samplesort", 20000, _P),
        _permute_case("adaptive", 16384, _P),
        _permute_case("naive", 8192, _P),
        _spmxv_case("sort_based", 1024, 4, _P),
        _spmxv_case("sort_based", 1024, 4, _P, counting=True),
        _index_case(8000, _P),
        _index_case(8000, _P, counting=True),
        _search_case(4000, 128, _P),
        _search_case(4000, 128, _P, counting=True),
        _scan_case(128, 200_000),
        _scan_case(128, 200_000, counting=True),
        _scan_case(128, 200_000, dispatch="events"),
        _scan_case(128, 200_000, counting=True, dispatch="events"),
    )


# ----------------------------------------------------------------------
# Running and recording.
# ----------------------------------------------------------------------
def run_case(case: BenchCase, *, repeats: int = 2) -> dict:
    """Best-of-``repeats`` wall time plus the (deterministic) cost payload."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    cost: Mapping = {}
    for _ in range(repeats):
        if case.setup is not None:
            state = case.setup()
            t0 = time.perf_counter()
            cost = case.run(state)
        else:
            t0 = time.perf_counter()
            cost = case.run()
        best = min(best, time.perf_counter() - t0)
    return {"wall_s": best, **{k: cost[k] for k in cost}}


def run_suite(
    suite: Optional[Sequence[BenchCase]] = None,
    *,
    repeats: int = 2,
    log: Optional[Callable[[str], None]] = None,
) -> dict:
    suite = default_suite() if suite is None else suite
    results = {}
    for case in suite:
        results[case.name] = run_case(case, repeats=repeats)
        if log is not None:
            r = results[case.name]
            log(f"  {case.name}: {r['wall_s']:.3f}s  Q={r.get('Q', '?'):g}")
    return results


def trajectory_point(results: Mapping[str, Mapping]) -> dict:
    """Wrap suite results in the ``BENCH_*.json`` envelope."""
    import platform

    from repro import __version__

    return {
        "schema": BENCH_SCHEMA,
        "created": utc_now(),
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": {name: dict(payload) for name, payload in results.items()},
    }


def write_point(out_dir: Union[str, Path], point: Mapping) -> Path:
    """Write a trajectory point as ``BENCH_<stamp>.json`` under ``out_dir``."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{stamp}.json"
    path.write_text(
        json.dumps(point, indent=2, sort_keys=True, default=json_default) + "\n",
        encoding="utf-8",
    )
    return path


def load_point(path: Union[str, Path]) -> dict:
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# The gate.
# ----------------------------------------------------------------------
COST_KEYS = ("Q", "Qr", "Qw")


def compare(
    current: Mapping, baseline: Mapping, *, threshold: float
) -> Tuple[list[str], list[str]]:
    """``(regressions, warnings)`` of ``current`` vs ``baseline`` points.

    A *regression* (gate-failing): a baseline case missing from the
    current run, or slower than ``baseline_wall * threshold``. A
    *warning* (reported, not failing): cost-counter drift — the
    simulator is deterministic, so drift means the algorithm changed and
    the baseline wants regenerating — and cases with no baseline yet.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    regressions: list[str] = []
    warnings: list[str] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name, base in base_benches.items():
        cur = cur_benches.get(name)
        if cur is None:
            regressions.append(f"{name}: present in baseline but not run")
            continue
        ratio = cur["wall_s"] / max(base["wall_s"], 1e-9)
        if ratio > threshold:
            regressions.append(
                f"{name}: {cur['wall_s']:.3f}s is {ratio:.2f}x the baseline "
                f"{base['wall_s']:.3f}s (threshold {threshold:g}x)"
            )
        for key in COST_KEYS:
            if key in base and key in cur and cur[key] != base[key]:
                warnings.append(
                    f"{name}: {key} drifted {base[key]:g} -> {cur[key]:g} "
                    "(deterministic counter; regenerate the baseline if intended)"
                )
    for name in cur_benches:
        if name not in base_benches:
            warnings.append(f"{name}: no baseline yet (add with --write-baseline)")
    return regressions, warnings


# ----------------------------------------------------------------------
# Entry point (shared by `repro-aem bench` and scripts/bench_trajectory.py).
# ----------------------------------------------------------------------
def add_arguments(ap: argparse.ArgumentParser) -> None:
    """The bench flags, shared by the script and the ``repro-aem bench``
    subcommand."""
    ap.add_argument(
        "--out-dir", default=".", help="where BENCH_<stamp>.json is written"
    )
    ap.add_argument(
        "--baseline",
        default=BASELINE_PATH,
        help=f"baseline trajectory point (default {BASELINE_PATH})",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=f"slowdown gate: fail when wall > baseline * threshold "
        f"(default ${THRESHOLD_ENV} or {DEFAULT_THRESHOLD})",
    )
    ap.add_argument(
        "--repeats", type=int, default=2, help="wall time is min over this many runs"
    )
    ap.add_argument(
        "--no-gate",
        action="store_true",
        help="emit the trajectory point but skip the baseline comparison",
    )
    ap.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite the baseline with this run's results (review the diff!)",
    )
    ap.add_argument(
        "--telemetry-dir",
        default=None,
        help="also append a run-manifest record under this directory",
    )


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="bench_trajectory",
        description=(
            "Run the benchmark suite, emit a BENCH_<stamp>.json trajectory "
            "point, and gate wall times against the committed baseline."
        ),
    )
    add_arguments(ap)
    return ap


def main(argv: Optional[list[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


def run(args: argparse.Namespace) -> int:
    """Execute a bench invocation from parsed arguments."""
    threshold = args.threshold if args.threshold is not None else default_threshold()

    print(f"running benchmark suite (repeats={args.repeats}):")
    t0 = time.perf_counter()
    results = run_suite(repeats=args.repeats, log=print)
    wall = time.perf_counter() - t0
    point = trajectory_point(results)
    path = write_point(args.out_dir, point)
    print(f"trajectory point: {path}")

    if args.write_baseline:
        base_path = Path(args.baseline)
        base_path.parent.mkdir(parents=True, exist_ok=True)
        base_path.write_text(
            json.dumps(point, indent=2, sort_keys=True, default=json_default) + "\n",
            encoding="utf-8",
        )
        print(f"baseline rewritten: {base_path}")

    rc = 0
    gate: dict = {"checked": False}
    if not args.no_gate and not args.write_baseline:
        base_path = Path(args.baseline)
        if not base_path.is_file():
            print(
                f"no baseline at {base_path}; run with --write-baseline to create one",
                file=sys.stderr,
            )
        else:
            regressions, warnings = compare(
                point, load_point(base_path), threshold=threshold
            )
            gate = {
                "checked": True,
                "threshold": threshold,
                "regressions": regressions,
                "warnings": warnings,
            }
            for w in warnings:
                print(f"  [warn] {w}")
            if regressions:
                print(f"bench gate FAILED (threshold {threshold:g}x):", file=sys.stderr)
                for r in regressions:
                    print(f"  [FAIL] {r}", file=sys.stderr)
                rc = 1
            else:
                print(f"bench gate passed (threshold {threshold:g}x)")

    if args.telemetry_dir:
        from .manifest import append_record, run_record

        append_record(
            args.telemetry_dir,
            run_record(
                "bench",
                config={"repeats": args.repeats, "out": str(path)},
                wall_s=wall,
                results=[{"name": k, **v} for k, v in results.items()],
                extra={"gate": gate},
            ),
        )
    return rc
