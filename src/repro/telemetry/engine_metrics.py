"""Engine-side telemetry: per-task wall time and worker utilization.

:class:`EngineTelemetry` is the recorder a
:class:`~repro.engine.core.SweepEngine` drives when one is assigned to
its ``telemetry`` attribute. The engine reports one
:class:`TaskSpan` per measurement — cache hits as zero-width spans,
serial executions with exact start/end, pool executions as
submit-to-completion intervals (queueing included; the parent process
cannot see inside a worker, and the interval is what utilization math
needs anyway). The engine stays import-free of this package: it calls
``telemetry.record_task(...)`` on whatever duck-typed object it holds,
so library users pay nothing and custom recorders are trivial.

Readouts:

* :meth:`EngineTelemetry.summary` — task counts, busy/wall seconds, and
  ``utilization = busy / (wall * jobs)``, the fraction of the worker
  pool that was doing measurement work;
* :meth:`EngineTelemetry.to_trace` — the spans as Chrome-trace ``X``
  events, greedily packed onto lanes (a span goes to the first lane
  whose previous span already ended), so the Perfetto view shows true
  concurrency without overlapping boxes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .perfetto import ENGINE_PID, ChromeTraceBuilder


@dataclass(frozen=True)
class TaskSpan:
    """One engine-served measurement: wall-clock interval + provenance.

    ``span`` is the optional :class:`~repro.telemetry.spans.SpanContext`
    the task executed under (set when the caller threaded spans through
    ``SweepEngine.map``); it links the task's trace slice into its
    request's flow chain.
    """

    label: str
    start: float
    end: float
    cache_hit: bool = False
    span: Optional[object] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class EngineTelemetry:
    """Collects :class:`TaskSpan` records from a sweep engine."""

    def __init__(self) -> None:
        self.spans: list[TaskSpan] = []
        self.t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # The engine-facing surface (duck-typed; see SweepEngine.telemetry).
    # ------------------------------------------------------------------
    def record_task(
        self,
        label: str,
        start: float,
        end: float,
        *,
        cache_hit: bool = False,
        span=None,
    ) -> None:
        if end < start:
            raise ValueError(f"span for {label!r} ends before it starts")
        self.spans.append(TaskSpan(label, start, end, cache_hit, span))

    # ------------------------------------------------------------------
    # Readout.
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> int:
        return len(self.spans)

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.spans if s.cache_hit)

    def busy_seconds(self) -> float:
        return sum(s.duration for s in self.spans)

    def wall_seconds(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - self.t0

    def utilization(self, jobs: int = 1) -> float:
        """Busy fraction of a ``jobs``-wide pool over the engine's wall time."""
        wall = self.wall_seconds()
        if wall <= 0 or jobs < 1:
            return 0.0
        return self.busy_seconds() / (wall * jobs)

    def summary(self, jobs: Optional[int] = None) -> dict:
        out = {
            "tasks": self.tasks,
            "cache_hits": self.cache_hits,
            "executed": self.tasks - self.cache_hits,
            "busy_s": self.busy_seconds(),
            "wall_s": self.wall_seconds(),
        }
        if jobs is not None:
            out["jobs"] = jobs
            out["utilization"] = self.utilization(jobs)
        return out

    # ------------------------------------------------------------------
    # Trace export.
    # ------------------------------------------------------------------
    def to_trace(
        self,
        builder: Optional[ChromeTraceBuilder] = None,
        *,
        pid: int = ENGINE_PID,
        label: str = "sweep engine",
    ) -> ChromeTraceBuilder:
        """Render the spans as complete events on greedily-packed lanes."""
        if builder is None:
            builder = ChromeTraceBuilder()
        builder.process_name(pid, label)
        lanes: list[float] = []  # lane index -> end time of its last span
        assignments = []
        for span in sorted(self.spans, key=lambda s: s.start):
            for lane, free_at in enumerate(lanes):
                if span.start >= free_at:
                    lanes[lane] = span.end
                    break
            else:
                lane = len(lanes)
                lanes.append(span.end)
            assignments.append((span, lane))
        for lane in range(len(lanes)):
            builder.thread_name(pid, lane + 1, f"worker lane {lane}")
        for span, lane in assignments:
            args = {"cache_hit": span.cache_hit}
            context = span.span
            if context is not None:
                args["trace_id"] = context.trace_id
                args["span_id"] = context.span_id
            ts = (span.start - self.t0) * 1e6
            builder.complete(
                span.label,
                ts,
                span.duration * 1e6,
                pid=pid,
                tid=lane + 1,
                cat="engine",
                args=args,
            )
            if context is not None:
                # The middle hop of the request flow chain: serving-lane
                # 's' -> this engine-task 't' -> machine-segment 'f'
                # (names/cat must match; see repro.telemetry.spans).
                from .spans import FLOW_CAT, FLOW_NAME

                builder.flow_step(
                    FLOW_NAME, ts, id=context.flow_id,
                    pid=pid, tid=lane + 1, cat=FLOW_CAT,
                )
        return builder

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineTelemetry({self.tasks} tasks, "
            f"{self.cache_hits} cache hits, busy {self.busy_seconds():.3f}s)"
        )
