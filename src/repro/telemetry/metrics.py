"""A lightweight labeled metrics registry (counters, gauges, histograms).

The simulator's event bus (:mod:`repro.observe`) delivers raw machine
events; this module gives them somewhere durable to land. A
:class:`MetricsRegistry` holds named metric *families*, each family fans
out into label-keyed series (``reads_total{phase="merge"}``), and the
whole registry collects into one JSON-able dict — the shape the run
manifest (:mod:`repro.telemetry.manifest`) embeds per invocation.

The design borrows the Prometheus vocabulary but none of its machinery:

* :class:`Counter` — monotonically increasing float (``inc``);
* :class:`Gauge` — a settable point value (``set``/``inc``);
* :class:`Histogram` — stores observations exactly and answers
  percentile queries. Simulator runs observe at most one value per
  block/phase/task, so exact storage is cheaper than maintaining the
  usual bucket scheme and keeps percentiles precise.

Nothing here touches the per-I/O hot path: a registry only does work
when a :class:`~repro.telemetry.observer.MetricsObserver` is attached to
a machine, and the machine core's empty-callback-list fast path already
guarantees un-observed events cost one truthiness check.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

_DEFAULT_PERCENTILES = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def as_value(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (settable, unlike a counter)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def as_value(self) -> float:
        return self.value


class Histogram:
    """Exact-storage histogram with percentile readout.

    ``observe`` appends; ``percentile(q)`` answers by nearest-rank over
    the sorted observations (no interpolation — the observed values are
    exact integers like per-block write counts, and a rank statistic
    should be one of them).
    """

    kind = "histogram"

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 1]. 0 with no data."""
        if not 0 <= q <= 1:
            raise ValueError(f"percentile q must be in [0, 1], got {q}")
        if not self.values:
            return 0
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(
        self, percentiles: Sequence[float] = _DEFAULT_PERCENTILES
    ) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": max(self.values, default=0),
            **{f"p{int(q * 100)}": self.percentile(q) for q in percentiles},
        }

    def as_value(self) -> dict:
        return self.summary()


class MetricFamily:
    """One named metric, fanned out over label values.

    ``labels(phase="merge")`` returns the series for that label
    combination, creating it on first use. A family declared with no
    label names has exactly one series, reachable as ``family.labels()``
    or through the passthrough ``inc``/``set``/``observe``.
    """

    def __init__(self, factory, name: str, help: str, label_names: Tuple[str, ...]):
        self._factory = factory
        self.name = name
        self.help = help
        self.label_names = label_names
        self._series: Dict[Tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        return self._factory.kind

    def labels(self, **labels: str):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._factory()
        return series

    # Passthrough for label-less families.
    def _solo(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "address a series with .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def series(self) -> Iterable[Tuple[Mapping[str, str], object]]:
        for key, metric in self._series.items():
            yield dict(zip(self.label_names, key)), metric

    def collect(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {"labels": labels, "value": metric.as_value()}
                for labels, metric in self.series()
            ],
        }


class MetricsRegistry:
    """Named metric families, collected into one JSON-able dict."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(self, factory, name: str, help: str, labels) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != factory.kind or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind} with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(factory, name, help, tuple(labels))
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(Histogram, name, help, labels)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._families

    def __iter__(self):
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    def collect(self) -> dict:
        """The whole registry as ``{name: {kind, help, series}}``."""
        return {
            name: family.collect()
            for name, family in sorted(self._families.items())
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Counters and gauges render one sample per label series;
        histograms render as Prometheus *summaries* (one ``quantile``
        series per default percentile, plus ``_sum``/``_count``), since
        the exact-storage histogram answers rank statistics rather than
        cumulative buckets. Label values are escaped per the exposition
        spec (backslash, double quote, newline).
        """
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            prom_kind = "summary" if family.kind == "histogram" else family.kind
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {prom_kind}")
            for labels, metric in family.series():
                if family.kind == "histogram":
                    for q in _DEFAULT_PERCENTILES:
                        q_labels = {**labels, "quantile": f"{q:g}"}
                        lines.append(
                            f"{name}{_label_block(q_labels)} "
                            f"{_format_value(metric.percentile(q))}"
                        )
                    lines.append(
                        f"{name}_sum{_label_block(labels)} "
                        f"{_format_value(metric.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_label_block(labels)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_block(labels)} "
                        f"{_format_value(metric.as_value())}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self)} families)"


# ----------------------------------------------------------------------
# Prometheus text exposition helpers.
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_block(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
