"""Run manifests: one JSONL record per CLI invocation.

Every ``exp``/``sort``/``permute``/``spmxv``/``bench`` run invoked with
``--telemetry-dir DIR`` appends one line to ``DIR/manifest.jsonl``:
what ran (command + full config), what it cost (the
:class:`~repro.machine.cost.CostRecord` and/or per-experiment results),
how long it took, how the engine behaved (cache hits/misses, worker
utilization), and under which package version — everything needed to
compare runs across machines, flags, and PRs without re-running them.

Append-only JSONL is deliberate: records from concurrent runs interleave
without coordination (one ``write`` per line), and downstream tooling
(`jq`, pandas, the bench-trajectory gate) streams it without loading
the whole history.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Mapping, Optional, Union

MANIFEST_NAME = "manifest.jsonl"

#: Bumped when a record's shape changes incompatibly.
MANIFEST_SCHEMA = 1


def _package_version() -> str:
    from repro import __version__

    return __version__


def utc_now() -> str:
    """ISO-8601 UTC timestamp (second resolution)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def json_default(obj):
    """Coerce the non-JSON values run records contain.

    numpy scalars/arrays collapse to plain numbers/lists; anything with
    an ``as_dict`` (CostRecord, EngineStats, ...) flattens; the rest
    falls back to ``repr`` so a record is always writable.
    """
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    item = getattr(obj, "item", None)  # numpy scalar
    if callable(item):
        return item()
    tolist = getattr(obj, "tolist", None)  # numpy array
    if callable(tolist):
        return tolist()
    return repr(obj)


def run_record(
    command: str,
    *,
    config: Mapping,
    cost: Optional[Mapping] = None,
    wall_s: Optional[float] = None,
    engine: Optional[Mapping] = None,
    metrics: Optional[Mapping] = None,
    results: Optional[list] = None,
    extra: Optional[Mapping] = None,
) -> dict:
    """Assemble one manifest record (plain dict, ready to append)."""
    record = {
        "schema": MANIFEST_SCHEMA,
        "created": utc_now(),
        "version": _package_version(),
        "python": platform.python_version(),
        "command": command,
        "config": dict(config),
    }
    if wall_s is not None:
        record["wall_s"] = wall_s
    if cost is not None:
        record["cost"] = dict(cost)
    if engine is not None:
        record["engine"] = dict(engine)
    if metrics is not None:
        record["metrics"] = dict(metrics)
    if results is not None:
        record["results"] = results
    if extra:
        record.update(extra)
    return record


def append_record(
    telemetry_dir: Union[str, Path],
    record: Mapping,
    *,
    filename: str = MANIFEST_NAME,
) -> Path:
    """Append ``record`` as one JSONL line under ``telemetry_dir``.

    Creates the directory on first use. The record is serialized to a
    single line *before* the file is opened, so a serialization error
    never leaves a torn line behind.
    """
    path = Path(telemetry_dir) / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=json_default)
    if "\n" in line:  # pragma: no cover - json.dumps never emits newlines
        raise ValueError("manifest records must serialize to one line")
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return path


def read_manifest(
    telemetry_dir: Union[str, Path], *, filename: str = MANIFEST_NAME
) -> list[dict]:
    """All records in a manifest, oldest first ([] when none exists)."""
    path = Path(telemetry_dir) / filename
    if not path.is_file():
        return []
    records = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
