"""The canonical measurement functions behind :mod:`repro.api`.

One function per workload family — sort, permute, SpMxV. Each builds a
fresh machine, runs the named algorithm, verifies the output (full mode),
and returns a typed :class:`~repro.machine.cost.CostRecord`. They are
top-level functions taking only picklable arguments, so the sweep engine
can fan them out to worker processes and memoize them by content hash.

These used to live in :mod:`repro.experiments.common`; that module keeps
deprecation shims so old call paths still work. New code — the CLI, the
experiments, the cost-oracle server — routes here through the
:mod:`repro.api` facade (:func:`repro.api.evaluate` /
:func:`repro.api.sweep`), which adds query validation and engine routing
on top.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..atoms.atom import Atom
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.cost import CostRecord, CostSnapshot
from ..observe.base import MachineObserver
from ..permute.base import PERMUTERS, verify_permutation_output
from ..sorting.base import COUNTING_SORTERS, SORTERS, verify_sorted_output
from ..spmxv.matrix import load_matrix, load_vector, verify_spmxv_output
from ..spmxv.naive import spmxv_naive
from ..spmxv.sort_based import spmxv_sort_based
from ..workloads.generators import permutation, sort_input, spmxv_instance


def measure_sort(
    sorter: str,
    N: int,
    params: AEMParams,
    *,
    distribution: str = "uniform",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run a registered sorter on a fresh machine; returns cost fields.

    ``counting=True`` requests the payload-free fast path; sorters not yet
    ported to it (:data:`~repro.sorting.base.COUNTING_SORTERS` lists the
    ported ones) fall back to a full machine with identical costs. Output
    verification needs payloads, so a counting run skips it — the paired
    full-mode runs in the test suite carry the correctness burden.
    """
    counting = counting and sorter in COUNTING_SORTERS
    atoms = sort_input(N, distribution, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    addrs = machine.load_input(atoms)
    out = SORTERS[sorter](machine, addrs, params)
    if verify and not counting:
        verify_sorted_output(machine, atoms, out)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_permute(
    permuter: str,
    N: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run a registered permuter on a fresh machine; returns cost fields.

    Every registered permuter supports ``counting=True`` (payload-free fast
    path); verification is skipped there, as it needs the output payloads.
    """
    rng = np.random.default_rng(seed)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * N, N))]
    perm = permutation(N, family, rng)
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    addrs = machine.load_input(atoms)
    out = PERMUTERS[permuter](machine, addrs, perm, params)
    if verify and not counting:
        verify_permutation_output(machine, atoms, out, perm)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def measure_spmxv(
    algorithm: str,
    N: int,
    delta: int,
    params: AEMParams,
    *,
    family: str = "random",
    seed: int = 0,
    slack: float = 4.0,
    verify: bool = True,
    observers: Sequence[MachineObserver] = (),
    counting: bool = False,
) -> CostRecord:
    """Run an SpMxV algorithm on a fresh machine; returns cost fields.

    Both algorithms support ``counting=True`` (payload-free fast path);
    verification is skipped there, as it needs the output vector.
    """
    conf, values, x = spmxv_instance(N, delta, family, np.random.default_rng(seed))
    machine = AEMMachine.for_algorithm(
        params, slack=slack, observers=observers, counting=counting
    )
    ma = load_matrix(machine, conf, values)
    xa = load_vector(machine, x)
    fn = {"naive": spmxv_naive, "sort_based": spmxv_sort_based}[algorithm]
    out = fn(machine, ma, xa, conf, params)
    if verify and not counting:
        verify_spmxv_output(machine, conf, values, x, out)
    return _cost_fields(machine.snapshot(), peak=machine.mem.peak)


def _cost_fields(snap: CostSnapshot, *, peak: int) -> CostRecord:
    return CostRecord.from_snapshot(snap, peak=peak)
