"""The workload registry: one routing table for CLI, experiments, server.

Every entry point that answers "what does workload X cost at
(M, B, omega, N)?" — the ``repro-aem sort|permute|spmxv`` commands, the
experiment sweeps, the cost-oracle server — used to carry its own
dispatch: its own argument parsing, its own defaults, its own call into a
``measure_*`` function. This module centralizes that into
:class:`WorkloadSpec` records keyed by workload name, plus
:func:`normalize`, which turns a flat, JSON-friendly *query* dict into
the exact keyword config the measurement function takes.

A query is flat and serializable::

    {"workload": "sort", "n": 8000, "M": 128, "B": 16, "omega": 8,
     "sorter": "aem_mergesort", "seed": 0}

``normalize`` validates it against the spec (unknown fields, missing
required fields, bad choices all raise :class:`QueryError`), fills
defaults, folds the machine parameters into one
:class:`~repro.core.params.AEMParams`, and returns ``(spec, config)``
where ``measure(**config)`` is the measurement call. Because every
consumer normalizes the same way, a query means the same thing — and
hashes to the same :func:`query_key` — whether it arrives from the
command line, an experiment grid, or an HTTP request body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.params import AEMParams
from ..engine.cache import cache_key
from ..permute.base import PERMUTERS
from ..sorting.base import SORTERS
from ..workloads.search import measures as search_measures
from . import measures


class QueryError(ValueError):
    """A workload query that cannot be normalized (the 400 of the API)."""


#: Sentinel default marking a query field the caller must supply.
REQUIRED = object()


@dataclass(frozen=True)
class QueryField:
    """One accepted field of a workload query.

    ``name`` is both the query key and the measurement-function keyword.
    ``coerce`` turns the JSON-decoded value into the right Python type
    (raising ``ValueError``/``TypeError`` on garbage); ``choices``, when
    set, restricts the coerced value to a known set.
    """

    name: str
    coerce: Callable[[Any], Any]
    default: Any = REQUIRED
    choices: Optional[Tuple[str, ...]] = None

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        raise QueryError(f"expected an integer, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise QueryError(f"expected an integer, got {value!r}")
    return int(value)


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        raise QueryError(f"expected a number, got {value!r}")
    return float(value)


def _coerce_bool(value: Any) -> bool:
    if not isinstance(value, bool):
        raise QueryError(f"expected true/false, got {value!r}")
    return value


def _coerce_str(value: Any) -> str:
    if not isinstance(value, str):
        raise QueryError(f"expected a string, got {value!r}")
    return value


#: Machine-parameter fields shared by every workload; folded into one
#: ``params=AEMParams(M, B, omega)`` keyword by :func:`normalize`.
MACHINE_FIELDS: Tuple[QueryField, ...] = (
    QueryField("M", _coerce_int, default=128),
    QueryField("B", _coerce_int, default=16),
    QueryField("omega", _coerce_float, default=8.0),
)

#: Execution-mode fields present on every workload. ``counting`` has no
#: default on purpose: when a query leaves it out, the field stays out of
#: the config, letting the serving/engine layer inject its own policy
#: (and keeping cache keys distinct between the two cases).
COMMON_FIELDS: Tuple[QueryField, ...] = (
    QueryField("seed", _coerce_int, default=0),
    QueryField("counting", _coerce_bool, default=None),
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload family: its measure function and its query schema."""

    name: str
    measure: Callable[..., Any]
    fields: Tuple[QueryField, ...]
    help: str = ""

    def describe(self) -> dict:
        """JSON-able schema (the ``/workloads`` endpoint's payload)."""
        out: Dict[str, Any] = {"workload": self.name, "help": self.help, "fields": {}}
        for f in self.all_fields:
            entry: Dict[str, Any] = {"required": f.required}
            if not f.required and f.default is not None:
                entry["default"] = f.default
            if f.choices is not None:
                entry["choices"] = list(f.choices)
            out["fields"][f.name] = entry
        return out

    @property
    def all_fields(self) -> Tuple[QueryField, ...]:
        return self.fields + MACHINE_FIELDS + COMMON_FIELDS


#: The routing table. Keyed by workload name; every consumer — CLI,
#: experiments, server, tests — resolves through this one dict.
WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in WORKLOADS:
        raise ValueError(f"workload {spec.name!r} already registered")
    WORKLOADS[spec.name] = spec
    return spec


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


register_workload(
    WorkloadSpec(
        name="sort",
        measure=measures.measure_sort,
        fields=(
            QueryField("n", _coerce_int),
            QueryField(
                "sorter",
                _coerce_str,
                default="aem_mergesort",
                choices=tuple(sorted(SORTERS)),
            ),
            QueryField("distribution", _coerce_str, default="uniform"),
        ),
        help="sort N keys with a registered sorter",
    )
)

register_workload(
    WorkloadSpec(
        name="permute",
        measure=measures.measure_permute,
        fields=(
            QueryField("n", _coerce_int),
            QueryField(
                "permuter",
                _coerce_str,
                default="adaptive",
                choices=tuple(sorted(PERMUTERS)),
            ),
            QueryField("family", _coerce_str, default="random"),
        ),
        help="apply a permutation from a named family to N atoms",
    )
)

register_workload(
    WorkloadSpec(
        name="spmxv",
        measure=measures.measure_spmxv,
        fields=(
            QueryField("n", _coerce_int),
            QueryField("delta", _coerce_int, default=4),
            QueryField(
                "algorithm",
                _coerce_str,
                default="sort_based",
                choices=("naive", "sort_based"),
            ),
            QueryField("family", _coerce_str, default="random"),
        ),
        help="sparse-matrix dense-vector multiply (N x N, delta nnz/row)",
    )
)

#: Corpus-shape fields shared by the two search workloads. The ``None``
#: defaults stay *out* of the config when a query omits them, so the
#: measure functions' own derived defaults apply (and cache keys stay
#: identical between "omitted" and "explicitly derived" spellings only
#: when the caller spells them the same way).
_CORPUS_FIELDS: Tuple[QueryField, ...] = (
    QueryField("n_docs", _coerce_int, default=None),
    QueryField("n_terms", _coerce_int, default=None),
    QueryField("zipf_a", _coerce_float, default=1.4),
    QueryField("fanin", _coerce_int, default=None),
    QueryField(
        "sorter",
        _coerce_str,
        default="aem_mergesort",
        choices=tuple(sorted(SORTERS)),
    ),
)

register_workload(
    WorkloadSpec(
        name="index_build",
        measure=search_measures.measure_index_build,
        fields=(QueryField("n", _coerce_int),) + _CORPUS_FIELDS,
        help="build a blocked inverted index over an N-posting corpus",
    )
)

register_workload(
    WorkloadSpec(
        name="search_query",
        measure=search_measures.measure_search_query,
        fields=(
            QueryField("n", _coerce_int),
            QueryField("n_queries", _coerce_int, default=64),
            QueryField("k", _coerce_int, default=8),
            QueryField("mode", _coerce_str, default="and", choices=("and", "or")),
            QueryField("terms_per_query", _coerce_int, default=2),
        )
        + _CORPUS_FIELDS,
        help="serve DAAT top-k queries over a freshly built index "
        "(cost of the query phase only)",
    )
)

#: Query keys the measurement functions spell differently from the query
#: surface (the query says ``n``; the functions take positional ``N``).
_CONFIG_NAMES = {"n": "N"}


def normalize(query: Mapping[str, Any]) -> tuple[WorkloadSpec, dict]:
    """Validate a flat query dict; return ``(spec, measure_config)``.

    The returned config is canonical: defaults filled, machine parameters
    folded into ``params=AEMParams(...)``, keys renamed to the measure
    function's keywords. Two queries that mean the same measurement
    normalize to equal configs (and so share one :func:`query_key`).
    """
    if not isinstance(query, Mapping):
        raise QueryError(f"query must be a JSON object, got {type(query).__name__}")
    q = dict(query)
    name = q.pop("workload", None)
    if name is None:
        raise QueryError("query is missing the 'workload' field")
    if name not in WORKLOADS:
        raise QueryError(
            f"unknown workload {name!r}; available: {workload_names()}"
        )
    spec = WORKLOADS[name]
    values: Dict[str, Any] = {}
    for f in spec.all_fields:
        if f.name in q:
            raw = q.pop(f.name)
            try:
                value = f.coerce(raw)
            except QueryError:
                raise
            except (TypeError, ValueError) as exc:
                raise QueryError(
                    f"bad value for {f.name!r} in workload {name!r}: {exc}"
                ) from None
            if f.choices is not None and value not in f.choices:
                raise QueryError(
                    f"{f.name!r} must be one of {sorted(f.choices)}, got {value!r}"
                )
            values[f.name] = value
        elif f.required:
            raise QueryError(f"workload {name!r} requires the {f.name!r} field")
        elif f.default is not None:
            values[f.name] = f.default
    if q:
        raise QueryError(
            f"unknown field(s) for workload {name!r}: {sorted(q)}; "
            f"accepted: {sorted(f.name for f in spec.all_fields)}"
        )
    try:
        params = AEMParams(
            M=values.pop("M"), B=values.pop("B"), omega=values.pop("omega")
        )
    except ValueError as exc:
        raise QueryError(f"bad machine parameters: {exc}") from None
    config = {_CONFIG_NAMES.get(k, k): v for k, v in values.items()}
    config["params"] = params
    return spec, config


def query_key(query: Mapping[str, Any]) -> str:
    """Content hash identifying a normalized query.

    Equal for any two queries that normalize to the same measurement —
    the identity the server's deduplication and the engine's result
    cache both key on (it is the engine cache key of the normalized
    config, so a server front-end and a direct sweep share entries).
    """
    spec, config = normalize(query)
    return cache_key(spec.measure, config)
