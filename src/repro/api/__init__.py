"""``repro.api`` — the stable entry surface over the measurement stack.

One facade, three verbs::

    from repro import api

    rec = api.evaluate("sort", n=8000, M=128, B=16, omega=8)   # CostRecord
    recs = api.sweep([{"workload": "sort", "n": 1000},
                      {"workload": "permute", "n": 512}])
    key = api.query_key({"workload": "sort", "n": 8000})       # dedup/cache id

Everything routes through the shared workload registry
(:data:`~repro.api.registry.WORKLOADS`) and the *ambient* sweep engine
(:func:`repro.engine.use_engine`), so callers inherit whatever caching,
fan-out, and counting policy the installed engine carries — the CLI, the
experiment suite, and the cost-oracle server (:mod:`repro.serve`) are all
thin layers over these calls and therefore answer every query
identically, bit for bit.

The old per-command call paths (``repro.experiments.common.measure_*``)
still work as :class:`DeprecationWarning` shims; the implementations now
live in :mod:`repro.api.measures`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from ..engine.core import SweepEngine, ambient_engine
from ..machine.cost import CostRecord
from .registry import (
    WORKLOADS,
    QueryError,
    QueryField,
    WorkloadSpec,
    normalize,
    query_key,
    register_workload,
    workload_names,
)


def describe_workloads() -> dict:
    """JSON-able schema of every registered workload (``/workloads``)."""
    return {name: WORKLOADS[name].describe() for name in workload_names()}


def evaluate(
    workload: str,
    query: Optional[Mapping[str, Any]] = None,
    *,
    observers: Iterable = (),
    engine: Optional[SweepEngine] = None,
    **fields: Any,
) -> CostRecord:
    """Price one workload query; returns its :class:`CostRecord`.

    ``query`` and ``**fields`` merge (keywords win) into one flat query
    dict — ``evaluate("sort", n=8000)`` and
    ``evaluate("sort", {"n": 8000})`` are the same call. Execution routes
    through ``engine`` (default: the ambient engine), so results are
    memoized and fanned out per the installed policy.

    ``observers`` attaches extra machine observers for this one run;
    observed runs execute in-process and unmemoized (events cannot be
    replayed from a cache or another process), exactly like the engine's
    own observed-run path.
    """
    merged = {**(query or {}), **fields, "workload": workload}
    spec, config = normalize(merged)
    observers = tuple(observers)
    if observers:
        return spec.measure(**config, observers=observers)
    eng = engine if engine is not None else ambient_engine()
    return eng.measure(spec.measure, **config)


def sweep(
    queries: Iterable[Mapping[str, Any]],
    *,
    engine: Optional[SweepEngine] = None,
    spans: Optional[Sequence] = None,
) -> list:
    """Price many queries; results in query order.

    Queries are normalized up front (any bad query fails the whole sweep
    before anything runs), grouped by workload, and dispatched through
    the engine one :meth:`~repro.engine.core.SweepEngine.map` call per
    group — so a mixed batch still gets the engine's caching and
    parallel fan-out, and the server's batch window coalesces into the
    minimum number of engine calls.

    ``spans`` (parallel to ``queries``, entries may be ``None``) carries
    per-query :class:`~repro.telemetry.spans.SpanContext` roots down to
    the engine, which executes each query under a child span — the
    propagation hop between the serving layer's request spans and the
    machine-phase segments in one flow-linked trace.
    """
    normalized = [normalize(q) for q in queries]
    spans_list = list(spans) if spans is not None else None
    if spans_list is not None and len(spans_list) != len(normalized):
        raise ValueError(
            f"spans ({len(spans_list)}) must parallel queries ({len(normalized)})"
        )
    eng = engine if engine is not None else ambient_engine()
    results: list = [None] * len(normalized)
    groups: dict[str, list[int]] = {}
    for i, (spec, _) in enumerate(normalized):
        groups.setdefault(spec.name, []).append(i)
    for name, indices in groups.items():
        spec = WORKLOADS[name]
        configs = [normalized[i][1] for i in indices]
        group_spans = (
            [spans_list[i] for i in indices] if spans_list is not None else None
        )
        for i, result in zip(
            indices, eng.map(spec.measure, configs, spans=group_spans)
        ):
            results[i] = result
    return results


__all__ = [
    "CostRecord",
    "QueryError",
    "QueryField",
    "WORKLOADS",
    "WorkloadSpec",
    "describe_workloads",
    "evaluate",
    "normalize",
    "query_key",
    "register_workload",
    "sweep",
    "workload_names",
]
