"""Lemma 4.3: the AEM -> unit-cost flash model reduction and Corollary 4.4."""

from .bounds import (
    corollary_4_4_closed_form,
    corollary_4_4_shape,
    flash_permute_volume_shape,
)
from .normalize import normalized_order, prepend_input_scan
from .reduction import FlashReductionReport, lemma_4_3_bound, reduce_to_flash

__all__ = [
    "FlashReductionReport",
    "corollary_4_4_closed_form",
    "corollary_4_4_shape",
    "flash_permute_volume_shape",
    "lemma_4_3_bound",
    "normalized_order",
    "prepend_input_scan",
    "reduce_to_flash",
]
