"""Flash-model permutation bounds and Corollary 4.4.

The unit-cost flash model with read blocks ``Br`` and write blocks ``Bw``
behaves, for permuting, "as if all blocks were small" (Ajwani et al.): the
classical Aggarwal–Vitter permutation bound with block size ``Br`` applies,
stated in I/O *volume* (elements transferred):

    volume >= c * Br * min{ N, n_r * log_{m_r} n_r },
    n_r = N/Br,  m_r = M/Br.

Chaining with Lemma 4.3's ``volume <= 2N + 2*Q*B/omega`` yields
Corollary 4.4's AEM lower bound

    Q >= (omega / 2B) * (flash_volume_lb - 2N)
      = Omega(min{N, omega*n*log_{omega m} n}) - 2*omega*n .

All functions return constant-free shapes; experiment E9 compares the
corollary against the direct counting bound of Section 4.2 and against
measured costs.
"""

from __future__ import annotations

import math

from ..core.params import AEMParams


def flash_permute_volume_shape(N: int, M: int, Br: int) -> float:
    """Shape of the flash-model permutation volume lower bound."""
    if N <= 0:
        return 0.0
    n_r = max(1.0, N / Br)
    m_r = max(2.0, M / Br)
    log_term = max(1.0, math.log(n_r) / math.log(m_r))
    return Br * min(float(N), n_r * log_term)


def corollary_4_4_shape(N: int, p: AEMParams) -> float:
    """Corollary 4.4: the AEM permutation lower bound obtained via the
    flash reduction, ``Omega(min{N, omega*n*log_{omega m} n}) - 2*omega*n``
    (clamped at 0 — the subtracted scan term can dominate for small N)."""
    if p.omega != int(p.omega) or p.B <= p.omega or p.B % int(p.omega) != 0:
        raise ValueError(
            "Corollary 4.4 requires integer omega with omega | B and B > omega"
        )
    Br = p.B // int(p.omega)
    volume = flash_permute_volume_shape(N, p.M, Br)
    q = (p.omega / (2.0 * p.B)) * (volume - 2.0 * N)
    return max(0.0, q)


def corollary_4_4_closed_form(N: int, p: AEMParams) -> float:
    """The corollary as displayed in the paper:
    ``min{N, omega*n*log_{omega m} n} - 2*omega*n`` (shape, clamped)."""
    n = p.n(N)
    base = max(2.0, p.omega * p.m)
    log_term = max(1.0, math.log(max(n, 2)) / math.log(base))
    return max(0.0, min(float(N), p.omega * n * log_term) - 2.0 * p.omega * n)
