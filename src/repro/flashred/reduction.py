"""Lemma 4.3: simulate an AEM permutation program in the unit-cost flash model.

Given a (round-based) AEM program of cost Q that permutes N atoms, the
lemma constructs a flash-model program (read blocks ``B/omega``, write
blocks ``B``) of I/O volume at most ``2N + 2*Q*B/omega``. The construction,
executed here concretely on a recorded trace:

1. Prepend a read/write scan over the input (volume 2N) and redirect the
   program to the scanned copies, so every block it reads was written by
   the program (:func:`repro.flashred.normalize.prepend_input_scan`).
2. Run the usefulness back-pass: which atoms does each read *use* (remove,
   under move semantics), and hence when is each written copy removed.
3. Normalize every written block by removal time. Each read's used atoms
   now form the block's next contiguous segment.
4. Emit the flash program: every AEM write becomes one write-block I/O
   (volume B); every AEM read becomes the minimal run of small-block reads
   covering its used segment (volume ``<= used + 2*B/omega``, at most two
   partially-wasted small blocks); reads that use nothing vanish.

The simulation executes on a real :class:`~repro.machine.flash.FlashMachine`
so the resulting volume is *measured*, and the flash disk's final state is
checked against the AEM program's output (same atom sets per output block;
within-block order differs by normalization, which the model — and the
permutation counting argument — disregards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..machine.errors import ModelViolationError, TraceError
from ..machine.flash import FlashMachine
from ..trace.analysis import usefulness
from ..trace.ops import WriteOp
from ..trace.program import Program
from .normalize import normalized_order, prepend_input_scan


def lemma_4_3_bound(N: int, Q: float, B: int, omega: float) -> float:
    """The volume budget of Lemma 4.3: ``2N + 2*Q*B/omega``."""
    return 2.0 * N + 2.0 * Q * B / omega


def reduce_to_flash(
    program: Program, *, machine: Optional[FlashMachine] = None
) -> tuple[FlashMachine, "FlashReductionReport"]:
    """Simulate ``program`` in the flash model; returns machine + report.

    Requires integer ``omega`` with ``B > omega`` and ``omega | B`` (the
    lemma's assumption); raises
    :class:`~repro.machine.errors.ModelViolationError` otherwise.
    """
    p = program.params
    omega = p.omega
    if omega != int(omega):
        raise ModelViolationError(
            f"Lemma 4.3 requires integer omega, got {omega}"
        )
    omega = int(omega)
    fm = machine or FlashMachine.for_aem_reduction(
        M=max(p.M, p.B), B=p.B, omega=omega
    )

    N = len(program.input_atoms())
    full = prepend_input_scan(program)
    info = usefulness(full)

    # Pre-register every address the flash program will touch.
    all_addrs = set(full.initial_disk)
    for op in full.ops:
        all_addrs.add(op.addr)
    fm.disk.restore({**{a: () for a in all_addrs}, **full.initial_disk})

    # Forward simulation with normalized layouts.
    # block_state[addr] = (uids in normalized order, cursor)
    block_state: Dict[int, Tuple[Tuple[Optional[int], ...], int]] = {}
    for addr, items in full.initial_disk.items():
        block_state[addr] = (tuple(getattr(it, "uid", None) for it in items), 0)

    for idx, op in enumerate(full.ops):
        if op.is_read:
            used = info.used_by_read.get(idx, set())
            if not used:
                continue  # a read that uses nothing induces no flash I/O
            if op.addr not in block_state:
                raise TraceError(
                    f"op {idx}: read of block {op.addr} with no known layout"
                )
            layout, cursor = block_state[op.addr]
            segment = layout[cursor : cursor + len(used)]
            if set(segment) != used:
                raise TraceError(
                    f"op {idx}: used atoms are not the next contiguous segment "
                    f"of the normalized block (cursor {cursor}): "
                    f"expected {sorted(used)}, segment holds {sorted(segment)}"
                )
            got = fm.read_covering(op.addr, cursor, cursor + len(used))
            got_uids = {getattr(it, "uid", None) for it in got}
            if not used <= got_uids:
                raise TraceError(
                    f"op {idx}: covering read missed atoms {used - got_uids}"
                )
            block_state[op.addr] = (layout, cursor + len(used))
        else:
            assert isinstance(op, WriteOp)
            removal = info.removal_time.get(idx, {})
            items, uids = normalized_order(op.items, op.uids, removal)
            fm.write_block(op.addr, items)
            block_state[op.addr] = (uids, 0)

    # Validate the flash output against the AEM program's output.
    aem_final = full.replay(validate=True)
    for addr in full.output_addrs:
        want = {getattr(it, "uid", None) for it in aem_final.get(addr, ())}
        have = {getattr(it, "uid", None) for it in fm.disk.get(addr)}
        if want != have:
            raise TraceError(
                f"flash output block {addr} holds atoms {sorted(have)[:6]}..., "
                f"expected {sorted(want)[:6]}..."
            )

    report = FlashReductionReport(
        N=N,
        aem_cost=program.cost,
        volume=fm.volume,
        read_volume=fm.read_volume,
        write_volume=fm.write_volume,
        read_ops=fm.read_ops,
        write_ops=fm.write_ops,
        bound=lemma_4_3_bound(N, program.cost, p.B, omega),
    )
    return fm, report


@dataclass(frozen=True)
class FlashReductionReport:
    """Measured flash volume vs. the Lemma 4.3 budget."""

    N: int
    aem_cost: float
    volume: int
    read_volume: int
    write_volume: int
    read_ops: int
    write_ops: int
    bound: float

    @property
    def within_bound(self) -> bool:
        return self.volume <= self.bound + 1e-9

    @property
    def utilization(self) -> float:
        """Measured volume as a fraction of the budget."""
        return self.volume / self.bound if self.bound > 0 else 0.0
