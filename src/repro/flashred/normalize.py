"""Block normalization by atom removal time (Lemma 4.3's key trick).

An AEM read may *use* an arbitrary subset of a block's atoms, but a flash
read must fetch a contiguous range of small blocks. The lemma's fix: since
we deal with *programs* (fixed I/O sequences), the time at which each
written atom-copy will be removed (used by a later read) is known at write
time — so every written block can be ordered by removal time. Then every
read's used atoms form the next contiguous segment of the block, and at
most two of the covering small-block reads are partially wasted.

The input program's initial blocks were not written by the program, so the
reduction prepends a read-and-write *scan* over the input (I/O volume 2N)
whose writes are then normalized like any others.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..trace.ops import Op, ReadOp, WriteOp
from ..trace.program import Program

INFINITY = float("inf")


def normalized_order(
    items: Sequence, uids: Sequence[Optional[int]], removal: Dict[int, Optional[int]]
) -> tuple[tuple, Tuple[Optional[int], ...]]:
    """Order a written block's payload by removal time (never-removed last).

    Stable for ties, so replays are deterministic. Returns the reordered
    ``(items, uids)`` pair.
    """
    keyed = sorted(
        range(len(items)),
        key=lambda t: (
            removal.get(uids[t]) if removal.get(uids[t]) is not None else INFINITY,
            t,
        ),
    )
    return (
        tuple(items[t] for t in keyed),
        tuple(uids[t] for t in keyed),
    )


def prepend_input_scan(program: Program) -> Program:
    """Build P' = (read+write scan over the input) followed by the program,
    with every later reference to an input block redirected to its copy.

    The scan has I/O volume 2N in the flash model and makes every block the
    program subsequently reads a *written* (hence normalizable) block.
    """
    used = set(program.initial_disk)
    for op in program.ops:
        used.add(op.addr)
    next_addr = max(used, default=-1) + 1

    remap: Dict[int, int] = {}
    scan_ops: list[Op] = []
    for addr in program.input_addrs:
        items = tuple(program.initial_disk.get(addr, ()))
        uids = tuple(getattr(it, "uid", None) for it in items)
        copy_addr = next_addr
        next_addr += 1
        remap[addr] = copy_addr
        scan_ops.append(ReadOp(addr, uids))
        scan_ops.append(WriteOp(copy_addr, uids, items))

    body: list[Op] = []
    for op in program.ops:
        addr = remap.get(op.addr, op.addr)
        if op.is_read:
            body.append(ReadOp(addr, op.uids))
        else:
            assert isinstance(op, WriteOp)
            body.append(WriteOp(addr, op.uids, op.items))

    return Program(
        params=program.params,
        initial_disk=dict(program.initial_disk),
        ops=scan_ops + body,
        input_addrs=list(program.input_addrs),
        output_addrs=[remap.get(a, a) for a in program.output_addrs],
        round_boundaries=[],
    )
