"""Human-readable renderings of straight-line programs.

Debugging the Section 4 machinery means staring at op sequences; these
helpers turn a :class:`~repro.trace.program.Program` into text:

* :func:`summarize` — one-paragraph header (cost split, rounds, touched
  addresses);
* :func:`render_timeline` — one line per op (``R``/``W``, address, atom
  count), with round boundaries drawn when recorded;
* :func:`residency_profile` — the liveness analysis as a block-character
  sparkline of atoms-in-memory over time, the picture behind "empty at
  round boundaries";
* :func:`address_heatmap` — per-address read/write counts, the wear view
  of a single program.

All output is plain ASCII-plus-block-characters; nothing here affects
costs or state.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from .analysis import liveness_intervals
from .program import Program

_SPARK = " ▁▂▃▄▅▆▇█"


def summarize(program: Program) -> str:
    """A compact header describing the program."""
    addrs_read = {op.addr for op in program.ops if op.is_read}
    addrs_written = {op.addr for op in program.ops if not op.is_read}
    lines = [
        program.describe(),
        f"  touches {len(addrs_read)} blocks reading, "
        f"{len(addrs_written)} writing "
        f"({len(addrs_read & addrs_written)} both)",
        f"  input blocks: {len(program.input_addrs)}, "
        f"output blocks: {len(program.output_addrs)}",
    ]
    return "\n".join(lines)


def render_timeline(
    program: Program, *, limit: Optional[int] = 60, width: int = 72
) -> str:
    """One line per op; round boundaries drawn as rules when recorded.

    ``limit`` caps the rendered ops (head and tail shown, middle elided);
    pass ``None`` for everything.
    """
    boundaries = set(program.round_boundaries)
    total = len(program.ops)
    if limit is None or total <= limit:
        indices = list(range(total))
    else:
        head = limit * 2 // 3
        tail = limit - head
        indices = list(range(head)) + [-1] + list(range(total - tail, total))

    lines = []
    round_no = 0
    for idx in indices:
        if idx == -1:
            lines.append(f"   ... {total - limit} ops elided ...")
            continue
        if idx in boundaries:
            round_no = program.round_boundaries.index(idx) + 1
            lines.append(("── round %d " % round_no).ljust(width, "─"))
        op = program.ops[idx]
        kind = "R" if op.is_read else "W"
        atoms = sum(1 for u in op.uids if u is not None)
        cost = "" if op.is_read else f"  (cost {program.params.omega:g})"
        lines.append(f"  {idx:6d}  {kind}  block {op.addr:<6d} {atoms:3d} atoms{cost}")
    return "\n".join(lines)


def residency_profile(program: Program, *, width: int = 64) -> str:
    """Atoms resident in internal memory over time, as a sparkline.

    Sampled at ``width`` evenly spaced op boundaries from the liveness
    analysis; the annotation line marks the peak against the machine's M.
    """
    live = liveness_intervals(program)
    n_ops = len(program.ops)
    points = min(width, n_ops + 1)
    samples = [
        len(live.live_at(round(t * n_ops / max(points - 1, 1))))
        for t in range(points)
    ]
    peak = max(samples, default=0)
    scale = max(peak, 1)
    chars = "".join(
        _SPARK[min(len(_SPARK) - 1, (s * (len(_SPARK) - 1)) // scale)]
        for s in samples
    )
    return (
        f"residency |{chars}| peak {peak} atoms "
        f"(M = {program.params.M})"
    )


def address_heatmap(program: Program, *, top: int = 10) -> str:
    """The most-touched addresses with read/write counts."""
    reads: Counter = Counter()
    writes: Counter = Counter()
    for op in program.ops:
        (reads if op.is_read else writes)[op.addr] += 1
    combined = Counter()
    for addr, c in reads.items():
        combined[addr] += c
    for addr, c in writes.items():
        combined[addr] += c
    lines = ["   block   reads  writes"]
    for addr, _ in combined.most_common(top):
        lines.append(f"  {addr:6d}  {reads[addr]:6d}  {writes[addr]:6d}")
    return "\n".join(lines)


def render_program(program: Program, *, timeline_limit: int = 40) -> str:
    """The full report: summary, residency profile, timeline, heat map."""
    return "\n".join(
        [
            summarize(program),
            "",
            residency_profile(program),
            "",
            render_timeline(program, limit=timeline_limit),
            "",
            address_heatmap(program),
        ]
    )
