"""Straight-line programs, trace recording, and trace analyses (Section 2/4)."""

from .analysis import (
    LivenessInfo,
    UsefulnessInfo,
    liveness_intervals,
    memory_at,
    segment_rounds,
    useful_read_volume,
    usefulness,
)
from .ops import OpCosts, ReadOp, WriteOp, tally
from .program import Program, Recorder, capture
from .render import (
    address_heatmap,
    render_program,
    render_timeline,
    residency_profile,
    summarize,
)

__all__ = [
    "LivenessInfo",
    "OpCosts",
    "Program",
    "ReadOp",
    "Recorder",
    "UsefulnessInfo",
    "WriteOp",
    "address_heatmap",
    "capture",
    "liveness_intervals",
    "memory_at",
    "render_program",
    "render_timeline",
    "residency_profile",
    "segment_rounds",
    "summarize",
    "tally",
    "useful_read_volume",
    "usefulness",
]
