"""I/O operation records for straight-line programs.

Section 2 of the paper distinguishes *algorithms* (which branch on the
input) from *programs* (fixed sequences of I/O operations for one particular
permutation or matrix conformation). Lower bounds are proved about programs;
running one of our algorithms on a concrete input and recording its I/Os
yields exactly such a program.

Each record captures the block address and the identities (``uid``s) of the
atoms transferred, which is what the Lemma 4.1 round conversion and the
Lemma 4.3 flash reduction need: both reason about *which copies of which
atoms* move where.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class ReadOp:
    """A read I/O: block ``addr`` was brought into internal memory.

    ``uids`` are the atom identities present in the block at read time
    (``None`` entries for payloads without identity). ``kept`` — filled in
    by the usefulness back-pass of :mod:`repro.trace.analysis` — marks which
    of those atoms this read actually *uses*, i.e. which copies eventually
    flow to the output (the notion of a read "using" atoms from Section 4.1).
    """

    addr: int
    uids: Tuple[Optional[int], ...]

    @property
    def is_read(self) -> bool:
        return True

    @property
    def cost_reads(self) -> int:
        return 1

    @property
    def cost_writes(self) -> int:
        return 0


@dataclass(frozen=True)
class WriteOp:
    """A write I/O: ``items`` (with identities ``uids``) went to block ``addr``.

    Unlike reads, writes record the payload itself: a straight-line program
    is replayed by re-issuing its writes, and transformed programs (the
    Lemma 4.1 round conversion) re-order writes relative to reads, so the
    data must travel with the op.
    """

    addr: int
    uids: Tuple[Optional[int], ...]
    items: Tuple = ()

    @property
    def is_read(self) -> bool:
        return False

    @property
    def cost_reads(self) -> int:
        return 0

    @property
    def cost_writes(self) -> int:
        return 1


Op = ReadOp | WriteOp


@dataclass
class OpCosts:
    """Aggregate cost of a sequence of ops under a given ``omega``."""

    reads: int = 0
    writes: int = 0

    def add(self, op: Op) -> None:
        self.reads += op.cost_reads
        self.writes += op.cost_writes

    def Q(self, omega: float) -> float:
        return self.reads + omega * self.writes


def tally(ops, omega: float) -> float:
    """Total AEM cost ``Qr + omega * Qw`` of an op sequence."""
    costs = OpCosts()
    for op in ops:
        costs.add(op)
    return costs.Q(omega)
