"""Straight-line I/O programs.

A :class:`Program` is the object the paper's Section 2 calls a *program*: a
fixed sequence of I/O operations for one particular input instance. Running
any of this repository's algorithms on a recording
:class:`~repro.machine.aem.AEMMachine` and calling :func:`capture` yields
one.

Programs can be *replayed* — re-executed against their initial external
memory image with full consistency checking — which is how transformed
programs (the Lemma 4.1 round conversion, the Lemma 4.3 flash reduction)
are validated: a transformation is correct iff the transformed program
replays cleanly and leaves the same output in external memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..core.params import AEMParams
from ..machine.errors import TraceError
from .ops import Op, ReadOp, WriteOp

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..machine.aem import AEMMachine


@dataclass
class Program:
    """A recorded straight-line I/O program and its execution context.

    Attributes
    ----------
    params:
        The (M, B, omega)-AEM parameters the program was recorded under.
    initial_disk:
        Snapshot of external memory *before* the program ran (address ->
        tuple of atoms). Replay starts from this image.
    ops:
        The I/O sequence.
    input_addrs / output_addrs:
        Where the problem input was placed and where the program left its
        output, for verification.
    round_boundaries:
        Optional op indices where rounds start (filled in by the Lemma 4.1
        converter); ``[0, b1, b2, ...]``. Empty for unstructured programs.
    """

    params: AEMParams
    initial_disk: Dict[int, Tuple]
    ops: list[Op]
    input_addrs: list[int] = field(default_factory=list)
    output_addrs: list[int] = field(default_factory=list)
    round_boundaries: list[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Cost.
    # ------------------------------------------------------------------
    @property
    def reads(self) -> int:
        return sum(1 for op in self.ops if op.is_read)

    @property
    def writes(self) -> int:
        return sum(1 for op in self.ops if not op.is_read)

    @property
    def cost(self) -> float:
        """AEM cost ``Q = Qr + omega * Qw``."""
        return self.reads + self.params.omega * self.writes

    def op_cost(self, op: Op) -> float:
        return 1.0 if op.is_read else float(self.params.omega)

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # Replay.
    # ------------------------------------------------------------------
    def replay(self, *, validate: bool = True) -> Dict[int, Tuple]:
        """Execute the program against its initial disk image.

        Returns the final external-memory image. With ``validate=True``
        every read is checked against the recorded block contents (by atom
        uid), so a transformed program that re-orders I/Os inconsistently
        fails loudly.
        """
        disk: Dict[int, Tuple] = dict(self.initial_disk)
        B = self.params.B
        for idx, op in enumerate(self.ops):
            if op.is_read:
                if op.addr not in disk:
                    raise TraceError(f"op {idx}: read of unallocated block {op.addr}")
                if validate:
                    actual = tuple(getattr(it, "uid", None) for it in disk[op.addr])
                    if actual != op.uids:
                        raise TraceError(
                            f"op {idx}: read of block {op.addr} saw uids "
                            f"{actual[:8]} but the trace recorded {op.uids[:8]}"
                        )
            else:
                assert isinstance(op, WriteOp)
                if len(op.items) > B:
                    raise TraceError(
                        f"op {idx}: write of {len(op.items)} atoms exceeds B={B}"
                    )
                disk[op.addr] = tuple(op.items)
        return disk

    def final_output(self, *, validate: bool = True) -> list:
        """Replay and concatenate the output blocks' atoms."""
        final = self.replay(validate=validate)
        out: list = []
        for addr in self.output_addrs:
            out.extend(final.get(addr, ()))
        return out

    def input_atoms(self) -> list:
        out: list = []
        for addr in self.input_addrs:
            out.extend(self.initial_disk.get(addr, ()))
        return out

    # ------------------------------------------------------------------
    # Structure helpers.
    # ------------------------------------------------------------------
    def rounds(self) -> list[list[Op]]:
        """The ops grouped by the recorded round boundaries."""
        if not self.round_boundaries:
            return [list(self.ops)]
        bounds = list(self.round_boundaries)
        if bounds[0] != 0:
            bounds = [0] + bounds
        bounds.append(len(self.ops))
        return [list(self.ops[bounds[i] : bounds[i + 1]]) for i in range(len(bounds) - 1)]

    def describe(self) -> str:
        return (
            f"Program[{self.params.describe()}]: {len(self.ops)} ops, "
            f"Qr={self.reads}, Qw={self.writes}, Q={self.cost:g}"
            + (f", {len(self.rounds())} rounds" if self.round_boundaries else "")
        )


class Recorder:
    """Capture a :class:`Program` from an algorithm run.

    Usage::

        rec = Recorder(params)
        addrs = rec.machine.load_input(atoms)
        rec.set_input(addrs)
        out = some_algorithm(rec.machine, addrs, ...)
        program = rec.finish(out)

    The recorder snapshots the external memory at construction-input time so
    the program carries everything replay needs. Recording itself is a
    :class:`~repro.observe.TraceRecorder` observer on the machine's event
    bus; a machine passed in must already have one attached (construct it
    with ``observers=[TraceRecorder()]`` or the legacy ``record=True``).
    """

    def __init__(self, params: AEMParams, *, machine: "Optional[AEMMachine]" = None):
        from ..machine.aem import AEMMachine  # deferred: breaks import cycle
        from ..observe.trace import TraceRecorder

        self.params = params
        self.machine = machine or AEMMachine.for_algorithm(
            params, observers=[TraceRecorder()]
        )
        if self.machine.recorder is None:
            raise TraceError(
                "the recorder's machine must have a TraceRecorder attached "
                "(construct it with observers=[TraceRecorder()] or record=True)"
            )
        self._input_addrs: list[int] = []
        self._initial: Optional[Dict[int, Tuple]] = None

    def load_input(self, items: Sequence) -> list[int]:
        addrs = self.machine.load_input(items)
        self.set_input(addrs)
        return addrs

    def set_input(self, addrs: Sequence[int]) -> None:
        self._input_addrs = list(addrs)
        self._initial = self.machine.disk.snapshot()

    def finish(self, output_addrs: Sequence[int]) -> Program:
        if self._initial is None:
            raise TraceError("set_input/load_input must be called before finish")
        recorder = self.machine.recorder
        return Program(
            params=self.params,
            initial_disk=self._initial,
            ops=list(self.machine.trace),
            input_addrs=list(self._input_addrs),
            output_addrs=list(output_addrs),
            round_boundaries=list(recorder.round_boundaries) if recorder else [],
        )


def capture(params: AEMParams, items: Sequence, algorithm, *args, **kwargs) -> Program:
    """Record the program that ``algorithm`` performs on ``items``.

    ``algorithm(machine, input_addrs, *args, **kwargs)`` must return the
    output block addresses.
    """
    rec = Recorder(params)
    addrs = rec.load_input(items)
    out = algorithm(rec.machine, addrs, *args, **kwargs)
    return rec.finish(out)
