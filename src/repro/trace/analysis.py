"""Analyses of straight-line programs.

Three analyses power the Section 4 machinery:

1. :func:`segment_rounds` — split a program's op sequence into the
   *omega-m rounds* of the lower-bound framework: maximal prefixes of cost
   at most ``omega * m``, each (except possibly the last) of cost at least
   ``omega * (m - 1)``.

2. :func:`liveness_intervals` / :func:`memory_at` — reconstruct, from the
   I/O trace alone, which atoms must reside in internal memory at any point:
   atom ``u`` is live at time ``t`` iff some future write of ``u`` sources
   its copy from a read at or before ``t``. The Lemma 4.1 converter uses
   this to know what to spill at round boundaries.

3. :func:`usefulness` — the paper's Section 4.1 notion of a read *using*
   atoms: a backward pass that assigns, to every write of an atom, the
   latest prior read that could have supplied the copy, and marks those
   atoms as used by that read. Under move semantics the used atoms are
   *removed* from the block by the read; their removal times drive the
   block normalization of the Lemma 4.3 flash reduction.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .ops import WriteOp
from .program import Program


# ----------------------------------------------------------------------
# Round segmentation.
# ----------------------------------------------------------------------
def segment_rounds(program: Program, *, budget: Optional[float] = None) -> list[int]:
    """Op indices at which rounds start (first entry always 0).

    A round is a maximal prefix of remaining ops whose cost stays within
    ``budget`` (default ``omega * m``, the paper's round size). Because a
    single op costs at most ``omega <= omega * m``, every op fits in some
    round; maximality gives each round except the last a cost greater than
    ``budget - omega >= omega * (m - 1)``.
    """
    params = program.params
    if budget is None:
        budget = params.omega * params.m
    if budget < params.omega:
        raise ValueError(
            f"round budget {budget} cannot fit a single write (omega={params.omega})"
        )
    boundaries = [0]
    spent = 0.0
    for idx, op in enumerate(program.ops):
        c = program.op_cost(op)
        if spent + c > budget and idx > 0:
            boundaries.append(idx)
            spent = 0.0
        spent += c
    return boundaries


# ----------------------------------------------------------------------
# Liveness.
# ----------------------------------------------------------------------
@dataclass
class LivenessInfo:
    """Per-atom residency intervals derived from a trace.

    ``intervals[u]`` is a list of half-open op-index intervals
    ``(source_read_end, write_index)`` during which atom ``u`` must be held
    in internal memory: the copy enters memory when the source read
    executes (so it is resident *after* op ``source_read``) and leaves when
    the consuming write executes.
    """

    intervals: Dict[int, List[Tuple[int, int]]]
    atom_by_uid: Dict[int, object]

    def live_at(self, boundary: int) -> list[int]:
        """Uids of atoms resident in memory at the boundary *before* op
        index ``boundary`` (i.e. after ops ``0..boundary-1`` executed)."""
        out = []
        for uid, ivals in self.intervals.items():
            for start, end in ivals:
                # Resident after op `start` executed, consumed by op `end`.
                if start < boundary <= end:
                    out.append(uid)
                    break
        return out

    def peak(self, boundaries: Optional[list[int]] = None) -> int:
        """Maximum number of live atoms over the given boundaries (or all)."""
        if boundaries is None:
            n_ops = max(
                (end for ivals in self.intervals.values() for _, end in ivals),
                default=0,
            )
            boundaries = list(range(n_ops + 1))
        return max((len(self.live_at(b)) for b in boundaries), default=0)


def liveness_intervals(program: Program) -> LivenessInfo:
    """Reconstruct memory-residency intervals from the trace.

    For each write of atom ``u`` at op index ``w``, the copy written must
    have entered internal memory at the latest read of ``u`` strictly
    before ``w`` (atoms cannot be fabricated). If no such read exists the
    atom must have been created internally — legal for semiring programs
    (SpMxV partial sums) but not for permuting programs; such writes get an
    interval starting at -1 (resident since the beginning).
    """
    read_times: Dict[int, List[int]] = {}
    atom_by_uid: Dict[int, object] = {}
    for idx, op in enumerate(program.ops):
        if op.is_read:
            for uid in op.uids:
                if uid is not None:
                    read_times.setdefault(uid, []).append(idx)

    intervals: Dict[int, List[Tuple[int, int]]] = {}
    for idx, op in enumerate(program.ops):
        if op.is_read:
            continue
        assert isinstance(op, WriteOp)
        for uid, item in zip(op.uids, op.items):
            if uid is None:
                continue
            atom_by_uid.setdefault(uid, item)
            times = read_times.get(uid, [])
            pos = bisect_right(times, idx - 1)
            source = times[pos - 1] if pos > 0 else -1
            intervals.setdefault(uid, []).append((source, idx))
    return LivenessInfo(intervals=intervals, atom_by_uid=atom_by_uid)


def memory_at(program: Program, boundary: int) -> list[int]:
    """Uids resident in internal memory just before op index ``boundary``."""
    return liveness_intervals(program).live_at(boundary)


# ----------------------------------------------------------------------
# Usefulness (Section 4.1's "a read uses atoms of a block").
# ----------------------------------------------------------------------
@dataclass
class UsefulnessInfo:
    """Which atoms each read *uses* and when each written copy is removed.

    Attributes
    ----------
    used_by_read:
        ``used_by_read[i]`` — set of uids that op ``i`` (a read) uses, i.e.
        whose copies taken by this read eventually flow to the output.
    removal_time:
        ``removal_time[i][uid]`` — for a write op ``i``, the op index of the
        read that removes ``uid``'s copy from the written block, or ``None``
        if that copy is never removed (it survives to the end, or is stale).
    source_read:
        ``source_read[i][uid]`` — for a write op ``i``, the read op index
        that supplied the copy (or ``None`` for atoms resident since the
        start / created internally).
    """

    used_by_read: Dict[int, Set[int]]
    removal_time: Dict[int, Dict[int, Optional[int]]]
    source_read: Dict[int, Dict[int, Optional[int]]]

    def useful_atoms_of_read(self, idx: int) -> Set[int]:
        return self.used_by_read.get(idx, set())


def usefulness(program: Program) -> UsefulnessInfo:
    """Backward pass assigning a consistent source to every live atom copy.

    Walks the op sequence in reverse, tracking for every output atom where
    its *live* copy currently is: on disk in some block, or in internal
    memory. A write that placed the live copy moves the tracker to
    "memory"; the latest read of the atom preceding it is then chosen as
    the copy's source and marked as *using* the atom. The choice is
    consistent by construction (the recorded uids prove the copy existed in
    the read block), which is all the paper's refined-trace argument needs.
    """
    ops = program.ops
    final = program.replay(validate=True)

    # Where does each output atom's live copy end up?
    live_loc: Dict[int, tuple] = {}
    for addr in program.output_addrs:
        for item in final.get(addr, ()):
            uid = getattr(item, "uid", None)
            if uid is not None:
                live_loc[uid] = ("disk", addr)

    used_by_read: Dict[int, Set[int]] = {}
    removal_time: Dict[int, Dict[int, Optional[int]]] = {}
    source_read: Dict[int, Dict[int, Optional[int]]] = {}
    # pending_consumer[uid] = write op index whose copy is awaiting a source
    # read; pending_removal[uid] = the read op index that will remove the
    # copy from the block that an (earlier) write placed it in.
    pending_consumer: Dict[int, int] = {}
    pending_removal: Dict[int, int] = {}

    for idx in range(len(ops) - 1, -1, -1):
        op = ops[idx]
        if op.is_read:
            used: Set[int] = set()
            for uid in op.uids:
                if uid is None:
                    continue
                if live_loc.get(uid) == ("mem",):
                    # This read supplied the copy consumed by pending write:
                    # the read *uses* (removes) the atom from block op.addr.
                    used.add(uid)
                    consumer = pending_consumer.pop(uid)
                    source_read.setdefault(consumer, {})[uid] = idx
                    pending_removal[uid] = idx
                    live_loc[uid] = ("disk", op.addr)
            if used:
                used_by_read[idx] = used
        else:
            assert isinstance(op, WriteOp)
            removal_time.setdefault(idx, {})
            source_read.setdefault(idx, {})
            for uid in op.uids:
                if uid is None:
                    continue
                if live_loc.get(uid) == ("disk", op.addr):
                    # This write placed the copy the downstream chain uses.
                    live_loc[uid] = ("mem",)
                    pending_consumer[uid] = idx
                    # Removed by the read the backward pass flipped at (or
                    # never, if this write produced the final output copy).
                    removal_time[idx][uid] = pending_removal.pop(uid, None)
                else:
                    # Stale copy: never used downstream.
                    removal_time[idx][uid] = None

    # Atoms still pending ("mem") at index 0 were resident from the start or
    # created internally (legal only for semiring programs): no source read.
    for uid, consumer in pending_consumer.items():
        source_read.setdefault(consumer, {})[uid] = None

    return UsefulnessInfo(
        used_by_read=used_by_read,
        removal_time=removal_time,
        source_read=source_read,
    )


def useful_read_volume(program: Program, info: Optional[UsefulnessInfo] = None) -> int:
    """Total number of atom-copies that reads usefully bring into memory.

    In a permuting program every output atom's copy chain contributes; the
    paper's observation is that in a round of cost ``omega * m`` only a
    ``1/omega`` fraction of read atoms can be useful, since useful atoms
    must be written out within the program.
    """
    info = info or usefulness(program)
    return sum(len(s) for s in info.used_by_read.values())
