"""External stack and FIFO queue — the textbook amortized structures.

Both keep O(B) atoms of in-memory buffer and move data in whole blocks, so
every operation costs amortized ``O(1/B)`` read I/Os and ``O(omega/B)``
write I/Os — the baseline every external data structure is measured
against, and a gentle first example of the buffering idiom the rest of the
repository uses everywhere.

* :class:`ExternalStack` — a hot block in memory; pushes spill a full
  block, pops reload one. The classic double-buffering refinement (keep
  the boundary from thrashing) is implemented: the stack only spills when
  *two* blocks are full and only reloads when the buffer runs empty, so an
  adversarial push/pop alternation at a block boundary cannot force one
  I/O per operation.
* :class:`ExternalQueue` — a head buffer (reading side) and a tail buffer
  (writing side) over a list of full blocks.

Slot discipline as everywhere: push takes ownership, pop returns it;
``push_new`` acquires for freshly created items.
"""

from __future__ import annotations

from typing import Optional

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.errors import MachineError


class StructureEmptyError(MachineError):
    """Pop from an empty external structure."""


class ExternalStack:
    """LIFO stack with amortized O(1/B) I/Os per operation."""

    def __init__(self, machine: AEMMachine, params: AEMParams):
        self.machine = machine
        self.B = params.B
        self._buffer: list = []  # top of the stack at the end; <= 2B atoms
        self._blocks: list[int] = []  # full spilled blocks, bottom first
        self._spilled = 0

    def __len__(self) -> int:
        return self._spilled + len(self._buffer)

    def push(self, item) -> None:
        """Push an atom the caller holds (amortized O(omega/B))."""
        self._buffer.append(item)
        self.machine.touch()
        if len(self._buffer) == 2 * self.B:
            # Spill the *bottom* block of the buffer, keeping a full block
            # in memory so a pop right after cannot force a read.
            addr = self.machine.write_fresh(self._buffer[: self.B])
            self._blocks.append(addr)
            self._buffer = self._buffer[self.B :]
            self._spilled += self.B

    def push_new(self, item) -> None:
        self.machine.acquire(1, "stack push")
        self.push(item)

    def pop(self):
        """Pop the top atom (amortized O(1/B) reads)."""
        if not self._buffer:
            if not self._blocks:
                raise StructureEmptyError("pop from an empty stack")
            addr = self._blocks.pop()
            self._buffer = self.machine.read(addr)
            self.machine.free(addr)
            self._spilled -= len(self._buffer)
        self.machine.touch()
        return self._buffer.pop()

    def peek(self):
        if self._buffer:
            return self._buffer[-1]
        if not self._blocks:
            return None
        # Peek must not lose the block: read, keep as the buffer.
        addr = self._blocks.pop()
        self._buffer = self.machine.read(addr)
        self.machine.free(addr)
        self._spilled -= len(self._buffer)
        return self._buffer[-1]

    def close(self) -> None:
        self.machine.release(len(self._buffer))
        self._buffer = []
        self._blocks = []
        self._spilled = 0


class ExternalQueue:
    """FIFO queue with amortized O(1/B) I/Os per operation."""

    def __init__(self, machine: AEMMachine, params: AEMParams):
        self.machine = machine
        self.B = params.B
        self._head: list = []  # next to pop at position 0; <= B atoms
        self._blocks: list[int] = []  # full middle blocks, oldest first
        self._middle = 0
        self._tail: list = []  # most recent pushes; <= B atoms

    def __len__(self) -> int:
        return len(self._head) + self._middle + len(self._tail)

    def push(self, item) -> None:
        self._tail.append(item)
        self.machine.touch()
        if len(self._tail) == self.B:
            addr = self.machine.write_fresh(self._tail)
            self._blocks.append(addr)
            self._middle += self.B
            self._tail = []

    def push_new(self, item) -> None:
        self.machine.acquire(1, "queue push")
        self.push(item)

    def pop(self):
        if not self._head:
            if self._blocks:
                addr = self._blocks.pop(0)
                self._head = self.machine.read(addr)
                self.machine.free(addr)
                self._middle -= len(self._head)
            elif self._tail:
                self._head = self._tail
                self._tail = []
            else:
                raise StructureEmptyError("pop from an empty queue")
        self.machine.touch()
        return self._head.pop(0)

    def peek(self):
        if self._head:
            return self._head[0]
        if self._blocks:
            addr = self._blocks.pop(0)
            self._head = self.machine.read(addr)
            self.machine.free(addr)
            self._middle -= len(self._head)
            return self._head[0]
        if self._tail:
            return self._tail[0]
        return None

    def close(self) -> None:
        self.machine.release(len(self._head) + len(self._tail))
        self._head = []
        self._tail = []
        self._blocks = []
        self._middle = 0
