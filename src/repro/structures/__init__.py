"""External-memory data structures built on the AEM simulator."""

from .pq import ExternalPQ, PQError, pq_sort
from .stack_queue import ExternalQueue, ExternalStack, StructureEmptyError

__all__ = [
    "ExternalPQ",
    "ExternalQueue",
    "ExternalStack",
    "PQError",
    "StructureEmptyError",
    "pq_sort",
]
