"""An external-memory priority queue for the AEM.

The literature's AEM heapsort (cited by the paper as one of the two
unconditionally optimal sorters) rests on an external priority queue with
buffered, batch-amortized operations. This module provides such a
structure, built from this repository's own primitives:

* an in-memory **insert buffer** (a binary heap of up to ``Mi`` atoms) —
  pushes are free until it spills;
* an in-memory **delete buffer** (up to ``Md`` atoms) holding the globally
  smallest atoms stored in external runs, refilled by a *selection round*
  in the style of Section 3.1 (initialize from two blocks per run, then
  merge deeper only from runs that stay active);
* external **sorted runs** with per-run consumption cursors, compacted by
  leveled merging through :func:`~repro.sorting.merge.multiway_merge`
  (fan-in ``k``, so each atom takes part in ``O(log_k(n/m))`` merges).

Correctness invariant (checked in debug assertions and by the test
model): every atom still stored in a run is strictly greater, in the
``(key, uid)`` order, than every atom in the delete buffer. Insert-buffer
spills preserve it by splitting the spilled batch at the delete buffer's
maximum — the part below it joins the delete buffer (trimming the buffer's
largest atoms into a run of their own if it overflows).

Slot discipline follows the package convention: :meth:`push` takes
ownership of an atom the caller already holds; :meth:`pop` hands ownership
back. ``push_new`` acquires for atoms created in internal memory.

Costs: a push costs amortized ``O((1 + omega)/B)`` I/O per level it later
migrates through; a pop costs amortized ``O(1/B)`` reads plus its share of
refill overhead (``O(#runs * B / Md)`` reads per popped atom). Sorting N
atoms through the queue (:func:`pq_sort`) therefore costs
``O((1 + omega) * n * log_k(n/m))`` — the classic external heapsort bound
with fan-in ``k``; raising ``k`` toward ``omega*m`` with externalized
cursors (as Section 3 does for mergesort) is the natural extension and is
discussed in DESIGN.md.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..atoms.atom import Atom
from ..core.params import AEMParams, ceil_div
from ..machine.aem import AEMMachine
from ..machine.errors import MachineError
from ..machine.streams import BlockWriter
from ..sorting.merge import multiway_merge
from ..sorting.runs import Run


class PQError(MachineError):
    """Invariant violation or misuse of the external priority queue."""


class _StoredRun:
    """A sorted external run with a consumption cursor.

    ``cursor`` counts atoms already handed to the delete buffer; runs are
    always consumed prefix-wise (the refill takes globally smallest atoms
    and every run is sorted).
    """

    __slots__ = ("run", "cursor", "level")

    def __init__(self, run: Run, level: int):
        self.run = run
        self.cursor = 0
        self.level = level

    @property
    def remaining(self) -> int:
        return self.run.length - self.cursor

    def block_of(self, pos: int, B: int) -> tuple[int, int]:
        """(block index, offset) of the absolute atom position ``pos``."""
        return pos // B, pos % B


class ExternalPQ:
    """Buffered external-memory min-priority queue of atoms."""

    def __init__(
        self,
        machine: AEMMachine,
        params: AEMParams,
        *,
        insert_capacity: Optional[int] = None,
        delete_capacity: Optional[int] = None,
        fan_in: Optional[int] = None,
    ):
        self.machine = machine
        self.params = params
        B = params.B
        self.Mi = insert_capacity or max(B, params.M // 4)
        self.Md = delete_capacity or max(B, params.M // 4)
        self.k = fan_in or max(2, min(params.m - 1, params.fanout))
        if self.k < 2:
            raise PQError("fan-in must be at least 2")
        # In-memory state. Atoms in both buffers occupy machine slots.
        self._insert: list = []  # heapq of (token, atom)
        self._delete: list = []  # ascending list of atoms (smallest first)
        self._runs: list[_StoredRun] = []
        self._size = 0
        # Per-run cursors are auxiliary in-memory words, charged like the
        # merge's pointer table (2 words per run).
        self._cursor_words = 0

    # ------------------------------------------------------------------
    # Size and peeking.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self._size > 0

    def peek(self) -> Optional[Atom]:
        """The minimum atom, without removing it (may trigger a refill)."""
        if self._size == 0:
            return None
        self._ensure_delete_head()
        return self._min_source()[1]

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def push(self, atom: Atom) -> None:
        """Insert an atom the caller already holds in internal memory."""
        heapq.heappush(self._insert, (atom.sort_token(), atom))
        self._size += 1
        self.machine.touch()
        if len(self._insert) > self.Mi:
            self._spill_insert_buffer()

    def push_new(self, atom: Atom) -> None:
        """Insert an atom created in internal memory (acquires its slot)."""
        self.machine.acquire(1, "pq insert")
        self.push(atom)

    def pop(self) -> Atom:
        """Remove and return the minimum atom (ownership to the caller)."""
        if self._size == 0:
            raise PQError("pop from an empty priority queue")
        self._ensure_delete_head()
        source, _ = self._min_source()
        self._size -= 1
        self.machine.touch()
        if source == "insert":
            return heapq.heappop(self._insert)[1]
        return self._delete.pop(0)

    def drain(self) -> list[int]:
        """Pop everything into fresh output blocks; returns the addresses.

        Equivalent to N pops + writes but batched through a BlockWriter.
        """
        writer = BlockWriter(self.machine)
        while self._size:
            writer.push(self.pop())
        addrs = writer.close()
        self.close()
        return addrs

    def close(self) -> None:
        """Release all internal-memory state (buffers and cursor words).

        Atoms still queued are discarded; a queue abandoned without
        draining must be closed to keep the machine's ledger exact.
        """
        self.machine.release(len(self._insert) + len(self._delete))
        self._insert = []
        self._delete = []
        for _ in self._runs:
            self.machine.release(2)
        self._cursor_words = 0
        self._runs = []
        self._size = 0

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _min_source(self) -> tuple[str, Atom]:
        """Which buffer currently holds the global minimum."""
        best: tuple[str, Atom] | None = None
        if self._insert:
            best = ("insert", self._insert[0][1])
        if self._delete:
            cand = self._delete[0]
            if best is None or cand < best[1]:
                best = ("delete", cand)
        if best is None:
            raise PQError("no atoms buffered despite non-zero size")
        return best

    def _ensure_delete_head(self) -> None:
        """Refill the delete buffer if runs hold atoms but it is empty."""
        if not self._delete and any(r.remaining for r in self._runs):
            self._refill()

    # ----------------------- insert spills ----------------------------
    def _spill_insert_buffer(self) -> None:
        """Flush the insert buffer into a new level-0 run.

        The batch is split at the delete buffer's maximum to preserve the
        run/delete-buffer threshold invariant.
        """
        batch = [atom for _, atom in sorted(self._insert)]
        self.machine.touch(len(batch))
        self._insert = []

        if self._delete:
            threshold = self._delete[-1].sort_token()
            below = [a for a in batch if a.sort_token() <= threshold]
            batch = batch[len(below):]
            if below:
                merged = sorted(self._delete + below)
                self.machine.touch(len(merged))
                self._delete = merged
                # Trim an overfull delete buffer: its largest atoms become
                # a run of their own; the new (smaller) maximum keeps the
                # invariant for every stored run.
                if len(self._delete) > self.Md:
                    spill = self._delete[self.Md:]
                    self._delete = self._delete[: self.Md]
                    self._store_run(spill)
        if batch:
            self._store_run(batch)
        self._compact()

    def _store_run(self, atoms: list) -> None:
        """Write a sorted in-memory batch out as a stored run."""
        writer = BlockWriter(self.machine)
        for atom in atoms:
            writer.push(atom)
        run = Run.of(writer.close(), len(atoms))
        level = self._level_of(run.length)
        self._runs.append(_StoredRun(run, level))
        self.machine.acquire(2, "pq run cursor")
        self._cursor_words += 2

    def _level_of(self, length: int) -> int:
        level = 0
        cap = max(1, self.Mi)
        while length > cap:
            cap *= self.k
            level += 1
        return level

    # ----------------------- leveled compaction ------------------------
    def _compact(self) -> None:
        """Merge runs level by level while any level holds >= k runs."""
        while True:
            by_level: dict[int, list[_StoredRun]] = {}
            for sr in self._runs:
                if sr.remaining > 0:
                    by_level.setdefault(sr.level, []).append(sr)
            target = next(
                (lv for lv, group in sorted(by_level.items()) if len(group) >= self.k),
                None,
            )
            if target is None:
                break
            group = by_level[target][: self.params.fanout]
            self._merge_group(group)
            # Drop exhausted runs' cursors.
            kept = []
            for sr in self._runs:
                if sr.remaining > 0:
                    kept.append(sr)
                else:
                    self.machine.release(2)
                    self._cursor_words -= 2
            self._runs = kept

    def _merge_group(self, group: list[_StoredRun]) -> None:
        """Merge a group of (possibly partially consumed) runs."""
        pieces = [self._compact_remaining(sr) for sr in group]
        pieces = [r for r in pieces if not r.is_empty()]
        for sr in group:
            sr.cursor = sr.run.length  # consumed into the merge
        if not pieces:
            return
        merged = multiway_merge(self.machine, pieces, self.params)
        level = self._level_of(merged.length)
        self._runs.append(_StoredRun(merged, level))
        self.machine.acquire(2, "pq run cursor")
        self._cursor_words += 2

    def _compact_remaining(self, sr: _StoredRun) -> Run:
        """The unconsumed suffix of a run as a standalone Run.

        Fully unconsumed runs are reused as-is; a partially consumed first
        block is rewritten fresh (one read + one write).
        """
        B = self.params.B
        if sr.cursor == 0:
            return sr.run
        if sr.remaining == 0:
            return Run.of((), 0)
        first_block, offset = sr.block_of(sr.cursor, B)
        addrs = list(sr.run.addrs[first_block:])
        if offset == 0:
            return Run.of(addrs, sr.remaining)
        blk = self.machine.read(addrs[0])
        keep = blk[offset:]
        self.machine.release(len(blk) - len(keep))
        fresh = self.machine.write_fresh(keep)
        return Run.of([fresh] + addrs[1:], sr.remaining)

    # ----------------------- delete-buffer refill ----------------------
    def _refill(self) -> None:
        """Selection round: move the up-to-Md smallest run atoms into the
        delete buffer, advancing each run's cursor past its contribution.

        Mirrors Section 3.1's round structure with in-memory cursors:
        initialize from (up to) two blocks per run, identify the runs that
        can still contribute, then merge deeper from the run with the
        smallest loaded maximum.
        """
        B = self.params.B
        # buffer entries: (atom, run index); sorted ascending by atom.
        buffer: list = []
        taken: dict[int, int] = {}

        def offer(atom, ridx) -> bool:
            """Try to place an atom into the selection buffer."""
            self.machine.touch()
            if len(buffer) < self.Md:
                _insort_entry(buffer, (atom, ridx))
                taken[ridx] = taken.get(ridx, 0) + 1
                return True
            if atom < buffer[-1][0]:
                _, evicted_ridx = buffer.pop()
                taken[evicted_ridx] -= 1
                self.machine.release(1)
                _insort_entry(buffer, (atom, ridx))
                taken[ridx] = taken.get(ridx, 0) + 1
                return True
            self.machine.release(1)
            return False

        # Phase A: two blocks per run, from the cursor.
        frontier: dict[int, int] = {}  # run idx -> next unread block index
        for ridx, sr in enumerate(self._runs):
            if sr.remaining == 0:
                continue
            first_block, offset = sr.block_of(sr.cursor, B)
            loaded = 0
            for bidx in (first_block, first_block + 1):
                if bidx >= sr.run.blocks:
                    break
                blk = self.machine.read(sr.run.addrs[bidx])
                skip = offset if bidx == first_block else 0
                self.machine.release(skip)
                for atom in blk[skip:]:
                    offer(atom, ridx)
                loaded = bidx + 1
            frontier[ridx] = loaded

        # Phase B/C: merge deeper from runs that may still contribute.
        # A run is active while its last loaded atom sits in the buffer.
        def run_max_token(ridx):
            sr = self._runs[ridx]
            end = min(frontier[ridx] * B, sr.run.length)
            if end <= sr.cursor:
                return None
            last_bidx = frontier[ridx] - 1
            blk = self.machine.peek(sr.run.addrs[last_bidx])
            return blk[-1].sort_token()

        active: dict[int, tuple] = {}
        for ridx in frontier:
            sr = self._runs[ridx]
            if frontier[ridx] >= sr.run.blocks:
                continue  # fully loaded
            token = run_max_token(ridx)
            if token is None:
                continue
            buf_full = len(buffer) >= self.Md
            if not buf_full or token < buffer[-1][0].sort_token():
                active[ridx] = token
        while active:
            ridx = min(active, key=active.get)
            sr = self._runs[ridx]
            bidx = frontier[ridx]
            blk = self.machine.read(sr.run.addrs[bidx])
            for atom in blk:
                offer(atom, ridx)
            frontier[ridx] = bidx + 1
            token = blk[-1].sort_token()
            buf_full = len(buffer) >= self.Md
            exhausted = frontier[ridx] >= sr.run.blocks
            if exhausted or (buf_full and token > buffer[-1][0].sort_token()):
                del active[ridx]
            else:
                active[ridx] = token

        # Commit: the buffer holds the Md smallest stored atoms; advance
        # each run's cursor by its contribution.
        for ridx, count in taken.items():
            if count:
                self._runs[ridx].cursor += count
        self._delete = [atom for atom, _ in buffer]
        if not self._delete:
            raise PQError("refill produced nothing despite stored atoms")
        self._drop_exhausted_runs()

    def _drop_exhausted_runs(self) -> None:
        kept = []
        for sr in self._runs:
            if sr.remaining > 0:
                kept.append(sr)
            else:
                self.machine.release(2)
                self._cursor_words -= 2
        self._runs = kept


def _insort_entry(buffer: list, entry: tuple) -> None:
    """Insert (atom, ridx) keeping the buffer sorted by atom."""
    lo, hi = 0, len(buffer)
    atom = entry[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if buffer[mid][0] < atom:
            lo = mid + 1
        else:
            hi = mid
    buffer.insert(lo, entry)


def pq_sort(
    machine: AEMMachine, addrs, params: AEMParams
) -> list[int]:
    """Sort by pushing everything through an :class:`ExternalPQ`.

    The classic heapsort-via-priority-queue: cost
    ``O((1 + omega) * n * log_k(n/m))`` with the queue's fan-in ``k``.
    Registered as ``aem_pqsort`` in the sorter registry.
    """
    from ..machine.streams import BlockReader

    pq = ExternalPQ(machine, params)
    reader = BlockReader(machine, addrs)
    for atom in reader:
        pq.push(atom)  # ownership transfers from the reader
    return pq.drain()
