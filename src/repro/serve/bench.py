"""`repro-aem serve-bench`: open-loop load generation for the cost oracle.

The generator replays *bursty open-loop* traffic — arrival events come
off an exponential clock and each event fires a burst of concurrent
requests without waiting for earlier ones, so the server sees real
concurrency, not lock-step request/response pairs. The query mix is
*zipfian* over a pool of distinct configs: a few configs are hot and
most are cold, which is exactly the shape the serving layer's dedup +
batch machinery exists for. The report carries p50/p95/p99 latency and
the server's dedup/cache hit-rates, all collected through
:class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import asdict, dataclass
from typing import Any, Optional

from ..telemetry import MetricsRegistry
from .http import arequest

_PERCENTILES = (0.5, 0.95, 0.99)


@dataclass(frozen=True)
class BenchConfig:
    """One load-generation run against a live server.

    ``rate`` is the mean *request* rate (requests/second); arrivals come
    in bursts of ``burst`` back-to-back requests, so burst events fire at
    ``rate / burst`` per second with exponential gaps. ``distinct``
    configs are drawn zipfian with exponent ``zipf_s`` (rank ``k`` has
    weight ``1 / (k+1)**zipf_s``): small ``distinct`` / large ``zipf_s``
    concentrates traffic and stresses dedup, the opposite stresses
    batching and the engine.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    requests: int = 200
    rate: float = 200.0
    burst: int = 8
    workload: str = "sort"
    distinct: int = 8
    zipf_s: float = 1.1
    n_base: int = 256
    counting: bool = True
    seed: int = 0
    timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.distinct < 1:
            raise ValueError(f"distinct must be >= 1, got {self.distinct}")


def _query_pool(cfg: BenchConfig) -> list:
    """The ``distinct`` queries traffic is drawn from (rank 0 hottest)."""
    pool = []
    for rank in range(cfg.distinct):
        query: dict = {
            "workload": cfg.workload,
            "n": cfg.n_base * (rank + 1),
            "seed": cfg.seed,
        }
        if cfg.counting:
            query["counting"] = True
        pool.append(query)
    return pool


def _zipf_picker(cfg: BenchConfig, rng: random.Random):
    """Sample ranks 0..distinct-1 with weight ``1/(rank+1)**zipf_s``."""
    weights = [1.0 / (rank + 1) ** cfg.zipf_s for rank in range(cfg.distinct)]
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)

    def pick() -> int:
        x = rng.random() * total
        for rank, edge in enumerate(cumulative):
            if x <= edge:
                return rank
        return cfg.distinct - 1  # pragma: no cover - float edge

    return pick


async def _fire(
    cfg: BenchConfig,
    query: dict,
    rank: int,
    latency_ms,
    responses,
    errors,
) -> None:
    start = time.perf_counter()
    try:
        resp = await arequest(
            cfg.host, cfg.port, "POST", "/evaluate", query, timeout=cfg.timeout
        )
    except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
        errors.inc()
        return
    latency_ms.labels(rank=str(rank)).observe((time.perf_counter() - start) * 1e3)
    responses.labels(status=str(resp.status)).inc()


async def _generate(cfg: BenchConfig, registry: MetricsRegistry) -> dict:
    rng = random.Random(cfg.seed)
    pool = _query_pool(cfg)
    pick = _zipf_picker(cfg, rng)
    latency_ms = registry.histogram(
        "bench_latency_ms", "request wall time by config rank", labels=("rank",)
    )
    responses = registry.counter(
        "bench_responses_total", "responses by status", labels=("status",)
    )
    errors = registry.counter(
        "bench_transport_errors_total", "requests that never got a response"
    )

    tasks = []
    sent = 0
    t_start = time.perf_counter()
    while sent < cfg.requests:
        take = min(cfg.burst, cfg.requests - sent)
        for _ in range(take):
            rank = pick()
            tasks.append(
                asyncio.ensure_future(
                    _fire(cfg, pool[rank], rank, latency_ms, responses, errors)
                )
            )
        sent += take
        if sent < cfg.requests:
            # Open loop: the clock keeps ticking whether or not responses
            # came back. Mean gap = burst/rate => mean rate = cfg.rate.
            await asyncio.sleep(rng.expovariate(cfg.rate / cfg.burst))
    await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - t_start

    # One merged latency distribution across ranks for the headline view.
    merged = registry.histogram("bench_latency_all_ms", "request wall time, all ranks")
    for _labels, hist in latency_ms.series():
        for value in hist.values:
            merged.observe(value)

    stats = await _server_stats(cfg)
    return _report(cfg, registry, sent, wall_s, stats)


async def _server_stats(cfg: BenchConfig) -> Optional[dict]:
    try:
        resp = await arequest(
            cfg.host, cfg.port, "GET", "/stats", timeout=cfg.timeout
        )
        return resp.json() if resp.status == 200 else None
    except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
        return None


def _report(
    cfg: BenchConfig,
    registry: MetricsRegistry,
    sent: int,
    wall_s: float,
    stats: Optional[dict],
) -> dict:
    responses = registry.get("bench_responses_total")
    statuses = {
        labels["status"]: counter.as_value()
        for labels, counter in responses.series()
    } if responses is not None else {}
    completed = int(sum(statuses.values()))
    merged = registry.get("bench_latency_all_ms")
    latency = (
        merged.labels().summary(_PERCENTILES)
        if merged is not None
        else {"count": 0}
    )
    report: dict[str, Any] = {
        "config": asdict(cfg),
        "sent": sent,
        "completed": completed,
        "errors": sent - completed,
        "statuses": statuses,
        "wall_s": wall_s,
        "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
        "latency_ms": latency,
        "metrics": registry.collect(),
    }
    if stats is not None:
        requests = stats.get("requests", {})
        engine = stats.get("engine") or {}
        cache = stats.get("cache") or {}
        dedup_hits = requests.get("dedup_hits", 0)
        unique = engine.get("measurements", 0)
        lookups = (cache.get("hits", 0) or 0) + (cache.get("misses", 0) or 0)
        report["server"] = {
            "dedup_hits": dedup_hits,
            "dedup_hit_rate": dedup_hits / max(1, dedup_hits + unique),
            "batches": requests.get("batches", 0),
            "mean_batch_size": (
                unique / requests.get("batches") if requests.get("batches") else 0.0
            ),
            "engine": engine,
            "cache_hit_rate": (cache.get("hits", 0) / lookups) if lookups else None,
            "cache": cache or None,
        }
    return report


def run_bench(
    config: Optional[BenchConfig] = None,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Run one load-generation pass; returns the JSON-able report."""
    cfg = config if config is not None else BenchConfig()
    return asyncio.run(_generate(cfg, registry or MetricsRegistry()))


def render_report(report: dict) -> str:
    """The human-readable summary `repro-aem serve-bench` prints."""
    lat = report["latency_ms"]
    lines = [
        f"serve-bench: {report['sent']} sent, {report['completed']} completed, "
        f"{report['errors']} transport error(s) in {report['wall_s']:.2f}s "
        f"({report['throughput_rps']:.1f} req/s)",
        "  statuses: "
        + (
            ", ".join(f"{s}: {int(n)}" for s, n in sorted(report["statuses"].items()))
            or "none"
        ),
        (
            f"  latency ms: p50={lat.get('p50', 0):.2f} p95={lat.get('p95', 0):.2f} "
            f"p99={lat.get('p99', 0):.2f} max={lat.get('max', 0):.2f} "
            f"(n={lat.get('count', 0)})"
        ),
    ]
    server = report.get("server")
    if server:
        lines.append(
            f"  dedup: {server['dedup_hits']} hit(s), "
            f"hit-rate {server['dedup_hit_rate']:.1%}; "
            f"{server['batches']} batch(es), "
            f"mean size {server['mean_batch_size']:.2f}"
        )
        engine = server.get("engine") or {}
        cache_rate = server.get("cache_hit_rate")
        cache_bit = (
            f", cache hit-rate {cache_rate:.1%}" if cache_rate is not None else ""
        )
        lines.append(
            f"  engine: {engine.get('executed', 0)} executed, "
            f"{engine.get('cache_hits', 0)} cache hit(s){cache_bit}"
        )
    return "\n".join(lines)
