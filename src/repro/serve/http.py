"""Minimal HTTP/1.1 plumbing for the cost-oracle server and its clients.

Hand-rolled on purpose: the serving layer is stdlib-only (asyncio streams
on the server, a blocking socket client for tests/CI, an asyncio client
for the load generator), and the protocol surface it needs is tiny —
request line, headers, ``Content-Length`` bodies, JSON payloads, one
response per connection (``Connection: close``). Anything outside that
subset raises :class:`ProtocolError`, which the server maps to 400.
"""

from __future__ import annotations

import asyncio
import json
import socket
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

#: Upper bound on accepted request bodies (a query batch is small; this
#: is a backstop against a client streaming garbage at the server).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ValueError):
    """A request outside the supported HTTP subset."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON; :class:`ProtocolError` on garbage."""
        if not self.body:
            raise ProtocolError("expected a JSON body")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from None


@dataclass
class Response:
    """One parsed HTTP response (the client half)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        return json.loads(self.body) if self.body else None


def _parse_head(head: bytes, *, response: bool) -> tuple[list[str], dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"undecodable header block: {exc}") from None
    lines = text.split("\r\n")
    first = lines[0].split(" ", 2)
    if len(first) != 3:
        kind = "status line" if response else "request line"
        raise ProtocolError(f"malformed {kind}: {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return first, headers


def _content_length(headers: Mapping[str, str]) -> int:
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {raw!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"Content-Length out of range: {length}")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding is not supported")
    return length


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request from a stream; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` on anything outside the supported
    subset (the server answers 400 and closes).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-headers") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("header block too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("header block too large")
    (method, path, version), headers = _parse_head(head[:-4], response=False)
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported HTTP version: {version!r}")
    length = _content_length(headers)
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    payload: Any = None,
    *,
    headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Serialize one ``Connection: close`` response.

    A ``str`` payload ships verbatim as ``text/plain`` (the Prometheus
    exposition path); anything else serializes as JSON. A
    ``content-type`` entry in ``headers`` replaces the default rather
    than emitting a duplicate header line.
    """
    extra = {str(k).lower(): str(v) for k, v in (headers or {}).items()}
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; charset=utf-8"
    else:
        body = b""
        if payload is not None:
            body = json.dumps(
                payload, sort_keys=True, default=_json_default
            ).encode()
        content_type = "application/json"
    content_type = extra.pop("content-type", content_type)
    lines = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
        f"content-type: {content_type}",
        f"content-length: {len(body)}",
        "connection: close",
    ]
    for name, value in extra.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_default(obj: Any) -> Any:
    as_dict = getattr(obj, "as_dict", None)
    if callable(as_dict):
        return as_dict()
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        return item()
    return repr(obj)


def _request_bytes(
    method: str, path: str, host: str, payload: Any = None
) -> bytes:
    body = b""
    if payload is not None:
        body = json.dumps(payload, sort_keys=True).encode()
    lines = [
        f"{method.upper()} {path} HTTP/1.1",
        f"host: {host}",
        "content-type: application/json",
        f"content-length: {len(body)}",
        "connection: close",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _parse_response(raw: bytes) -> Response:
    head, sep, rest = raw.partition(b"\r\n\r\n")
    if not sep:
        raise ProtocolError("response missing header terminator")
    (_version, status, _text), headers = _parse_head(head, response=True)
    try:
        code = int(status)
    except ValueError:
        raise ProtocolError(f"bad status code: {status!r}") from None
    length = _content_length(headers)
    if "content-length" in headers:
        # Trust the declared framing — including an explicit 0, which
        # must yield an *empty* body, not fall back to the whole buffer.
        body = rest[:length]
    else:
        # No Content-Length: read-to-EOF framing (Connection: close).
        body = rest
    return Response(status=code, headers=headers, body=body)


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    *,
    timeout: float = 30.0,
) -> Response:
    """Blocking one-shot HTTP exchange (tests, the CI smoke, simple tools)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(_request_bytes(method, path, host, payload))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return _parse_response(b"".join(chunks))


async def arequest(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    *,
    timeout: float = 30.0,
) -> Response:
    """Async one-shot HTTP exchange (the load generator's primitive)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(_request_bytes(method, path, host, payload))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    return _parse_response(raw)
