"""``repro.serve`` — the cost-oracle serving layer.

A stdlib-only asyncio HTTP/JSON server that answers AEM cost queries by
routing them through :mod:`repro.api` into the shared
:class:`~repro.engine.core.SweepEngine` — with request batching,
content-addressed deduplication, and bounded-queue backpressure. See
:mod:`repro.serve.server` for the serving semantics, ``docs/serving.md``
for the operational story, and `repro-aem serve` / `serve-bench` for the
CLI entry points.
"""

from .bench import BenchConfig, render_report, run_bench
from .http import ProtocolError, Request, Response, arequest, request
from .server import SERVE_PID, CostServer, ServeConfig
from .testing import ServerThread

__all__ = [
    "BenchConfig",
    "CostServer",
    "ProtocolError",
    "Request",
    "Response",
    "SERVE_PID",
    "ServeConfig",
    "ServerThread",
    "arequest",
    "render_report",
    "request",
    "run_bench",
]
