"""The AEM cost-oracle server: async serving over :mod:`repro.api`.

One :class:`CostServer` owns a :class:`~repro.engine.core.SweepEngine`
and answers HTTP/JSON cost queries by routing them through the
:mod:`repro.api` facade — never by constructing machines itself (lint
rule AEM108 enforces that structurally). Three serving mechanisms sit
between the socket and the engine:

* **batching** — admitted queries buffer for a ``batch_window``-second
  coalescing window (up to ``max_batch``) and dispatch as *one*
  :func:`repro.api.sweep` call, so a burst of arrivals costs one pass
  over the engine instead of one engine entry per request;
* **deduplication** — queries are identified by
  :func:`repro.api.query_key` (the same content hash the result cache
  files measurements under). A query identical to one already in flight
  shares its future and is never admitted twice; completed queries hit
  the engine's content-addressed :class:`~repro.engine.cache.ResultCache`
  when caching is enabled;
* **backpressure** — at most ``max_pending`` unique queries may be in
  flight; past that the server answers ``429`` with a ``Retry-After``
  header instead of queueing without bound. Each request also carries a
  ``request_timeout`` after which *it* gives up (``504``) while the
  shared evaluation keeps running for whoever else wants it.

Shutdown is a graceful drain: stop accepting, finish every admitted
query, answer every open connection, then flush telemetry (a Perfetto
trace of the serving pipeline — admission → batch window → engine →
respond spans per request — plus a manifest record) and release the
engine. ``repro-aem serve`` wires SIGINT/SIGTERM to that drain.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from .. import api
from ..engine.cache import ResultCache, default_cache_dir
from ..engine.core import SweepEngine
from ..telemetry import (
    ChromeTraceBuilder,
    EngineTelemetry,
    MetricsRegistry,
    SpanCollector,
    SpanContext,
    render_machine_segments,
    set_collector,
)
from ..telemetry.spans import FLOW_CAT, FLOW_NAME
from .http import ProtocolError, Request, read_request, response_bytes

#: pid for serving-pipeline tracks in exported traces (machine tracks use
#: pid 1, engine worker lanes pid 2; see repro.telemetry.perfetto).
SERVE_PID = 3

#: Request spans rotate over this many trace lanes (tids) so a long run
#: stays viewable; lanes are reused, spans never nest across requests.
TRACE_LANES = 32

_STOP = object()


@dataclass(frozen=True)
class ServeConfig:
    """Everything the cost-oracle server needs to run.

    Attributes
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read it back
        from :attr:`CostServer.port` — the test harness does).
    batch_window:
        Seconds an admitted query waits for companions before its batch
        dispatches. ``0`` still coalesces whatever is already queued.
    max_batch:
        Hard cap on queries per engine dispatch.
    max_pending:
        Bound on unique in-flight queries; beyond it new work gets 429.
    request_timeout:
        Per-request seconds before the *request* gives up with 504 (the
        shared evaluation keeps running for its other waiters).
    retry_after:
        Seconds advertised in the 429 ``Retry-After`` header.
    jobs, cache, cache_dir, counting:
        The engine policy, same meaning as
        :class:`~repro.engine.config.ExperimentConfig`: worker fan-out,
        the shared on-disk result cache, and whether queries default to
        payload-free counting machines (a query's explicit ``counting``
        field always wins).
    telemetry_dir:
        When set, shutdown writes ``trace.json`` — the serving pipeline,
        the engine's task lanes, and every machine run's phase spans as
        one flow-linked Perfetto trace — and appends a manifest record
        (including the served trace ids) there.
    """

    host: str = "127.0.0.1"
    port: int = 8177
    batch_window: float = 0.010
    max_batch: int = 64
    max_pending: int = 256
    request_timeout: float = 60.0
    retry_after: float = 1.0
    jobs: int = 1
    cache: bool = False
    cache_dir: str = field(default_factory=default_cache_dir)
    counting: bool = False
    telemetry_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


class _Task:
    """One unique in-flight query: its future plus pipeline timestamps.

    Each task mints one root :class:`SpanContext` at admission — the
    trace identity every downstream layer (engine task lane, machine
    phase segments) links back to, and the id the ``/evaluate`` response
    hands the caller.
    """

    __slots__ = (
        "key", "query", "future", "lane", "span",
        "t_admit", "t_dispatch", "t_engine_start", "t_engine_end",
    )

    def __init__(self, key: str, query: dict, future: "asyncio.Future", lane: int):
        self.key = key
        self.query = query
        self.future = future
        self.lane = lane
        self.span = SpanContext.root()
        self.t_admit = 0.0
        self.t_dispatch = 0.0
        self.t_engine_start = 0.0
        self.t_engine_end = 0.0


class CostServer:
    """The asyncio cost-oracle server; see the module docstring.

    Lifecycle: ``await start()`` binds the socket and spawns the batcher;
    ``await wait_closed()`` parks until a drain completes; ``await
    shutdown()`` drains. The CLI (`repro-aem serve`) and the test/CI
    harness (:class:`repro.serve.testing.ServerThread`) both drive
    exactly this surface.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "serve_requests_total", "requests by endpoint and status",
            labels=("endpoint", "status"),
        )
        self._dedup_hits = self.metrics.counter(
            "serve_dedup_hits_total",
            "queries answered by piggybacking on an identical in-flight one",
        )
        self._rejected = self.metrics.counter(
            "serve_rejected_total", "queries refused with 429 (backpressure)"
        )
        self._batches = self.metrics.counter(
            "serve_batches_total", "engine dispatches (coalesced batches)"
        )
        self._batch_size = self.metrics.histogram(
            "serve_batch_size", "unique queries per engine dispatch"
        )
        self._latency_ms = self.metrics.histogram(
            "serve_latency_ms", "request wall time, admission to response"
        )
        self._inflight_gauge = self.metrics.gauge(
            "serve_inflight", "unique queries currently in flight"
        )
        self.engine: Optional[SweepEngine] = None
        self._tracer: Optional[ChromeTraceBuilder] = None
        self._engine_tel: Optional[EngineTelemetry] = None
        self._collector: Optional[SpanCollector] = None
        self._trace_ids: list[str] = []
        self._flow_started: set[str] = set()
        self._t0 = 0.0
        self._seq = 0
        self._lanes_named: set[int] = set()
        self._inflight: dict[str, _Task] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._handlers: set[asyncio.Task] = set()
        self._draining = False
        self._closed = asyncio.Event()
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        cfg = self.config
        cache = ResultCache(cfg.cache_dir) if cfg.cache else None
        self.engine = SweepEngine(jobs=cfg.jobs, cache=cache, counting=False)
        self._t0 = time.perf_counter()
        self._started_at = time.time()
        if cfg.telemetry_dir:
            self._tracer = ChromeTraceBuilder()
            self._tracer.process_name(SERVE_PID, "cost-oracle serving pipeline")
            # Engine task lanes and machine segments share the server's
            # trace clock: telemetry t0 is re-anchored to _t0, and the
            # ambient collector catches every SpanPhaseRecorder export
            # (worker-side segments included; the engine ships them back).
            self._engine_tel = EngineTelemetry()
            self._engine_tel.t0 = self._t0
            self.engine.telemetry = self._engine_tel
            self._collector = SpanCollector()
            set_collector(self._collector)
        self._batcher = asyncio.ensure_future(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real ephemeral one)."""
        assert self._port is not None, "server not started"
        return self._port

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Graceful drain; see the module docstring. Idempotent."""
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The batcher finishes everything admitted before the sentinel.
        await self._queue.put(_STOP)
        if self._batcher is not None:
            await self._batcher
        # Answer every connection still writing its response.
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        self._flush_telemetry()
        if self._collector is not None:
            set_collector(None)
            self._collector = None
        if self.engine is not None:
            self.engine.close()
        self._closed.set()

    def _flush_telemetry(self) -> None:
        cfg = self.config
        if not cfg.telemetry_dir:
            return
        from ..telemetry import append_record, run_record

        if self._tracer is not None:
            if self._engine_tel is not None and self._engine_tel.spans:
                self._engine_tel.to_trace(self._tracer)
            if self._collector is not None and len(self._collector):
                render_machine_segments(
                    self._tracer, self._collector.export(), t0=self._t0
                )
            self._tracer.write(Path(cfg.telemetry_dir) / "trace.json")
        append_record(
            cfg.telemetry_dir,
            run_record(
                "serve",
                config={
                    "host": cfg.host,
                    "port": cfg.port,
                    "batch_window": cfg.batch_window,
                    "max_batch": cfg.max_batch,
                    "max_pending": cfg.max_pending,
                    "jobs": cfg.jobs,
                    "cache": cfg.cache,
                    "counting": cfg.counting,
                },
                wall_s=time.perf_counter() - self._t0,
                engine=self.engine.stats.as_dict() if self.engine else None,
                metrics=self.metrics.collect(),
                extra={
                    "traces": {
                        "count": len(self._trace_ids),
                        "trace_ids": self._trace_ids,
                    }
                },
            ),
        )

    # ------------------------------------------------------------------
    # Admission + batching.
    # ------------------------------------------------------------------
    def _default_query(self, query: Mapping[str, Any]) -> dict:
        """Apply server-level execution defaults a query didn't spell out."""
        q = dict(query)
        if self.config.counting and "counting" not in q:
            q["counting"] = True
        return q

    def _admit(self, query: Mapping[str, Any]) -> _Task:
        """Register one query; dedups against in-flight identical ones.

        Raises :class:`api.QueryError` on a bad query. The caller checks
        capacity *before* calling (so multi-query requests are all-or-
        nothing) — this only ever grows ``_inflight`` by one.
        """
        q = self._default_query(query)
        key = api.query_key(q)
        existing = self._inflight.get(key)
        if existing is not None:
            self._dedup_hits.inc()
            return existing
        task = _Task(
            key, q, asyncio.get_running_loop().create_future(),
            lane=self._next_lane(),
        )
        task.t_admit = self._now()
        # A timed-out request may abandon the future; the exception is
        # still "retrieved" so the loop never logs it as unconsumed.
        task.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = task
        self._inflight_gauge.set(len(self._inflight))
        if self.config.telemetry_dir:
            self._trace_ids.append(task.span.trace_id)
        self._queue.put_nowait(task)
        return task

    def _new_unique_count(self, queries: list) -> int:
        """How many of these queries would occupy new in-flight slots."""
        keys = set()
        for q in queries:
            keys.add(api.query_key(self._default_query(q)))
        return len(keys - set(self._inflight))

    async def _batch_loop(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            task = await self._queue.get()
            if task is _STOP:
                break
            batch = [task]
            deadline = loop.time() + cfg.batch_window
            while len(batch) < cfg.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        loop = asyncio.get_running_loop()
        now = self._now()
        for task in batch:
            task.t_dispatch = now
        self._batches.inc()
        self._batch_size.observe(len(batch))
        queries = [task.query for task in batch]
        spans = [task.span for task in batch]
        engine = self.engine
        try:
            results = await loop.run_in_executor(
                None, lambda: api.sweep(queries, engine=engine, spans=spans)
            )
        except Exception as exc:
            done = self._now()
            for task in batch:
                task.t_engine_start, task.t_engine_end = now, done
                if not task.future.done():
                    task.future.set_exception(exc)
        else:
            done = self._now()
            for task, result in zip(batch, results):
                task.t_engine_start, task.t_engine_end = now, done
                if not task.future.done():
                    task.future.set_result(result)
        finally:
            for task in batch:
                self._inflight.pop(task.key, None)
            self._inflight_gauge.set(len(self._inflight))

    # ------------------------------------------------------------------
    # HTTP surface.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        handler = asyncio.current_task()
        if handler is not None:
            self._handlers.add(handler)
        try:
            try:
                req = await asyncio.wait_for(
                    read_request(reader), self.config.request_timeout
                )
            except (ProtocolError, asyncio.TimeoutError) as exc:
                status = 408 if isinstance(exc, asyncio.TimeoutError) else 400
                writer.write(response_bytes(status, {"error": str(exc) or "timeout"}))
                await writer.drain()
                return
            if req is None:
                return
            status, payload, headers = await self._dispatch(req)
            endpoint = req.path.partition("?")[0]
            self._requests.labels(endpoint=endpoint, status=str(status)).inc()
            writer.write(response_bytes(status, payload, headers=headers))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-response; nothing to answer
        finally:
            if handler is not None:
                self._handlers.discard(handler)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, req: Request) -> tuple[int, Any, Optional[dict]]:
        path, _, query_string = req.path.partition("?")
        route = (req.method, path)
        if route == ("GET", "/healthz"):
            return 200, {"ok": True, "draining": self._draining}, None
        if route == ("GET", "/metrics"):
            return self._metrics_response(req, query_string)
        if route == ("GET", "/stats"):
            return 200, self.stats(), None
        if route == ("GET", "/workloads"):
            return 200, api.describe_workloads(), None
        if route == ("POST", "/evaluate"):
            return await self._evaluate(req)
        if path in ("/healthz", "/metrics", "/stats", "/workloads", "/evaluate"):
            return 405, {"error": f"method {req.method} not allowed on {path}"}, None
        return 404, {"error": f"no route {req.method} {path}"}, None

    def _metrics_response(
        self, req: Request, query_string: str
    ) -> tuple[int, Any, Optional[dict]]:
        """`/metrics` content negotiation: JSON (default) or Prometheus text.

        ``?format=prometheus|text`` wins; otherwise an ``Accept`` header
        naming ``text/plain`` (and not JSON first) selects the text
        exposition. ``?format=json`` forces JSON regardless of Accept.
        """
        from urllib.parse import parse_qs

        fmt = (parse_qs(query_string).get("format") or [""])[0].lower()
        if fmt in ("prometheus", "text"):
            want_text = True
        elif fmt == "json":
            want_text = False
        elif fmt:
            return 400, {"error": f"unknown metrics format {fmt!r}"}, None
        else:
            accept = req.headers.get("accept", "")
            want_text = "text/plain" in accept and "application/json" not in accept
        if want_text:
            return 200, self.metrics.render_prometheus(), None
        return 200, self.metrics.collect(), None

    async def _evaluate(self, req: Request) -> tuple[int, Any, Optional[dict]]:
        t_arrive = self._now()
        try:
            payload = req.json()
        except ProtocolError as exc:
            return 400, {"error": str(exc)}, None
        batched = isinstance(payload, Mapping) and "queries" in payload
        if batched:
            queries = payload["queries"]
            if not isinstance(queries, list) or not queries:
                return 400, {"error": "'queries' must be a non-empty list"}, None
        else:
            queries = [payload]
        if self._draining:
            return 503, {"error": "server is draining"}, None
        try:
            new_slots = self._new_unique_count(queries)
        except api.QueryError as exc:
            return 400, {"error": str(exc)}, None
        if len(self._inflight) + new_slots > self.config.max_pending:
            self._rejected.inc()
            return (
                429,
                {
                    "error": "admission queue is full",
                    "pending": len(self._inflight),
                    "max_pending": self.config.max_pending,
                },
                {"retry-after": f"{self.config.retry_after:g}"},
            )
        tasks = [self._admit(q) for q in queries]
        try:
            results = await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(t.future) for t in tasks)),
                self.config.request_timeout,
            )
        except asyncio.TimeoutError:
            return 504, {"error": "evaluation timed out"}, None
        except api.QueryError as exc:
            return 400, {"error": str(exc)}, None
        except Exception as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        t_done = self._now()
        self._latency_ms.observe((t_done - t_arrive) / 1000.0)
        for task in tasks:
            self._trace_request(task, t_arrive, t_done)
        records = [dict(r) for r in results]
        keys = [t.key for t in tasks]
        if batched:
            return 200, {
                "results": records,
                "keys": keys,
                "spans": [t.span.as_dict() for t in tasks],
            }, None
        return 200, {
            "result": records[0],
            "key": keys[0],
            "span": tasks[0].span.as_dict(),
        }, None

    # ------------------------------------------------------------------
    # Introspection + tracing.
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The `/stats` payload: serving counters + engine/cache stats."""
        engine = self.engine
        cache = engine.cache if engine is not None else None
        return {
            "uptime_s": time.perf_counter() - self._t0,
            "draining": self._draining,
            "inflight": len(self._inflight),
            "requests": {
                "dedup_hits": self._dedup_hits.labels().as_value(),
                "rejected": self._rejected.labels().as_value(),
                "batches": self._batches.labels().as_value(),
                "batch_size": self._batch_size.labels().summary((0.5, 0.95, 0.99)),
                "latency_ms": self._latency_ms.labels().summary((0.5, 0.95, 0.99)),
            },
            "engine": engine.stats.as_dict() if engine is not None else None,
            "cache": cache.stats.as_dict() if cache is not None else None,
        }

    def _now(self) -> float:
        """Wall microseconds since server start (the trace clock)."""
        return (time.perf_counter() - self._t0) * 1e6

    def _next_lane(self) -> int:
        self._seq += 1
        return (self._seq - 1) % TRACE_LANES + 1

    def _trace_request(self, task: _Task, t_arrive: float, t_done: float) -> None:
        """Emit the admission → batch window → engine → respond spans."""
        if self._tracer is None:
            return
        tid = task.lane
        if tid not in self._lanes_named:
            self._tracer.thread_name(SERVE_PID, tid, f"request lane {tid}")
            self._lanes_named.add(tid)
        spans = (
            ("admission", t_arrive, task.t_admit or task.t_dispatch),
            ("batch window", task.t_admit or t_arrive, task.t_dispatch),
            ("engine", task.t_engine_start, task.t_engine_end),
            ("respond", task.t_engine_end, t_done),
        )
        for name, start, end in spans:
            if end >= start:
                self._tracer.complete(
                    name, start, end - start, pid=SERVE_PID, tid=tid,
                    cat="serve", args={
                        "key": task.key[:16],
                        "trace_id": task.span.trace_id,
                        "span_id": task.span.span_id,
                    },
                )
        # Flow origin: the 's' arrow leaves this lane's "engine" span and
        # lands on the engine-task 't', then the machine segment's 'f'.
        # Dedup-shared tasks reach here once per waiting request; a flow
        # id must open exactly once.
        flow_id = task.span.flow_id
        if flow_id not in self._flow_started:
            self._flow_started.add(flow_id)
            self._tracer.flow_start(
                FLOW_NAME, task.t_engine_start, id=flow_id,
                pid=SERVE_PID, tid=tid, cat=FLOW_CAT,
            )
