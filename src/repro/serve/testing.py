"""In-process server harness for tests, the CI smoke, and `serve-bench`.

:class:`ServerThread` runs a :class:`~repro.serve.server.CostServer` on a
background thread with its own event loop, exposes the bound port (so
``port=0`` ephemeral binding works), and drains it on exit — the same
graceful-shutdown path production uses, exercised on every test run.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from .http import Response, request
from .server import CostServer, ServeConfig


class ServerThread:
    """A live cost-oracle server on a background thread.

    Usage::

        with ServerThread(ServeConfig(port=0, counting=True)) as srv:
            resp = srv.post("/evaluate", {"workload": "sort", "n": 512})

    Entering the context blocks until the socket is bound; exiting drains
    the server (finishing in-flight queries) and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config if config is not None else ServeConfig(port=0)
        self.server: Optional[CostServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="cost-oracle-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is None or self.server is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
            future.result(timeout=60)
        except RuntimeError:
            pass  # loop already closed: the server finished on its own
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = CostServer(self.config)
        try:
            await self.server.start()
        except BaseException as exc:  # surface bind errors to the caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_closed()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Convenience client.
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self.server is not None, "server not started"
        return self.server.port

    def get(self, path: str, *, timeout: float = 30.0) -> Response:
        return request(self.host, self.port, "GET", path, timeout=timeout)

    def post(self, path: str, payload: Any, *, timeout: float = 30.0) -> Response:
        return request(self.host, self.port, "POST", path, payload, timeout=timeout)
