"""Command-line interface.

Regenerate any experiment, run individual algorithms with cost readouts,
or print the bound formulas for a parameter point::

    repro-aem exp e1                  # one experiment (quick mode)
    repro-aem exp all --full          # the whole suite, full-size sweeps
    repro-aem exp all --jobs 4        # fan sweeps out over 4 processes
    repro-aem sort --sorter aem_mergesort --n 8000 --m 128 --b 16 --omega 8
    repro-aem permute --permuter adaptive --n 4096 --m 64 --b 8 --omega 4
    repro-aem spmxv --algorithm sort_based --n 1024 --delta 4
    repro-aem bounds --n 65536 --m 256 --b 16 --omega 8

``exp``/``sort``/``permute``/``spmxv`` accept ``--json`` to emit
machine-readable records on stdout instead of rendered tables, and the
algorithm runners accept ``--progress`` for a live I/O/phase readout on
stderr (a :class:`~repro.observe.ProgressObserver` on the machine's event
bus).

``exp`` runs execute on the sweep engine (:mod:`repro.engine`):
``--jobs N`` fans measurements out over N worker processes with the record
stream identical to a serial run, and measurements are memoized under
``.repro-cache/`` (``--cache-dir`` to relocate, ``--no-cache`` to disable)
so a repeated or killed-and-restarted run replays completed measurements
instantly. Engine statistics (executed / cache hits / misses) are printed
to stderr after the run.
"""

from __future__ import annotations

import argparse
import json
import sys

from .core.bounds import (
    permute_lower_shape,
    permute_naive_shape,
    sort_upper_shape,
)
from .core.counting import (
    counting_lower_bound,
    counting_lower_bound_general,
    simplified_cost_bound,
)
from .core.params import AEMParams
from .core.regimes import boundary_B, classify, min_branch
from .engine import ExperimentConfig, default_cache_dir, use_engine
from .experiments import REGISTRY, run_all, run_experiment
from .experiments.common import measure_permute, measure_sort, measure_spmxv
from .permute.base import PERMUTERS
from .sorting.base import SORTERS


def _params(args) -> AEMParams:
    return AEMParams(M=args.m, B=args.b, omega=args.omega)


def _add_machine_args(sub) -> None:
    sub.add_argument("--m", type=int, default=128, help="internal memory M (atoms)")
    sub.add_argument("--b", type=int, default=16, help="block size B (atoms)")
    sub.add_argument("--omega", type=float, default=8, help="write/read cost ratio")
    sub.add_argument("--seed", type=int, default=0)


def _add_run_args(sub) -> None:
    """Flags shared by the algorithm runners (sort/permute/spmxv)."""
    sub.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON record on stdout instead of the rendered readout",
    )
    sub.add_argument(
        "--progress",
        action="store_true",
        help="live I/O/phase readout on stderr while the run executes",
    )


def _json_default(obj):
    """Coerce numpy scalars/arrays so experiment records serialize."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def _emit_json(payload) -> None:
    print(json.dumps(payload, default=_json_default, sort_keys=True))


def _run_observers(args) -> list:
    """Observers requested on the command line (``--progress``)."""
    if not getattr(args, "progress", False):
        return []
    from .observe import ProgressObserver

    return [ProgressObserver(every=200, label=args.command)]


def _close_observers(observers) -> None:
    for obs in observers:
        close = getattr(obs, "close", None)
        if close is not None:
            close()


def cmd_exp(args) -> int:
    config = ExperimentConfig(
        budget="full" if args.full else "quick",
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
    )
    engine = config.make_engine()
    with use_engine(engine):
        if args.id.lower() == "all":
            results = run_all(config)
        else:
            results = [run_experiment(args.id, config)]
    failed = sum(0 if r.passed else 1 for r in results)
    if args.json:
        _emit_json(
            [
                {
                    "eid": r.eid,
                    "title": r.title,
                    "claim": r.claim,
                    "records": r.records,
                    "checks": r.checks,
                    "passed": r.passed,
                    "notes": r.notes,
                }
                for r in results
            ]
        )
    else:
        for r in results:
            print(r.render())
            print()
    engine.report()
    if failed:
        print(f"{failed} experiment(s) had failing checks", file=sys.stderr)
    return 1 if failed else 0


def cmd_sort(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    rec = measure_sort(
        args.sorter,
        args.n,
        p,
        distribution=args.distribution,
        seed=args.seed,
        observers=observers,
    )
    _close_observers(observers)
    if args.json:
        _emit_json(
            {
                "command": "sort",
                "sorter": args.sorter,
                "n": args.n,
                "distribution": args.distribution,
                "seed": args.seed,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                "shape_upper": sort_upper_shape(args.n, p),
                **rec,
            }
        )
        return 0
    print(f"{args.sorter} on N={args.n} {args.distribution} keys, {p.describe()}")
    print(
        f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}  "
        f"T={rec['T']}  peak-mem={rec['peak_mem']}"
    )
    print(f"  shape omega*n*log_(omega m) n = {sort_upper_shape(args.n, p):g}")
    return 0


def cmd_permute(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    rec = measure_permute(
        args.permuter,
        args.n,
        p,
        family=args.family,
        seed=args.seed,
        observers=observers,
    )
    _close_observers(observers)
    if args.json:
        _emit_json(
            {
                "command": "permute",
                "permuter": args.permuter,
                "n": args.n,
                "family": args.family,
                "seed": args.seed,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                "shape_naive": permute_naive_shape(args.n, p),
                "shape_sort": sort_upper_shape(args.n, p),
                "lower_bound_general": counting_lower_bound_general(args.n, p),
                **rec,
            }
        )
        return 0
    print(
        f"{args.permuter} permuting N={args.n} ({args.family}), {p.describe()}"
    )
    print(f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}")
    print(
        f"  upper shapes: naive={permute_naive_shape(args.n, p):g}  "
        f"sort={sort_upper_shape(args.n, p):g}"
    )
    print(f"  lower bound (general) = {counting_lower_bound_general(args.n, p):g}")
    return 0


def cmd_spmxv(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    rec = measure_spmxv(
        args.algorithm,
        args.n,
        args.delta,
        p,
        family=args.family,
        seed=args.seed,
        observers=observers,
    )
    _close_observers(observers)
    if args.json:
        _emit_json(
            {
                "command": "spmxv",
                "algorithm": args.algorithm,
                "n": args.n,
                "delta": args.delta,
                "family": args.family,
                "seed": args.seed,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                **rec,
            }
        )
        return 0
    print(
        f"spmxv {args.algorithm}: N={args.n}, delta={args.delta} "
        f"({args.family}), {p.describe()}"
    )
    print(f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}")
    return 0


def cmd_inspect(args) -> int:
    """Record a permuting program and render its trace."""
    import numpy as np

    from .atoms.atom import Atom
    from .permute.base import PERMUTERS
    from .trace.program import capture
    from .trace.render import render_program
    from .workloads.generators import permutation

    p = _params(args)
    rng = np.random.default_rng(args.seed)
    atoms = [
        Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * args.n, args.n))
    ]
    perm = permutation(args.n, args.family, rng)
    program = capture(p, atoms, PERMUTERS[args.permuter], perm, p)
    if args.round_based:
        from .rounds.convert import to_round_based

        program, report = to_round_based(program)
        print(
            f"(converted to round-based: {report.rounds} rounds, "
            f"cost ratio {report.cost_ratio:.2f})\n"
        )
    print(render_program(program, timeline_limit=args.ops))
    return 0


def cmd_bounds(args) -> int:
    p = _params(args)
    N = args.n
    cb = counting_lower_bound(N, p)
    print(f"Bounds for permuting/sorting N={N} on {p.describe()}:")
    print(f"  Theorem 4.5 shape  min{{N, w n log_wm n}} = {permute_lower_shape(N, p):g}")
    print(f"  exact counting bound (round-based): rounds >= {cb.rounds}, cost >= {cb.cost:g}")
    print(f"  exact counting bound (general programs): {counting_lower_bound_general(N, p):g}")
    print(f"  paper's simplified closed form: {simplified_cost_bound(N, p):g}")
    print(f"  upper bounds: naive permute = {permute_naive_shape(N, p):g}, "
          f"mergesort = {sort_upper_shape(N, p):g}")
    print(f"  regime: min takes the '{min_branch(N, p).value}' branch; "
          f"case analysis says '{classify(N, p).value}' "
          f"(boundary B* = {boundary_B(N, p):.1f}, actual B = {p.B})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-aem",
        description=(
            "Reproduction of 'Lower Bounds in the Asymmetric External "
            "Memory Model' (Jacob & Sitchinava, SPAA 2017)"
        ),
    )
    sub = ap.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("exp", help="run experiments (e1..e17, a1..a3, or 'all')")
    exp.add_argument("id", help=f"experiment id: {sorted(REGISTRY)} or 'all'")
    exp.add_argument("--full", action="store_true", help="full-size sweeps")
    exp.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment records as JSON instead of rendered tables",
    )
    exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep fan-out (default 1 = serial; "
        "records are identical either way)",
    )
    exp.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoize measurements on disk (--no-cache to disable)",
    )
    exp.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="measurement cache root (default: .repro-cache/ or "
        "$REPRO_CACHE_DIR)",
    )
    exp.set_defaults(fn=cmd_exp)

    srt = sub.add_parser("sort", help="run one sorter with cost readout")
    srt.add_argument("--sorter", choices=sorted(SORTERS), default="aem_mergesort")
    srt.add_argument("--n", type=int, default=8_000)
    srt.add_argument("--distribution", default="uniform")
    _add_machine_args(srt)
    _add_run_args(srt)
    srt.set_defaults(fn=cmd_sort)

    per = sub.add_parser("permute", help="run one permuter with cost readout")
    per.add_argument("--permuter", choices=sorted(PERMUTERS), default="adaptive")
    per.add_argument("--n", type=int, default=4_096)
    per.add_argument("--family", default="random")
    _add_machine_args(per)
    _add_run_args(per)
    per.set_defaults(fn=cmd_permute)

    sp = sub.add_parser("spmxv", help="run one SpMxV algorithm")
    sp.add_argument("--algorithm", choices=["naive", "sort_based"], default="sort_based")
    sp.add_argument("--n", type=int, default=1_024)
    sp.add_argument("--delta", type=int, default=4)
    sp.add_argument("--family", default="random")
    _add_machine_args(sp)
    _add_run_args(sp)
    sp.set_defaults(fn=cmd_spmxv)

    bd = sub.add_parser("bounds", help="print the bound formulas for a point")
    bd.add_argument("--n", type=int, default=65_536)
    _add_machine_args(bd)
    bd.set_defaults(fn=cmd_bounds)

    ins = sub.add_parser(
        "inspect", help="record a permuting program and render its trace"
    )
    ins.add_argument("--permuter", choices=sorted(PERMUTERS), default="naive")
    ins.add_argument("--n", type=int, default=512)
    ins.add_argument("--family", default="random")
    ins.add_argument("--ops", type=int, default=40, help="timeline ops to show")
    ins.add_argument(
        "--round-based",
        action="store_true",
        help="apply the Lemma 4.1 conversion before rendering",
    )
    _add_machine_args(ins)
    ins.set_defaults(fn=cmd_inspect)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
