"""Command-line interface.

Regenerate any experiment, run individual algorithms with cost readouts,
or print the bound formulas for a parameter point::

    repro-aem exp e1                  # one experiment (quick mode)
    repro-aem exp all --full          # the whole suite, full-size sweeps
    repro-aem exp all --jobs 4        # fan sweeps out over 4 processes
    repro-aem sort --sorter aem_mergesort --n 8000 --m 128 --b 16 --omega 8
    repro-aem permute --permuter adaptive --n 4096 --m 64 --b 8 --omega 4
    repro-aem spmxv --algorithm sort_based --n 1024 --delta 4
    repro-aem bounds --n 65536 --m 256 --b 16 --omega 8

``exp``/``sort``/``permute``/``spmxv`` accept ``--json`` to emit
machine-readable records on stdout instead of rendered tables, and the
algorithm runners accept ``--progress`` for a live I/O/phase readout on
stderr (a :class:`~repro.observe.ProgressObserver` on the machine's event
bus).

``exp`` runs execute on the sweep engine (:mod:`repro.engine`):
``--jobs N`` fans measurements out over N worker processes with the record
stream identical to a serial run, and measurements are memoized under
``.repro-cache/`` (``--cache-dir`` to relocate, ``--no-cache`` to disable)
so a repeated or killed-and-restarted run replays completed measurements
instantly. Engine statistics (executed / cache hits / misses) are printed
to stderr after the run.

``--telemetry-dir DIR`` (on ``exp`` and the algorithm runners) turns a
run into durable artifacts (:mod:`repro.telemetry`): one JSONL record
appended to ``DIR/manifest.jsonl`` (config, costs, wall time, engine
stats, package version) and a ``DIR/trace.json`` loadable in
``ui.perfetto.dev`` — machine phases as spans and I/O counter tracks for
the algorithm runners, engine worker-lane task spans for ``exp``.
``repro-aem bench`` runs the benchmark trajectory suite and gates wall
times against the committed baseline (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from .core.bounds import (
    permute_lower_shape,
    permute_naive_shape,
    sort_upper_shape,
)
from .core.counting import (
    counting_lower_bound,
    counting_lower_bound_general,
    simplified_cost_bound,
)
from .core.params import AEMParams
from .core.regimes import boundary_B, classify, min_branch
from .engine import ExperimentConfig, default_cache_dir, use_engine
from .experiments import REGISTRY, run_all, run_experiment
from .permute.base import PERMUTERS
from .sorting.base import SORTERS

from . import api


def _params(args) -> AEMParams:
    return AEMParams(M=args.m, B=args.b, omega=args.omega)


def _add_machine_args(sub) -> None:
    sub.add_argument("--m", type=int, default=128, help="internal memory M (atoms)")
    sub.add_argument("--b", type=int, default=16, help="block size B (atoms)")
    sub.add_argument("--omega", type=float, default=8, help="write/read cost ratio")
    sub.add_argument("--seed", type=int, default=0)


def _add_run_args(sub) -> None:
    """Flags shared by the algorithm runners (sort/permute/spmxv)."""
    sub.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON record on stdout instead of the rendered readout",
    )
    sub.add_argument(
        "--progress",
        action="store_true",
        help="live I/O/phase readout on stderr while the run executes",
    )
    sub.add_argument(
        "--counting",
        action="store_true",
        help="payload-free counting machine: identical costs, much faster "
        "simulation, no output verification",
    )
    _add_telemetry_arg(sub)


def _add_telemetry_arg(sub) -> None:
    sub.add_argument(
        "--telemetry-dir",
        default=None,
        help="append a run-manifest JSONL record and write a Perfetto "
        "trace.json under this directory",
    )


def _json_default(obj):
    """Coerce numpy scalars/arrays so experiment records serialize."""
    import numpy as np

    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def _emit_json(payload) -> None:
    print(json.dumps(payload, default=_json_default, sort_keys=True))


def _run_observers(args) -> list:
    """Observers requested on the command line (``--progress``)."""
    if not getattr(args, "progress", False):
        return []
    from .observe import ProgressObserver

    return [ProgressObserver(every=200, label=args.command)]


def _close_observers(observers) -> None:
    for obs in observers:
        close = getattr(obs, "close", None)
        if close is not None:
            close()


def _telemetry_observers(args) -> tuple[list, Optional[tuple]]:
    """``(observers, (metrics, perfetto))`` for a --telemetry-dir run."""
    if not getattr(args, "telemetry_dir", None):
        return [], None
    from .telemetry import MetricsObserver, PerfettoObserver

    metrics = MetricsObserver()
    perfetto = PerfettoObserver(label=args.command)
    return [metrics, perfetto], (metrics, perfetto)


def _finish_run_telemetry(args, tel, *, config: dict, cost, wall_s: float) -> None:
    """Write the trace.json and append the manifest record for one run."""
    if tel is None:
        return
    from .telemetry import append_record, run_record

    metrics, perfetto = tel
    perfetto.write(Path(args.telemetry_dir) / "trace.json")
    append_record(
        args.telemetry_dir,
        run_record(
            args.command,
            config=config,
            cost={**cost},
            wall_s=wall_s,
            metrics=metrics.summary(),
        ),
    )


def _engine_summary(engine) -> dict:
    """The engine's run statistics as one structured dict."""
    summary = {
        "jobs": engine.jobs,
        "cache_enabled": engine.cache is not None,
        **engine.stats.as_dict(),
    }
    if engine.telemetry is not None:
        summary["busy_s"] = engine.telemetry.busy_seconds()
        summary["utilization"] = engine.telemetry.utilization(engine.jobs)
    return summary


def cmd_exp(args) -> int:
    config = ExperimentConfig(
        budget="full" if args.full else "quick",
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
        counting=args.counting,
    )
    engine = config.make_engine()
    if args.telemetry_dir:
        from .telemetry import EngineTelemetry

        engine.telemetry = EngineTelemetry()
    t0 = time.perf_counter()
    with use_engine(engine):
        if args.id.lower() == "all":
            results = run_all(config)
        else:
            results = [run_experiment(args.id, config)]
    wall_s = time.perf_counter() - t0
    failed = sum(0 if r.passed else 1 for r in results)
    if args.json:
        _emit_json(
            {
                "results": [
                    {
                        "eid": r.eid,
                        "title": r.title,
                        "claim": r.claim,
                        "records": r.records,
                        "checks": r.checks,
                        "passed": r.passed,
                        "notes": r.notes,
                    }
                    for r in results
                ],
                "engine": _engine_summary(engine),
            }
        )
    else:
        for r in results:
            print(r.render())
            print()
    engine.report()
    if args.telemetry_dir:
        from .telemetry import append_record, run_record

        engine.telemetry.to_trace().write(Path(args.telemetry_dir) / "trace.json")
        append_record(
            args.telemetry_dir,
            run_record(
                "exp",
                config={
                    "id": args.id,
                    "budget": config.budget,
                    "jobs": args.jobs,
                    "cache": args.cache,
                    "counting": args.counting,
                },
                wall_s=wall_s,
                engine=_engine_summary(engine),
                results=[
                    {"eid": r.eid, "passed": r.passed, "checks": r.checks}
                    for r in results
                ],
            ),
        )
    if failed:
        print(f"{failed} experiment(s) had failing checks", file=sys.stderr)
    return 1 if failed else 0


def cmd_sort(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    tel_observers, tel = _telemetry_observers(args)
    t0 = time.perf_counter()
    rec = api.evaluate(
        "sort",
        sorter=args.sorter,
        n=args.n,
        M=p.M,
        B=p.B,
        omega=p.omega,
        distribution=args.distribution,
        seed=args.seed,
        counting=args.counting,
        observers=observers + tel_observers,
    )
    _close_observers(observers)
    _finish_run_telemetry(
        args,
        tel,
        config={
            "sorter": args.sorter,
            "n": args.n,
            "distribution": args.distribution,
            "seed": args.seed,
            "counting": args.counting,
            "params": {"M": p.M, "B": p.B, "omega": p.omega},
        },
        cost=rec,
        wall_s=time.perf_counter() - t0,
    )
    if args.json:
        _emit_json(
            {
                "command": "sort",
                "sorter": args.sorter,
                "n": args.n,
                "distribution": args.distribution,
                "seed": args.seed,
                "counting": args.counting,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                "shape_upper": sort_upper_shape(args.n, p),
                **rec,
            }
        )
        return 0
    print(f"{args.sorter} on N={args.n} {args.distribution} keys, {p.describe()}")
    print(
        f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}  "
        f"T={rec['T']}  peak-mem={rec['peak_mem']}"
    )
    print(f"  shape omega*n*log_(omega m) n = {sort_upper_shape(args.n, p):g}")
    return 0


def cmd_permute(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    tel_observers, tel = _telemetry_observers(args)
    t0 = time.perf_counter()
    rec = api.evaluate(
        "permute",
        permuter=args.permuter,
        n=args.n,
        M=p.M,
        B=p.B,
        omega=p.omega,
        family=args.family,
        seed=args.seed,
        counting=args.counting,
        observers=observers + tel_observers,
    )
    _close_observers(observers)
    _finish_run_telemetry(
        args,
        tel,
        config={
            "permuter": args.permuter,
            "n": args.n,
            "family": args.family,
            "seed": args.seed,
            "counting": args.counting,
            "params": {"M": p.M, "B": p.B, "omega": p.omega},
        },
        cost=rec,
        wall_s=time.perf_counter() - t0,
    )
    if args.json:
        _emit_json(
            {
                "command": "permute",
                "permuter": args.permuter,
                "n": args.n,
                "family": args.family,
                "seed": args.seed,
                "counting": args.counting,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                "shape_naive": permute_naive_shape(args.n, p),
                "shape_sort": sort_upper_shape(args.n, p),
                "lower_bound_general": counting_lower_bound_general(args.n, p),
                **rec,
            }
        )
        return 0
    print(
        f"{args.permuter} permuting N={args.n} ({args.family}), {p.describe()}"
    )
    print(f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}")
    print(
        f"  upper shapes: naive={permute_naive_shape(args.n, p):g}  "
        f"sort={sort_upper_shape(args.n, p):g}"
    )
    print(f"  lower bound (general) = {counting_lower_bound_general(args.n, p):g}")
    return 0


def cmd_spmxv(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    tel_observers, tel = _telemetry_observers(args)
    t0 = time.perf_counter()
    rec = api.evaluate(
        "spmxv",
        algorithm=args.algorithm,
        n=args.n,
        delta=args.delta,
        M=p.M,
        B=p.B,
        omega=p.omega,
        family=args.family,
        seed=args.seed,
        counting=args.counting,
        observers=observers + tel_observers,
    )
    _close_observers(observers)
    _finish_run_telemetry(
        args,
        tel,
        config={
            "algorithm": args.algorithm,
            "n": args.n,
            "delta": args.delta,
            "family": args.family,
            "seed": args.seed,
            "counting": args.counting,
            "params": {"M": p.M, "B": p.B, "omega": p.omega},
        },
        cost=rec,
        wall_s=time.perf_counter() - t0,
    )
    if args.json:
        _emit_json(
            {
                "command": "spmxv",
                "algorithm": args.algorithm,
                "n": args.n,
                "delta": args.delta,
                "family": args.family,
                "seed": args.seed,
                "counting": args.counting,
                "params": {"M": p.M, "B": p.B, "omega": p.omega},
                **rec,
            }
        )
        return 0
    print(
        f"spmxv {args.algorithm}: N={args.n}, delta={args.delta} "
        f"({args.family}), {p.describe()}"
    )
    print(f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}")
    return 0


def _corpus_query_fields(args) -> dict:
    """The optional corpus-shape fields, omitted when left at None so the
    registry's derived defaults (and cache identity) apply."""
    out = {"zipf_a": args.zipf_a, "sorter": args.sorter}
    for name in ("n_docs", "n_terms", "fanin"):
        value = getattr(args, name)
        if value is not None:
            out[name] = value
    return out


def cmd_index(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    tel_observers, tel = _telemetry_observers(args)
    extra = _corpus_query_fields(args)
    t0 = time.perf_counter()
    rec = api.evaluate(
        "index_build",
        n=args.n,
        M=p.M,
        B=p.B,
        omega=p.omega,
        seed=args.seed,
        counting=args.counting,
        observers=observers + tel_observers,
        **extra,
    )
    _close_observers(observers)
    config = {
        "n": args.n,
        **extra,
        "seed": args.seed,
        "counting": args.counting,
        "params": {"M": p.M, "B": p.B, "omega": p.omega},
    }
    _finish_run_telemetry(
        args, tel, config=config, cost=rec, wall_s=time.perf_counter() - t0
    )
    if args.json:
        _emit_json({"command": "index", **config, **rec})
        return 0
    print(f"index build over N={args.n} postings, {p.describe()}")
    print(
        f"  Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}  "
        f"T={rec['T']}  peak-mem={rec['peak_mem']}"
    )
    return 0


def cmd_search(args) -> int:
    p = _params(args)
    observers = _run_observers(args)
    tel_observers, tel = _telemetry_observers(args)
    extra = _corpus_query_fields(args)
    t0 = time.perf_counter()
    rec = api.evaluate(
        "search_query",
        n=args.n,
        n_queries=args.queries,
        k=args.k,
        mode=args.mode,
        terms_per_query=args.terms,
        M=p.M,
        B=p.B,
        omega=p.omega,
        seed=args.seed,
        counting=args.counting,
        observers=observers + tel_observers,
        **extra,
    )
    _close_observers(observers)
    config = {
        "n": args.n,
        "n_queries": args.queries,
        "k": args.k,
        "mode": args.mode,
        "terms_per_query": args.terms,
        **extra,
        "seed": args.seed,
        "counting": args.counting,
        "params": {"M": p.M, "B": p.B, "omega": p.omega},
    }
    _finish_run_telemetry(
        args, tel, config=config, cost=rec, wall_s=time.perf_counter() - t0
    )
    if args.json:
        _emit_json({"command": "search", **config, **rec})
        return 0
    print(
        f"search: {args.queries} {args.mode}-mode top-{args.k} queries over "
        f"an N={args.n} index, {p.describe()}"
    )
    print(
        f"  query phase only: Qr={rec['Qr']}  Qw={rec['Qw']}  Q={rec['Q']:g}  "
        f"T={rec['T']}"
    )
    return 0


def _profile_query(args) -> dict:
    """The workload query dict a ``profile <workload>`` target prices."""
    p = _params(args)
    base = {
        "n": args.n,
        "M": p.M,
        "B": p.B,
        "omega": p.omega,
        "seed": args.seed,
        "counting": args.counting,
    }
    if args.target == "sort":
        return {**base, "sorter": args.sorter, "distribution": args.distribution}
    if args.target == "permute":
        return {**base, "permuter": args.permuter, "family": args.family}
    if args.target == "spmxv":
        return {**base, "algorithm": args.algorithm, "delta": args.delta,
                "family": args.family}
    return base


def cmd_profile(args) -> int:
    """Attribute I/O cost to nested phase paths; see docs/observability.md.

    The target is either a workload name (one profiled evaluation) or an
    experiment id (every profilable measurement in the run, merged per
    task label). Conservation — attributed totals == the cost ledger —
    is checked in-command and is a hard failure, so CI can assert it by
    exit code alone.
    """
    from .telemetry import CostProfiler, folded, merge_paths, render_table, speedscope

    if args.target in api.workload_names():
        profiler = CostProfiler(root=args.target, track_blocks=True)
        rec = api.evaluate(args.target, _profile_query(args), observers=[profiler])
        paths = profiler.paths()
        root = args.target
        errors = [
            f"{args.target}: {e}" for e in profiler.conservation_errors(rec)
        ]
    elif args.target in REGISTRY:
        config = ExperimentConfig(
            budget="full" if args.full else "quick",
            cache=False,
            counting=args.counting,
            profile=True,
        )
        engine = config.make_engine()
        with use_engine(engine):
            run_experiment(args.target, config)
        if not engine.profiles:
            print(
                f"profile: experiment {args.target!r} ran no profilable "
                "measurements (none accept observers)",
                file=sys.stderr,
            )
            return 1
        errors = []
        for entry in engine.profiles:
            ledger = entry.result
            if isinstance(ledger, dict) or hasattr(ledger, "keys"):
                errors.extend(
                    f"{entry.label}: {e}"
                    for e in entry.profiler.conservation_errors(ledger)
                )
        paths = merge_paths(
            (entry.label, entry.profiler.paths()) for entry in engine.profiles
        )
        root = args.target
    else:
        known = sorted(api.workload_names()) + sorted(REGISTRY)
        print(
            f"profile: unknown target {args.target!r} "
            f"(expected a workload or experiment id from {known})",
            file=sys.stderr,
        )
        return 2

    print(render_table(paths, weight=args.weight, top=args.top, root=root))
    depth = max((len(p) for p in paths), default=0)
    total = sum(stats.weight(args.weight) for stats in paths.values())
    print(f"total {args.weight} = {total:g} over {len(paths)} path(s), max depth {depth}")
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "profile.folded").write_text(
            folded(paths, weight=args.weight, root=root)
        )
        (out / "profile.speedscope.json").write_text(
            json.dumps(speedscope(paths, weight=args.weight, root=root),
                       sort_keys=True)
        )
        print(f"wrote {out / 'profile.folded'} and {out / 'profile.speedscope.json'}")
    if errors:
        for err in errors:
            print(f"  [FAIL] conservation: {err}", file=sys.stderr)
        print(
            f"profile FAILED conservation: {len(errors)} mismatch(es)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_inspect(args) -> int:
    """Record a permuting program and render its trace."""
    import numpy as np

    from .atoms.atom import Atom
    from .permute.base import PERMUTERS
    from .trace.program import capture
    from .trace.render import render_program
    from .workloads.generators import permutation

    p = _params(args)
    rng = np.random.default_rng(args.seed)
    atoms = [
        Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * args.n, args.n))
    ]
    perm = permutation(args.n, args.family, rng)
    program = capture(p, atoms, PERMUTERS[args.permuter], perm, p)
    if args.round_based:
        from .rounds.convert import to_round_based

        program, report = to_round_based(program)
        print(
            f"(converted to round-based: {report.rounds} rounds, "
            f"cost ratio {report.cost_ratio:.2f})\n"
        )
    print(render_program(program, timeline_limit=args.ops))
    return 0


def cmd_check(args) -> int:
    """Run the model sanitizers, the source lint, and/or the analysis."""
    from .sanitize import run_analysis_checks, run_lint_checks, run_trace_checks

    selected = args.traces or args.lint or getattr(args, "analysis", False)
    run_traces = args.traces or args.all or not selected
    run_lint = args.lint or args.all or not selected
    run_analysis = getattr(args, "analysis", False) or args.all or not selected
    fmt = getattr(args, "format", "text")
    # Machine-readable formats own stdout; progress moves to stderr.
    say = print if fmt == "text" else (lambda *a, **kw: print(*a, file=sys.stderr, **kw))

    if getattr(args, "update_baseline", False):
        from .sanitize import analyze_project, load_baseline, write_baseline
        from .sanitize.runner import default_baseline_path, default_lint_root

        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else default_baseline_path(default_lint_root())
        )
        findings = analyze_project(default_lint_root())
        write_baseline(
            baseline_path, findings, previous=load_baseline(baseline_path)
        )
        say(
            f"baseline written: {baseline_path} "
            f"({len(findings)} finding(s) accepted)"
        )
        return 0

    failures = 0
    reportable = []  # lint violations + new analysis findings for --format
    if run_traces:
        say("trace sanitizers (live runs + Lemma 4.1 / Lemma 4.3):")
        violations = run_trace_checks(log=say)
        for v in violations:
            print(f"  [FAIL] {v.render()}", file=sys.stderr)
        failures += len(violations)
    if run_lint:
        say("source lint (rules AEM101-AEM109):")
        lint_violations = run_lint_checks(log=say)
        for lv in lint_violations:
            print(f"  [FAIL] {lv.render()}", file=sys.stderr)
        failures += len(lint_violations)
        reportable.extend(lint_violations)
    suppressed_count = 0
    if run_analysis:
        say("dataflow analysis (rules AEM201-AEM204):")
        new, suppressed = run_analysis_checks(
            baseline=getattr(args, "baseline", None), log=say
        )
        for f in new:
            print(f"  [FAIL] {f.render()}", file=sys.stderr)
        failures += len(new)
        suppressed_count = len(suppressed)
        reportable.extend(new)

    if fmt != "text":
        from .sanitize import as_findings, render

        print(render(as_findings(reportable), fmt, suppressed=suppressed_count))

    if failures:
        print(f"check FAILED: {failures} violation(s)", file=sys.stderr)
        return 1
    say("check passed: all invariants hold")
    return 0


def cmd_bounds(args) -> int:
    p = _params(args)
    N = args.n
    cb = counting_lower_bound(N, p)
    print(f"Bounds for permuting/sorting N={N} on {p.describe()}:")
    print(f"  Theorem 4.5 shape  min{{N, w n log_wm n}} = {permute_lower_shape(N, p):g}")
    print(f"  exact counting bound (round-based): rounds >= {cb.rounds}, cost >= {cb.cost:g}")
    print(f"  exact counting bound (general programs): {counting_lower_bound_general(N, p):g}")
    print(f"  paper's simplified closed form: {simplified_cost_bound(N, p):g}")
    print(f"  upper bounds: naive permute = {permute_naive_shape(N, p):g}, "
          f"mergesort = {sort_upper_shape(N, p):g}")
    print(f"  regime: min takes the '{min_branch(N, p).value}' branch; "
          f"case analysis says '{classify(N, p).value}' "
          f"(boundary B* = {boundary_B(N, p):.1f}, actual B = {p.B})")
    return 0


async def _serve_until_drained(config) -> int:
    """Run one CostServer until a signal (or external shutdown) drains it."""
    import asyncio
    import signal

    from .serve import CostServer

    server = CostServer(config)
    await server.start()
    loop = asyncio.get_running_loop()

    def _drain() -> None:
        asyncio.ensure_future(server.shutdown())

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, _drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms/loops without signal support: ctrl-C still lands
    print(
        f"repro-aem serve: listening on http://{config.host}:{server.port} "
        f"(batch window {config.batch_window * 1e3:g}ms, "
        f"max pending {config.max_pending}); SIGINT/SIGTERM drains",
        file=sys.stderr,
    )
    await server.wait_closed()
    print("repro-aem serve: drained", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Serve cost queries over HTTP until signalled to drain."""
    import asyncio

    from .serve import ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        request_timeout=args.timeout,
        jobs=args.jobs,
        cache=args.cache,
        cache_dir=args.cache_dir,
        counting=args.counting,
        telemetry_dir=args.telemetry_dir,
    )
    return asyncio.run(_serve_until_drained(config))


def cmd_serve_bench(args) -> int:
    """Load-test the cost oracle and report latency + dedup hit-rates."""
    from .serve import BenchConfig, ServeConfig, ServerThread, render_report, run_bench

    bench_fields = dict(
        requests=args.requests,
        rate=args.rate,
        burst=args.burst,
        workload=args.workload,
        distinct=args.distinct,
        zipf_s=args.zipf_s,
        n_base=args.n_base,
        counting=args.counting,
        seed=args.seed,
        timeout=args.timeout,
    )
    if args.attach:
        host, _, port = args.attach.rpartition(":")
        report = run_bench(
            BenchConfig(host=host or "127.0.0.1", port=int(port), **bench_fields)
        )
    else:
        serve_config = ServeConfig(
            host="127.0.0.1",
            port=0,
            batch_window=args.batch_window,
            max_pending=args.max_pending,
            jobs=args.jobs,
            cache=args.cache,
            cache_dir=args.cache_dir,
        )
        with ServerThread(serve_config) as srv:
            report = run_bench(
                BenchConfig(host=srv.host, port=srv.port, **bench_fields)
            )
    if args.telemetry_dir:
        from .telemetry import append_record, run_record

        append_record(
            args.telemetry_dir,
            run_record(
                "serve-bench",
                config=report["config"],
                wall_s=report["wall_s"],
                metrics=report["metrics"],
                extra={
                    "statuses": report["statuses"],
                    "latency_ms": report["latency_ms"],
                    "server": report.get("server"),
                },
            ),
        )
    if args.json:
        _emit_json(report)
    else:
        print(render_report(report))
    return 0 if report["completed"] == report["sent"] else 1


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro-aem",
        description=(
            "Reproduction of 'Lower Bounds in the Asymmetric External "
            "Memory Model' (Jacob & Sitchinava, SPAA 2017)"
        ),
    )
    sub = ap.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("exp", help="run experiments (e1..e19, a1..a3, or 'all')")
    exp.add_argument("id", help=f"experiment id: {sorted(REGISTRY)} or 'all'")
    exp.add_argument("--full", action="store_true", help="full-size sweeps")
    exp.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment records as JSON instead of rendered tables",
    )
    exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep fan-out (default 1 = serial; "
        "records are identical either way)",
    )
    exp.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoize measurements on disk (--no-cache to disable)",
    )
    exp.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="measurement cache root (default: .repro-cache/ or "
        "$REPRO_CACHE_DIR)",
    )
    exp.add_argument(
        "--counting",
        action="store_true",
        help="run sweeps on payload-free counting machines where supported "
        "(identical costs, faster simulation, no output verification)",
    )
    _add_telemetry_arg(exp)
    exp.set_defaults(fn=cmd_exp)

    srt = sub.add_parser("sort", help="run one sorter with cost readout")
    srt.add_argument("--sorter", choices=sorted(SORTERS), default="aem_mergesort")
    srt.add_argument("--n", type=int, default=8_000)
    srt.add_argument("--distribution", default="uniform")
    _add_machine_args(srt)
    _add_run_args(srt)
    srt.set_defaults(fn=cmd_sort)

    per = sub.add_parser("permute", help="run one permuter with cost readout")
    per.add_argument("--permuter", choices=sorted(PERMUTERS), default="adaptive")
    per.add_argument("--n", type=int, default=4_096)
    per.add_argument("--family", default="random")
    _add_machine_args(per)
    _add_run_args(per)
    per.set_defaults(fn=cmd_permute)

    sp = sub.add_parser("spmxv", help="run one SpMxV algorithm")
    sp.add_argument("--algorithm", choices=["naive", "sort_based"], default="sort_based")
    sp.add_argument("--n", type=int, default=1_024)
    sp.add_argument("--delta", type=int, default=4)
    sp.add_argument("--family", default="random")
    _add_machine_args(sp)
    _add_run_args(sp)
    sp.set_defaults(fn=cmd_spmxv)

    def _add_corpus_args(parser) -> None:
        parser.add_argument(
            "--n-docs", type=int, default=None, help="documents (default n/8)"
        )
        parser.add_argument(
            "--n-terms", type=int, default=None, help="terms (default n/16)"
        )
        parser.add_argument(
            "--zipf-a", type=float, default=1.4, help="zipf exponent for terms"
        )
        parser.add_argument(
            "--fanin",
            type=int,
            default=None,
            help="merge fan-in per layer (default and cap: omega*m)",
        )
        parser.add_argument(
            "--sorter",
            choices=sorted(SORTERS),
            default="aem_mergesort",
            help="run-generation sorter",
        )

    idx = sub.add_parser(
        "index", help="build a blocked inverted index over a synthetic corpus"
    )
    idx.add_argument("--n", type=int, default=8_000, help="corpus postings")
    _add_corpus_args(idx)
    _add_machine_args(idx)
    _add_run_args(idx)
    idx.set_defaults(fn=cmd_index)

    sch = sub.add_parser(
        "search", help="serve DAAT top-k queries (prices the query phase only)"
    )
    sch.add_argument("--n", type=int, default=4_000, help="corpus postings")
    sch.add_argument("--queries", type=int, default=64, help="queries to serve")
    sch.add_argument("--k", type=int, default=8, help="results per query")
    sch.add_argument("--mode", choices=["and", "or"], default="and")
    sch.add_argument("--terms", type=int, default=2, help="terms per query")
    _add_corpus_args(sch)
    _add_machine_args(sch)
    _add_run_args(sch)
    sch.set_defaults(fn=cmd_search)

    from .telemetry.profile import WEIGHTS

    pf = sub.add_parser(
        "profile",
        help="attribute I/O cost (Qr/Qw/Q) to nested phase paths and "
        "export folded-stack + speedscope profiles",
    )
    pf.add_argument(
        "target",
        help="a workload name (sort/permute/spmxv) or an experiment id",
    )
    pf.add_argument(
        "--weight",
        choices=WEIGHTS,
        default="q",
        help="attribution weight: q (asymmetric cost), qw/qr (write/read "
        "I/Os), io (total I/Os)",
    )
    pf.add_argument(
        "--top", type=int, default=20, help="paths shown in the table"
    )
    pf.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write profile.folded and profile.speedscope.json here",
    )
    pf.add_argument("--sorter", choices=sorted(SORTERS), default="aem_mergesort")
    pf.add_argument("--permuter", choices=sorted(PERMUTERS), default="adaptive")
    pf.add_argument(
        "--algorithm", choices=["naive", "sort_based"], default="sort_based"
    )
    pf.add_argument("--n", type=int, default=4_096)
    pf.add_argument("--delta", type=int, default=4)
    pf.add_argument("--distribution", default="uniform")
    pf.add_argument("--family", default="random")
    pf.add_argument(
        "--full", action="store_true", help="full-size sweeps (experiment targets)"
    )
    pf.add_argument(
        "--counting",
        action="store_true",
        help="profile on payload-free counting machines (identical costs)",
    )
    _add_machine_args(pf)
    pf.set_defaults(fn=cmd_profile)

    chk = sub.add_parser(
        "check",
        help="verify model invariants: sanitizers on real traces "
        "(--traces), the AEM source lint (--lint), the dataflow "
        "analysis AEM201-AEM204 (--analysis), or everything (--all, "
        "the default)",
    )
    chk.add_argument(
        "--traces",
        action="store_true",
        help="run the live sanitizers and the Lemma 4.1/4.3 end-to-end checks",
    )
    chk.add_argument(
        "--lint", action="store_true", help="run the AEM source lint rules"
    )
    chk.add_argument(
        "--analysis",
        action="store_true",
        help="run the CFG/dataflow rules (AEM201-AEM204) with the "
        "committed baseline",
    )
    chk.add_argument(
        "--all", action="store_true", help="run every check (the default)"
    )
    chk.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="lint/analysis finding output: human text (default), JSON, "
        "or SARIF 2.1.0 on stdout (exit codes unchanged)",
    )
    chk.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="analysis baseline file (default: .aem-baseline.json at the "
        "repository root, when present)",
    )
    chk.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current analysis findings "
        "and exit 0",
    )
    chk.set_defaults(fn=cmd_check)

    bd = sub.add_parser("bounds", help="print the bound formulas for a point")
    bd.add_argument("--n", type=int, default=65_536)
    _add_machine_args(bd)
    bd.set_defaults(fn=cmd_bounds)

    ins = sub.add_parser(
        "inspect", help="record a permuting program and render its trace"
    )
    ins.add_argument("--permuter", choices=sorted(PERMUTERS), default="naive")
    ins.add_argument("--n", type=int, default=512)
    ins.add_argument("--family", default="random")
    ins.add_argument("--ops", type=int, default=40, help="timeline ops to show")
    ins.add_argument(
        "--round-based",
        action="store_true",
        help="apply the Lemma 4.1 conversion before rendering",
    )
    _add_machine_args(ins)
    ins.set_defaults(fn=cmd_inspect)

    from .telemetry import bench as bench_mod

    bn = sub.add_parser(
        "bench",
        help="run the benchmark suite, emit a BENCH_<stamp>.json trajectory "
        "point, and gate against the committed baseline",
    )
    bench_mod.add_arguments(bn)
    bn.set_defaults(fn=bench_mod.run)

    sv = sub.add_parser(
        "serve",
        help="serve cost queries over HTTP/JSON (batching + dedup + "
        "backpressure over the shared sweep engine)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8177, help="0 = ephemeral")
    sv.add_argument(
        "--batch-window",
        type=float,
        default=0.010,
        help="seconds admitted queries wait to coalesce into one engine call",
    )
    sv.add_argument(
        "--max-batch", type=int, default=64, help="max queries per engine call"
    )
    sv.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="unique in-flight queries before new work gets 429 + Retry-After",
    )
    sv.add_argument(
        "--timeout", type=float, default=60.0, help="per-request seconds before 504"
    )
    sv.add_argument(
        "--jobs", type=int, default=1, help="engine worker processes for fan-out"
    )
    sv.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoize answered queries in the shared on-disk result cache",
    )
    sv.add_argument("--cache-dir", default=default_cache_dir())
    sv.add_argument(
        "--counting",
        action="store_true",
        help="default queries to payload-free counting machines (a query's "
        "explicit counting field wins)",
    )
    _add_telemetry_arg(sv)
    sv.set_defaults(fn=cmd_serve)

    svb = sub.add_parser(
        "serve-bench",
        help="load-test the cost oracle: bursty open-loop traffic with a "
        "zipfian config mix; reports p50/p95/p99 latency and dedup/cache "
        "hit-rates",
    )
    svb.add_argument(
        "--attach",
        default=None,
        metavar="HOST:PORT",
        help="target a running server instead of self-hosting one",
    )
    svb.add_argument("--requests", type=int, default=200)
    svb.add_argument("--rate", type=float, default=200.0, help="mean requests/sec")
    svb.add_argument(
        "--burst", type=int, default=8, help="concurrent requests per arrival event"
    )
    svb.add_argument("--workload", choices=api.workload_names(), default="sort")
    svb.add_argument(
        "--distinct", type=int, default=8, help="distinct configs in the zipfian mix"
    )
    svb.add_argument("--zipf-s", type=float, default=1.1, help="zipf exponent")
    svb.add_argument("--n-base", type=int, default=256, help="n of the hottest config")
    svb.add_argument(
        "--counting",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="benchmark with counting queries (fast; --no-counting for full runs)",
    )
    svb.add_argument("--seed", type=int, default=0)
    svb.add_argument("--timeout", type=float, default=60.0)
    svb.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    svb.add_argument(
        "--batch-window",
        type=float,
        default=0.010,
        help="self-hosted server's coalescing window (ignored with --attach)",
    )
    svb.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="self-hosted server's admission bound (ignored with --attach)",
    )
    svb.add_argument("--jobs", type=int, default=1)
    svb.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="enable the self-hosted server's on-disk result cache",
    )
    svb.add_argument("--cache-dir", default=default_cache_dir())
    _add_telemetry_arg(svb)
    svb.set_defaults(fn=cmd_serve_bench)
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        print("repro-aem: interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # A run that raises — in-process or inside an engine worker — must
        # exit non-zero, not crash with a traceback on one path and return
        # 0 on another. REPRO_DEBUG=1 re-raises for debugging.
        import os

        if os.environ.get("REPRO_DEBUG"):
            raise
        import traceback as tb_mod

        tb_mod.print_exc(file=sys.stderr)
        print(f"repro-aem: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
