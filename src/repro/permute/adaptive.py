"""The adaptive permuter: realize ``min{N + omega*n, omega*n*log_{omega m} n}``.

Chooses between direct gathering and sorting by the closed-form cost
shapes — the choice an algorithm designer makes from N, M, B, omega alone,
before seeing the data. This is the algorithm whose measured cost tracks
the upper-bound side of Theorem 4.5 across the crossover (experiment E6).
"""

from __future__ import annotations

from typing import Sequence

from ..atoms.permutation import Permutation
from ..core.bounds import permute_naive_shape, sort_upper_shape
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from .naive import permute_naive
from .sort_based import permute_sort_based


#: Measured constant of our mergesort-based permuter relative to the shape
#: ``omega*n*log_{omega m} n`` (relabel/strip scans, two-block round
#: initialization, pointer maintenance). The naive permuter's constant is
#: essentially 1 (N reads + n writes exactly, minus cache hits). Calibrated
#: by experiment E6 and pinned by the test suite.
SORT_COST_CONSTANT = 5.0


def choose_strategy(
    N: int, params: AEMParams, *, sort_constant: float = SORT_COST_CONSTANT
) -> str:
    """``"naive"`` or ``"sort"``, by calibrated predicted cost."""
    return (
        "naive"
        if permute_naive_shape(N, params)
        <= sort_constant * sort_upper_shape(N, params)
        else "sort"
    )


def permute_adaptive(
    machine: AEMMachine,
    addrs: Sequence[int],
    perm: Permutation,
    params: AEMParams,
    *,
    sort_constant: float = SORT_COST_CONSTANT,
) -> list[int]:
    """Permute with the predicted-cheaper strategy."""
    if choose_strategy(len(perm), params, sort_constant=sort_constant) == "naive":
        return permute_naive(machine, addrs, perm, params)
    return permute_sort_based(machine, addrs, perm, params)
