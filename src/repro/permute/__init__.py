"""Permuting N atoms in the AEM — the problem of the Section 4 lower bounds."""

from .adaptive import choose_strategy, permute_adaptive
from .base import PERMUTERS, PermuteVerificationError, verify_permutation_output
from .naive import permute_naive
from .sort_based import permute_sort_based

__all__ = [
    "PERMUTERS",
    "PermuteVerificationError",
    "choose_strategy",
    "permute_adaptive",
    "permute_naive",
    "permute_sort_based",
    "verify_permutation_output",
]
