"""Permuting by sorting on destination index.

The second branch of the permutation upper bound: relabel each atom with
its destination position as the sort key, sort with the Section 3
mergesort, and strip the relabeling — cost ``O(omega*n*log_{omega m} n)``
(the two relabeling scans add ``O((1+omega)n)``).

Atom identities (uids) are preserved through the relabeling, so the
trace-level machinery (usefulness analysis, flash reduction) sees one
unbroken chain of copies per atom, and the output consists of exactly the
input atoms.
"""

from __future__ import annotations

from typing import Sequence

from ..atoms.atom import Atom
from ..atoms.permutation import Permutation
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.streams import BlockReader, BlockWriter
from ..sorting.mergesort import aem_mergesort


def permute_sort_based(
    machine: AEMMachine,
    addrs: Sequence[int],
    perm: Permutation,
    params: AEMParams,
) -> list[int]:
    """Permute by sorting; returns the output block addresses.

    Cost ``O(omega * n * log_{omega m} n)``.
    """
    counting = machine.counting
    # Relabel: key becomes the destination position; the original key
    # travels in the value slot. In counting mode atoms are their
    # ``(key, uid)`` tokens, so relabeling is token surgery — the sort
    # downstream steers on the same destination keys either way.
    with machine.phase("permute_sort/relabel"):
        writer = BlockWriter(machine)
        reader = BlockReader(machine, addrs)
        pos = 0
        for atom in reader:
            if counting:
                writer.push((int(perm[pos]), atom[1]))
            else:
                writer.push(Atom(int(perm[pos]), atom.uid, (atom.key, atom.value)))
            pos += 1
        tagged = writer.close()

    sorted_addrs = aem_mergesort(machine, tagged, params)

    # Strip: restore the original key, now in destination order. A token
    # carries no original key to restore; the pass's costs are content-free
    # and nothing reads the final payloads in counting mode, so the tokens
    # pass through unchanged.
    with machine.phase("permute_sort/strip"):
        writer = BlockWriter(machine)
        reader = BlockReader(machine, sorted_addrs)
        for atom in reader:
            if counting:
                writer.push(atom)
            else:
                key, value = atom.value
                writer.push(Atom(key, atom.uid, value))
        return writer.close()
