"""Direct permuting: gather each output block element by element.

The first branch of the permutation upper bound ``min{N + omega*n,
omega*n*log_{omega m} n}``: for each of the ``n`` output blocks, read the
(at most B) source blocks holding its atoms and write the assembled block
once — at most ``N`` reads and ``n`` writes, cost ``O(N + omega*n)``.

Consecutive gathers of atoms from the same source block are served from a
one-block cache, so inputs with locality (e.g. the identity or a cyclic
shift) cost far less than N reads; the adversarial bound is ``N``.
"""

from __future__ import annotations

from typing import Sequence

from ..atoms.permutation import Permutation
from ..core.params import AEMParams
from ..machine.aem import AEMMachine


def permute_naive(
    machine: AEMMachine,
    addrs: Sequence[int],
    perm: Permutation,
    params: AEMParams,
) -> list[int]:
    """Permute the atoms at ``addrs`` so that input position ``i`` lands at
    output position ``perm[i]``; returns the output block addresses.

    Cost at most ``N`` reads + ``n`` writes = ``O(N + omega*n)``.
    """
    B = params.B
    N = len(perm)
    inv = perm.inverse()
    out_addrs = machine.allocate((N + B - 1) // B) if N else []

    # Map input position -> (input block index, offset). Input blocks are
    # full except possibly the last, as laid out by load_input.
    def source_of(pos: int) -> tuple[int, int]:
        return pos // B, pos % B

    cached_idx = -1
    cached_blk: list = []
    with machine.phase("permute_naive/gather"):
        for t, out_addr in enumerate(out_addrs):
            lo, hi = t * B, min((t + 1) * B, N)
            assembled: list = []
            machine.acquire(hi - lo, "output block under assembly")
            for q in range(lo, hi):
                src = int(inv[q])
                bidx, off = source_of(src)
                if bidx != cached_idx:
                    if cached_idx >= 0:
                        machine.release(len(cached_blk))
                    cached_blk = machine.read(addrs[bidx])
                    cached_idx = bidx
                assembled.append(cached_blk[off])
                machine.touch()
            # The assembled atoms were acquired above; the cached block's
            # atoms are separate copies still held by the cache.
            machine.write(out_addr, assembled)
        if cached_idx >= 0:
            machine.release(len(cached_blk))
    return list(out_addrs)
