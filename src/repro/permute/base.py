"""Permuter registry and verification."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..atoms.atom import Atom, same_atom_multiset
from ..atoms.permutation import Permutation, verify_permuted
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from .adaptive import permute_adaptive
from .naive import permute_naive
from .sort_based import permute_sort_based

Permuter = Callable[[AEMMachine, Sequence[int], Permutation, AEMParams], list[int]]

PERMUTERS: Dict[str, Permuter] = {
    "naive": permute_naive,
    "sort_based": permute_sort_based,
    "adaptive": permute_adaptive,
}


class PermuteVerificationError(AssertionError):
    """The output of a permuter violates its contract."""


def verify_permutation_output(
    machine: AEMMachine,
    input_atoms: Sequence[Atom],
    output_addrs: Sequence[int],
    perm: Permutation,
) -> list[Atom]:
    """Check ``output[perm[i]].uid == input[i].uid`` and atom preservation."""
    out = machine.collect_output(output_addrs)
    if len(out) != len(input_atoms):
        raise PermuteVerificationError(
            f"output holds {len(out)} atoms, input had {len(input_atoms)}"
        )
    if not verify_permuted(
        perm, [a.uid for a in input_atoms], [a.uid for a in out]
    ):
        raise PermuteVerificationError("output does not realize the permutation")
    if not same_atom_multiset(input_atoms, out):
        raise PermuteVerificationError(
            "output atoms are not exactly the input atoms (indivisibility violated)"
        )
    return out
