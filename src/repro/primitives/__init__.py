"""I/O-efficient primitives: scans, prefix sums, structured transposition."""

from .scan import (
    filter_scan,
    map_blocks,
    partition_scan,
    prefix_sums,
    reduce_scan,
    zip_scan,
)
from .transpose import tiles_fit, transpose

__all__ = [
    "filter_scan",
    "map_blocks",
    "partition_scan",
    "prefix_sums",
    "reduce_scan",
    "tiles_fit",
    "transpose",
    "zip_scan",
]
