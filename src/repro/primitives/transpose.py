"""Matrix transposition — the canonical *structured* permutation.

Transposing an r x c matrix stored row-major is a fixed permutation
(`Permutation.transpose`), and a hard instance for the *generic* permuters
(no locality for the naive gather). But the permutation's structure is
exploitable: with ``M >= B^2 + B`` internal memory, process the matrix in
``B x B`` tiles — read the B blocks intersecting a tile column, transpose
in memory, write B blocks — for a single-pass ``O((1 + omega) * n)`` cost.

This is the classic Aggarwal–Vitter observation that transposition is
*easier* than general permuting: the Section 4 lower bound
``Omega(min{N, omega*n*log_{omega m} n})`` counts *all* N! permutations
and therefore does not constrain a single structured family. Experiment
E17 measures the gap.

When tiles do not fit (``M < B^2 + B``) the implementation falls back to
the generic adaptive permuter, keeping the function total.
"""

from __future__ import annotations

from typing import Sequence

from ..atoms.permutation import Permutation
from ..core.params import AEMParams, ceil_div
from ..machine.aem import AEMMachine
from ..permute.adaptive import permute_adaptive


def tiles_fit(params: AEMParams) -> bool:
    """Can a B x B tile plus one staging block reside in memory?"""
    return params.M >= params.B * params.B + params.B


def transpose(
    machine: AEMMachine,
    addrs: Sequence[int],
    rows: int,
    cols: int,
    params: AEMParams,
) -> list[int]:
    """Transpose an ``rows x cols`` row-major matrix of atoms.

    Input: ``rows*cols`` atoms laid out row-major in ``addrs``. Output: the
    column-major (= transposed row-major) layout in fresh blocks. Cost
    ``O((1 + omega) * n)`` when ``M >= B^2 + B``; otherwise delegates to
    the generic permuter.
    """
    N = rows * cols
    if N == 0:
        return []
    total = sum(machine.block_len(a) for a in addrs)
    if total != N:
        raise ValueError(f"expected {N} atoms for a {rows}x{cols} matrix, got {total}")
    if not tiles_fit(params):
        perm = Permutation.transpose(rows, cols)
        return permute_adaptive(machine, addrs, perm, params)

    B = params.B
    out_addrs = machine.allocate(ceil_div(N, B))

    # Staging area for one output block per tile-row is unnecessary: we
    # process output-block-aligned tiles. Output position of input (i, j)
    # is j*rows + i. We sweep output blocks in order; each output block
    # covers a contiguous range of (j, i) pairs, i.e. a column segment of
    # the input — whose atoms live in at most B input blocks (consecutive
    # rows, same column), exactly a B x 1 tile strip read with <= B reads
    # ... but consecutive output blocks reuse the same input blocks only
    # if we buffer a full B x B tile. So: iterate over tiles (bi, bj) of
    # the *input*; each tile's B^2 atoms map to B output-block segments.
    # To write whole output blocks once, iterate output-major: for each
    # strip of B output blocks (covering B columns), read the B x cols...
    #
    # The classic single-pass scheme, implemented directly: for each tile
    # (row band bi of B rows x column band bj of B columns):
    #   read the tile (up to B row-segments; a row-segment of B atoms may
    #   straddle 2 blocks, but bands aligned to B make it exactly 1 block
    #   when cols % B == 0); buffer it transposed; emit into per-column
    #   output writers. We require B-aligned dimensions for the one-pass
    #   path and fall back otherwise.
    if rows % B or cols % B:
        perm = Permutation.transpose(rows, cols)
        return permute_adaptive(machine, addrs, perm, params)

    row_blocks = cols // B  # blocks per input row... per row: cols/B
    for bj in range(cols // B):  # column band
        for bi in range(rows // B):  # row band
            # Read the B x B tile: row r of the band contributes its
            # B-aligned segment, which is exactly one input block.
            tile: list[list] = []
            for r in range(B):
                row = bi * B + r
                block_idx = row * row_blocks + bj
                tile.append(machine.read(addrs[block_idx]))
            # Write the transposed tile: column c of the tile is one
            # output block segment at output row (bj*B + c).
            for c in range(B):
                out_row = bj * B + c
                out_block_idx = out_row * (rows // B) + bi
                column = [tile[r][c] for r in range(B)]
                machine.write(out_addrs[out_block_idx], column)
            machine.touch(B * B)
    return list(out_addrs)
