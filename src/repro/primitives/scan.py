"""Scan-based primitives: the O(n) building blocks of EM algorithms.

Everything here is a single streaming pass (or a constant number of them)
over block runs, with exact cost accounting: ``n`` reads plus however many
blocks the output occupies, each write costing ``omega``. They are the
"free" operations the paper's algorithms compose around the expensive
sorting/merging steps — and they make user code on the simulator read
like EM pseudo-code.

All combiners are restricted to the semiring discipline where relevant
(prefix sums take a :class:`~repro.spmxv.semiring.Semiring`), matching the
Section 5 model.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.streams import BlockReader, BlockWriter
from ..spmxv.semiring import REAL, Semiring


def map_blocks(
    machine: AEMMachine,
    addrs: Sequence[int],
    fn: Callable,
) -> list[int]:
    """Apply ``fn`` to every atom; one read + one write pass (O((1+w)n)).

    ``fn`` returns the transformed item (same memory slot: one atom in,
    one atom out).
    """
    reader = BlockReader(machine, addrs)
    writer = BlockWriter(machine)
    for item in reader:
        machine.touch()
        writer.push(fn(item))
    return writer.close()


def filter_scan(
    machine: AEMMachine,
    addrs: Sequence[int],
    predicate: Callable[..., bool],
) -> list[int]:
    """Keep the atoms satisfying ``predicate``; O(n) reads + output writes."""
    reader = BlockReader(machine, addrs)
    writer = BlockWriter(machine)
    for item in reader:
        machine.touch()
        if predicate(item):
            writer.push(item)
        else:
            machine.release(1)
    return writer.close()


def reduce_scan(
    machine: AEMMachine,
    addrs: Sequence[int],
    semiring: Semiring = REAL,
    key: Optional[Callable] = None,
):
    """Fold the run with the semiring's addition; O(n) reads, no writes.

    ``key`` extracts the summed value from each atom (default: the atom
    itself — for runs of plain values).
    """
    reader = BlockReader(machine, addrs)
    acc = semiring.zero
    for item in reader:
        machine.touch()
        acc = semiring.add(acc, key(item) if key else item)
        machine.release(1)
    return acc


def prefix_sums(
    machine: AEMMachine,
    addrs: Sequence[int],
    semiring: Semiring = REAL,
    *,
    inclusive: bool = True,
) -> list[int]:
    """Semiring prefix sums of a run of plain values; O((1+w)n).

    The running accumulator is one word of internal state; each output
    value is a fresh atom-slot (acquired as created, released as written).
    """
    reader = BlockReader(machine, addrs)
    writer = BlockWriter(machine)
    acc = semiring.zero
    for value in reader:
        machine.touch()
        machine.release(1)  # the input value is consumed
        if inclusive:
            acc = semiring.add(acc, value)
            writer.push_new(acc)
        else:
            writer.push_new(acc)
            acc = semiring.add(acc, value)
    return writer.close()


def zip_scan(
    machine: AEMMachine,
    addrs_a: Sequence[int],
    addrs_b: Sequence[int],
    fn: Callable,
) -> list[int]:
    """Combine two equal-length runs elementwise; O((1+w)n) with two
    resident blocks (one per input)."""
    ra = BlockReader(machine, addrs_a)
    rb = BlockReader(machine, addrs_b)
    writer = BlockWriter(machine)
    while True:
        if ra.exhausted() != rb.exhausted():
            raise ValueError("zip_scan requires equal-length runs")
        if ra.exhausted():
            break
        a = ra.take()
        b = rb.take()
        machine.touch()
        machine.release(2)
        writer.push_new(fn(a, b))
    return writer.close()


def partition_scan(
    machine: AEMMachine,
    addrs: Sequence[int],
    predicate: Callable[..., bool],
) -> tuple[list[int], list[int]]:
    """Split a run into (true, false) runs in one pass; O((1+w)n)."""
    reader = BlockReader(machine, addrs)
    yes = BlockWriter(machine)
    no = BlockWriter(machine)
    for item in reader:
        machine.touch()
        (yes if predicate(item) else no).push(item)
    return yes.close(), no.close()
