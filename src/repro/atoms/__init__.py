"""Indivisible atoms and permutations — the objects the lower bounds count."""

from .atom import (
    Atom,
    is_sorted,
    keys_of,
    make_atoms,
    same_atom_multiset,
    uids_of,
)
from .permutation import Permutation, verify_permuted

__all__ = [
    "Atom",
    "Permutation",
    "is_sorted",
    "keys_of",
    "make_atoms",
    "same_atom_multiset",
    "uids_of",
    "verify_permuted",
]
