"""Indivisible atoms.

The permutation and sorting lower bounds (Section 4) assume *indivisibility*:
elements are opaque atoms that can only be moved, never combined, split, or
re-created. :class:`Atom` realizes this: each atom carries

* a ``key`` — what comparison-based algorithms order by (for permuting, the
  destination index),
* a ``uid`` — a unique identity that verification uses to check that a
  program's output consists of *exactly* the input atoms (no duplication,
  no creation), and
* an optional ``value`` payload that never participates in comparisons.

Atoms order by ``(key, uid)``; since uids are unique this is a strict total
order even with duplicate keys, which keeps the sorting algorithms' "next
element strictly larger than p_i" logic (Section 3.1) unambiguous and makes
every sort stable-checkable.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


class Atom:
    """An indivisible element with a sort key and a unique identity."""

    __slots__ = ("key", "uid", "value")

    def __init__(self, key: Any, uid: int, value: Any = None):
        self.key = key
        self.uid = uid
        self.value = value

    # Total order on (key, uid).
    def __lt__(self, other: "Atom") -> bool:
        return (self.key, self.uid) < (other.key, other.uid)

    def __le__(self, other: "Atom") -> bool:
        return (self.key, self.uid) <= (other.key, other.uid)

    def __gt__(self, other: "Atom") -> bool:
        return (self.key, self.uid) > (other.key, other.uid)

    def __ge__(self, other: "Atom") -> bool:
        return (self.key, self.uid) >= (other.key, other.uid)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.uid == other.uid
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.key, self.uid))

    def sort_token(self):
        """The pair the total order compares, ``(key, uid)``."""
        return (self.key, self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.value is None:
            return f"Atom({self.key!r}#{self.uid})"
        return f"Atom({self.key!r}#{self.uid}={self.value!r})"


def make_atoms(keys: Iterable[Any], values: Optional[Sequence[Any]] = None) -> list[Atom]:
    """Atoms for ``keys`` with uids 0, 1, 2, ... in input order."""
    keys = list(keys)
    if values is None:
        return [Atom(k, i) for i, k in enumerate(keys)]
    if len(values) != len(keys):
        raise ValueError("values must match keys in length")
    return [Atom(k, i, v) for i, (k, v) in enumerate(zip(keys, values))]


def keys_of(atoms: Iterable[Atom]) -> list:
    return [a.key for a in atoms]


def uids_of(atoms: Iterable[Atom]) -> list[int]:
    return [a.uid for a in atoms]


def is_sorted(atoms: Sequence[Atom]) -> bool:
    """True iff the sequence is non-decreasing in the (key, uid) order."""
    return all(atoms[i] <= atoms[i + 1] for i in range(len(atoms) - 1))


def same_atom_multiset(a: Iterable[Atom], b: Iterable[Atom]) -> bool:
    """True iff ``a`` and ``b`` contain exactly the same atoms (by uid+key).

    This is the indivisibility check: a correct program neither loses,
    duplicates, nor fabricates atoms.
    """
    sa = sorted(a, key=Atom.sort_token)
    sb = sorted(b, key=Atom.sort_token)
    return len(sa) == len(sb) and all(
        x.uid == y.uid and x.key == y.key for x, y in zip(sa, sb)
    )
