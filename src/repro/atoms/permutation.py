"""Permutations of {0, ..., N-1}.

A :class:`Permutation` ``pi`` maps *source position* ``i`` to *destination
position* ``pi[i]``: a permuting program must transform an input array
``x`` into the output array ``y`` with ``y[pi[i]] = x[i]``. This is the
object the Section 4 lower bounds count: a correct permuting algorithm must
realize all ``N!`` of them.

Backed by a numpy int64 array for O(N) composition/inversion and cheap
hashing of large instances.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


class Permutation:
    """An immutable permutation of ``{0, ..., N-1}`` in one-line notation."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Sequence[int] | np.ndarray, *, _trusted: bool = False):
        arr = np.asarray(mapping, dtype=np.int64)
        if not _trusted:
            if arr.ndim != 1:
                raise ValueError("a permutation is a 1-D sequence")
            n = arr.shape[0]
            seen = np.zeros(n, dtype=bool)
            if n and (arr.min() < 0 or arr.max() >= n):
                raise ValueError("permutation values must lie in [0, N)")
            seen[arr] = True
            if not seen.all():
                raise ValueError("mapping is not a bijection on [0, N)")
        self._map = arr
        self._map.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n: int) -> "Permutation":
        return Permutation(np.arange(n, dtype=np.int64), _trusted=True)

    @staticmethod
    def random(n: int, rng: np.random.Generator | int | None = None) -> "Permutation":
        rng = np.random.default_rng(rng)
        return Permutation(rng.permutation(n).astype(np.int64), _trusted=True)

    @staticmethod
    def reversal(n: int) -> "Permutation":
        return Permutation(np.arange(n - 1, -1, -1, dtype=np.int64), _trusted=True)

    @staticmethod
    def cyclic_shift(n: int, k: int = 1) -> "Permutation":
        """Send position ``i`` to ``(i + k) mod n``."""
        return Permutation((np.arange(n, dtype=np.int64) + k) % max(n, 1), _trusted=True)

    @staticmethod
    def transpose(rows: int, cols: int) -> "Permutation":
        """The matrix-transposition permutation of an r x c row-major array.

        Element at row-major position ``i = r*cols + c`` moves to position
        ``c*rows + r`` — the classic hard instance for external-memory
        permuting.
        """
        n = rows * cols
        i = np.arange(n, dtype=np.int64)
        r, c = divmod(i, cols)
        return Permutation(c * rows + r, _trusted=True)

    @staticmethod
    def bit_reversal(log_n: int) -> "Permutation":
        """Bit-reversal permutation on ``2**log_n`` positions (FFT order)."""
        n = 1 << log_n
        idx = np.arange(n, dtype=np.int64)
        rev = np.zeros(n, dtype=np.int64)
        for b in range(log_n):
            rev |= ((idx >> b) & 1) << (log_n - 1 - b)
        return Permutation(rev, _trusted=True)

    # ------------------------------------------------------------------
    # Structure.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._map.shape[0])

    def __getitem__(self, i: int) -> int:
        return int(self._map[i])

    def __iter__(self):
        return iter(int(v) for v in self._map)

    def as_array(self) -> np.ndarray:
        return self._map

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and np.array_equal(self._map, other._map)

    def __hash__(self) -> int:
        return hash(self._map.tobytes())

    # ------------------------------------------------------------------
    # Algebra.
    # ------------------------------------------------------------------
    def inverse(self) -> "Permutation":
        inv = np.empty_like(self._map)
        inv[self._map] = np.arange(len(self), dtype=np.int64)
        return Permutation(inv, _trusted=True)

    def compose(self, other: "Permutation") -> "Permutation":
        """``(self ∘ other)[i] = self[other[i]]`` (apply ``other`` first)."""
        if len(self) != len(other):
            raise ValueError("can only compose permutations of equal size")
        return Permutation(self._map[other._map], _trusted=True)

    def apply(self, items: Sequence) -> list:
        """Return ``y`` with ``y[self[i]] = items[i]``."""
        if len(items) != len(self):
            raise ValueError(
                f"permutation of size {len(self)} applied to {len(items)} items"
            )
        out: list = [None] * len(items)
        for i, item in enumerate(items):
            out[self._map[i]] = item
        return out

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------
    def is_identity(self) -> bool:
        return bool(np.array_equal(self._map, np.arange(len(self))))

    def fixed_points(self) -> int:
        return int(np.count_nonzero(self._map == np.arange(len(self))))

    def cycle_type(self) -> list[int]:
        """Sorted list of cycle lengths (descending)."""
        n = len(self)
        seen = np.zeros(n, dtype=bool)
        cycles: list[int] = []
        for start in range(n):
            if seen[start]:
                continue
            length = 0
            j = start
            while not seen[j]:
                seen[j] = True
                j = int(self._map[j])
                length += 1
            cycles.append(length)
        return sorted(cycles, reverse=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self) <= 16:
            return f"Permutation({self._map.tolist()})"
        return f"Permutation(N={len(self)})"


def verify_permuted(
    perm: Permutation,
    input_uids: Sequence[int],
    output_uids: Sequence[int],
) -> bool:
    """Check that ``output_uids[perm[i]] == input_uids[i]`` for all i."""
    if len(input_uids) != len(perm) or len(output_uids) != len(perm):
        return False
    arr_in = np.asarray(input_uids)
    arr_out = np.asarray(output_uids)
    return bool(np.array_equal(arr_out[perm.as_array()], arr_in))
