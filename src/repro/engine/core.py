"""The sweep-execution engine: parallel fan-out + memoization.

A :class:`SweepEngine` runs ``measure(**config)`` over a list of configs
and returns results *in config order*, whatever the execution strategy:

* ``jobs=1`` — the exact serial loop the old ``analysis.sweep.sweep``
  performed, unchanged semantics;
* ``jobs>1`` — fan-out over a ``concurrent.futures.ProcessPoolExecutor``.
  Futures are submitted and collected in submission order, so the record
  stream is byte-identical to the serial run (the simulator's costs are
  exact deterministic counters; only wall-clock changes);
* with a :class:`~repro.engine.cache.ResultCache` attached, each
  measurement is looked up before it is scheduled and stored the moment it
  completes — a killed sweep resumes by replaying the completed prefix as
  cache hits.

Experiments never hold an engine; they call the module-level sweep
helpers in :mod:`repro.analysis.sweep`, which route through the *ambient*
engine installed by :func:`use_engine` (the CLI and
``run_experiment``/``run_all`` install one built from their
:class:`~repro.engine.config.ExperimentConfig`). With no ambient engine a
serial, cache-less default is used, so library behavior without opt-in is
exactly the pre-engine behavior.
"""

from __future__ import annotations

import inspect
import pickle
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from .cache import MISS, ResultCache, function_id


class EngineWorkerError(RuntimeError):
    """A measurement raised inside a worker process.

    Raised in the *parent* when the worker's original exception cannot
    survive the pickle round-trip back (e.g. a third-party exception with
    a custom ``__init__``). Carries the original type name and the
    worker-side traceback, so the failure is diagnosable instead of
    surfacing as an opaque ``BrokenProcessPool``.
    """

    def __init__(self, label: str, exc_type: str, message: str, worker_tb: str):
        self.label = label
        self.exc_type = exc_type
        self.worker_tb = worker_tb
        super().__init__(
            f"{label} raised {exc_type}: {message}\n"
            f"--- worker traceback ---\n{worker_tb}"
        )


@dataclass
class EngineStats:
    """Aggregate counters for one engine's lifetime."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    sweeps: int = 0

    @property
    def measurements(self) -> int:
        """Total measurements served (executed + replayed from cache)."""
        return self.executed + self.cache_hits

    def as_dict(self) -> dict:
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "sweeps": self.sweeps,
            "measurements": self.measurements,
        }

    def describe(self) -> str:
        return (
            f"{self.sweeps} sweep(s), {self.measurements} measurement(s): "
            f"{self.executed} executed, {self.cache_hits} cache hit(s), "
            f"{self.cache_misses} miss(es)"
        )


def _call(measure: Callable, config: Mapping) -> Any:
    return measure(**config)


@dataclass
class ProfileEntry:
    """One profiled measurement from a ``profile=True`` engine run."""

    label: str
    config: dict
    profiler: Any  # repro.telemetry.profile.CostProfiler (duck-typed here)
    result: Any


def _call_guarded(
    measure: Callable, config: Mapping, label: str, span=None
) -> tuple:
    """Pool target: run the measurement, shipping failures back safely.

    Returns ``("ok", value, extra)`` on success, where ``extra`` is
    ``None`` — or, when a ``span`` context rode along, the machine span
    segments recorded in this worker (plain dicts; the parent merges them
    into its ambient collector). On failure, the exception is returned as
    a value — ``("exc", exception, None)`` when it survives a pickle
    round-trip intact, else ``("err", (type_name, message),
    formatted_traceback)``. Letting the exception propagate out of the
    pool target instead would make ``future.result()`` re-raise it via
    unpickling, and any exception that does not unpickle (a custom
    ``__init__`` signature suffices) would take down the pool with an
    opaque ``BrokenProcessPool``.
    """
    try:
        if span is None:
            return ("ok", _call(measure, config), None)
        from ..telemetry.spans import SpanCollector, use_collector, use_span

        collector = SpanCollector()
        with use_span(span), use_collector(collector):
            value = _call(measure, config)
        return ("ok", value, collector.export())
    except Exception as exc:
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            return (
                "err",
                (type(exc).__name__, str(exc)),
                traceback.format_exc(),
            )
        return ("exc", exc, None)


def _accepts_kwarg(measure: Callable, name: str) -> bool:
    try:
        return name in inspect.signature(measure).parameters
    except (TypeError, ValueError):
        return False


def _accepts_observers(measure: Callable) -> bool:
    return _accepts_kwarg(measure, "observers")


def _task_label(measure: Callable, index: int) -> str:
    return f"{getattr(measure, '__name__', 'measure')}[{index}]"


class SweepEngine:
    """Executes measurement sweeps; see the module docstring.

    Parameters
    ----------
    jobs:
        Worker processes for fan-out; ``1`` means in-process serial.
    cache:
        Optional :class:`ResultCache`; ``None`` disables memoization.
    seed:
        Sweep-level seed folded into every cache key (config-level seeds
        are part of the config itself).
    observers:
        Extra machine observers injected into every measure call that
        accepts an ``observers`` keyword. Observers force serial,
        cache-less execution: they must see the machine events, which
        neither a worker process nor a cache replay can deliver.
    telemetry:
        Optional task-span recorder (duck-typed; see
        :class:`repro.telemetry.EngineTelemetry`). When set, the engine
        reports one ``record_task(label, start, end, cache_hit=...)``
        per measurement: cache hits as zero-width spans, serial
        executions with exact bounds, pool executions as
        submit-to-completion intervals. ``None`` (the default) skips
        every timing call — library runs pay nothing.
    counting:
        Route measurements through the payload-free counting fast path:
        every measure call that accepts a ``counting`` keyword gets
        ``counting=True`` injected into its config (an explicit
        ``counting`` already in a config wins). The injected flag is part
        of the config before cache keys are computed, so counting and
        full runs never alias in the cache.
    profile:
        Attach a fresh :class:`repro.telemetry.profile.CostProfiler` to
        every measure call that accepts observers, collected (with its
        config and result) in :attr:`profiles`. Like ``observers``, this
        forces serial, cache-less execution — attribution needs the live
        event stream.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        seed: Optional[int] = None,
        observers: Sequence = (),
        telemetry=None,
        counting: bool = False,
        profile: bool = False,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = cache
        self.seed = seed
        self.observers = tuple(observers)
        self.telemetry = telemetry
        self.counting = bool(counting)
        self.profile = bool(profile)
        self.profiles: List[ProfileEntry] = []
        self.stats = EngineStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def map(
        self,
        measure: Callable,
        configs: Iterable[Mapping],
        *,
        spans: Optional[Sequence] = None,
    ) -> List[Any]:
        """``[measure(**c) for c in configs]`` in config order.

        Cache hits are returned without executing; misses run serially or
        on the pool and are stored as they complete.

        ``spans`` (parallel to ``configs``, entries may be ``None``)
        threads per-config :class:`~repro.telemetry.spans.SpanContext`
        through execution: each executed config runs under a child span —
        re-established inside pool workers, whose recorded machine
        segments ship back into the parent's ambient collector — and
        every telemetry task record carries its span, so serve-request,
        engine-task, and machine-phase tracks stitch into one flow chain.
        """
        self.stats.sweeps += 1
        telemetry = self.telemetry
        configs = [dict(c) for c in configs]
        if spans is not None:
            spans = list(spans)
            if len(spans) != len(configs):
                raise ValueError(
                    f"spans ({len(spans)}) must parallel configs ({len(configs)})"
                )

        def task_span(i: int):
            if spans is None or spans[i] is None:
                return None
            return spans[i].child()

        if self.counting and _accepts_kwarg(measure, "counting"):
            # Injected before cache keys are computed (below), so counting
            # sweeps get their own cache entries; explicit flags win.
            configs = [{"counting": True, **c} for c in configs]
        if (self.observers or self.profile) and _accepts_observers(measure):
            # Observed (and profiled) runs must happen here and now,
            # unmemoized: attribution needs the live event stream.
            results = []
            for i, c in enumerate(configs):
                label = _task_label(measure, i)
                extra = (*self.observers, *(c.pop("observers", None) or ()))
                profiler = None
                if self.profile:
                    from ..telemetry.profile import CostProfiler

                    profiler = CostProfiler(root=label)
                    extra = (*extra, profiler)
                value = self._execute_local(
                    measure,
                    {**c, "observers": extra},
                    label=label,
                    span=task_span(i),
                )
                if profiler is not None:
                    self.profiles.append(
                        ProfileEntry(label, dict(c), profiler, value)
                    )
                results.append(value)
            return results

        results: List[Any] = [None] * len(configs)
        pending: List[tuple] = []  # (index, key-or-None, config)
        for i, config in enumerate(configs):
            if self.cache is not None:
                key = self.cache.key(measure, config, seed=self.seed)
                value = self.cache.get(key)
                if value is not MISS:
                    results[i] = value
                    self.stats.cache_hits += 1
                    if telemetry is not None:
                        now = time.perf_counter()
                        self._record(
                            _task_label(measure, i), now, now,
                            cache_hit=True, span=task_span(i),
                        )
                    continue
                self.stats.cache_misses += 1
                pending.append((i, key, config))
            else:
                pending.append((i, None, config))

        if self.jobs > 1 and len(pending) > 1:
            pool = self._ensure_pool()
            done_at: Dict[int, float] = {}

            def _mark_done(index: int):
                # Runs on the executor's collector thread the moment the
                # future resolves — the closest the parent can get to the
                # worker's own completion time.
                def cb(_fut) -> None:
                    done_at[index] = time.perf_counter()

                return cb

            futures = []
            for i, key, config in pending:
                child = task_span(i)
                submitted = time.perf_counter()
                fut = pool.submit(
                    _call_guarded, measure, config, _task_label(measure, i),
                    child,
                )
                if telemetry is not None:
                    fut.add_done_callback(_mark_done(i))
                futures.append((i, key, config, child, submitted, fut))
            for i, key, config, child, submitted, fut in futures:
                status, payload, extra = fut.result()
                if status == "exc":
                    raise payload
                if status == "err":
                    exc_type, message = payload
                    raise EngineWorkerError(
                        _task_label(measure, i), exc_type, message, extra
                    )
                results[i] = self._finish(measure, key, config, payload)
                if extra:
                    self._absorb_segments(extra)
                if telemetry is not None:
                    self._record(
                        _task_label(measure, i),
                        submitted,
                        done_at.get(i, time.perf_counter()),
                        span=child,
                    )
        else:
            for i, key, config in pending:
                child = task_span(i)
                started = time.perf_counter()
                if child is not None:
                    from ..telemetry.spans import use_span

                    with use_span(child):
                        value = _call(measure, config)
                else:
                    value = _call(measure, config)
                results[i] = self._finish(measure, key, config, value)
                if telemetry is not None:
                    self._record(
                        _task_label(measure, i), started,
                        time.perf_counter(), span=child,
                    )
        return results

    def sweep(self, measure: Callable, configs: Iterable[Mapping]) -> List[Dict]:
        """Config-merged flat records (the classic sweep contract)."""
        configs = [dict(c) for c in configs]
        records = []
        for config, result in zip(configs, self.map(measure, configs)):
            rec = dict(config)
            as_dict = getattr(result, "as_dict", None)
            rec.update(as_dict() if callable(as_dict) else result)
            records.append(rec)
        return records

    def measure(self, measure: Callable, **config) -> Any:
        """One measurement through the engine (cached like any sweep point)."""
        return self.map(measure, [config])[0]

    def _execute_local(
        self,
        measure: Callable,
        config: Mapping,
        *,
        label: str = "measure",
        span=None,
    ) -> Any:
        self.stats.executed += 1
        started = time.perf_counter()
        if span is not None:
            from ..telemetry.spans import use_span

            with use_span(span):
                value = _call(measure, config)
        else:
            value = _call(measure, config)
        if self.telemetry is not None:
            self._record(label, started, time.perf_counter(), span=span)
        return value

    def _record(
        self, label: str, start: float, end: float, *,
        cache_hit: bool = False, span=None,
    ) -> None:
        """Report one task span to the duck-typed telemetry hook.

        The ``span`` keyword is only passed when one exists, so
        pre-existing recorders with the narrower ``record_task``
        signature keep working for un-spanned runs.
        """
        telemetry = self.telemetry
        if telemetry is None:
            return
        if span is not None:
            telemetry.record_task(label, start, end, cache_hit=cache_hit, span=span)
        elif cache_hit:
            telemetry.record_task(label, start, end, cache_hit=True)
        else:
            telemetry.record_task(label, start, end)

    def _absorb_segments(self, segments) -> None:
        """Merge worker-recorded machine segments into the ambient sink."""
        from ..telemetry.spans import current_collector

        collector = current_collector()
        if collector is not None:
            collector.extend(segments)

    def _finish(
        self, measure: Callable, key: Optional[str], config: Mapping, value: Any
    ) -> Any:
        self.stats.executed += 1
        if self.cache is not None and key is not None:
            self.cache.put(
                key,
                value,
                meta={"measure": function_id(measure), "config_keys": sorted(config)},
            )
        return value

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def report(self, stream=None) -> None:
        """One-line stats readout (stderr by default)."""
        print(f"[engine] {self.stats.describe()}", file=stream or sys.stderr)


# ----------------------------------------------------------------------
# The ambient engine.
# ----------------------------------------------------------------------
_ACTIVE: Optional[SweepEngine] = None
_DEFAULT = SweepEngine()  # serial, cache-less: pre-engine semantics


def active_engine() -> Optional[SweepEngine]:
    """The engine installed by :func:`use_engine`, or ``None``."""
    return _ACTIVE


def ambient_engine() -> SweepEngine:
    """The engine sweeps route through: the active one or the serial default."""
    return _ACTIVE if _ACTIVE is not None else _DEFAULT


@contextmanager
def use_engine(engine: SweepEngine) -> Iterator[SweepEngine]:
    """Install ``engine`` as the ambient engine for the ``with`` block.

    Nesting restores the previous engine on exit; the engine's worker pool
    is shut down when the installing block exits.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = engine
    try:
        yield engine
    finally:
        _ACTIVE = previous
        engine.close()
