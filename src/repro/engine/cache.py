"""Content-addressed on-disk cache for sweep measurements.

Every measurement the sweep engine runs is memoized as one JSON file under
a cache root (``.repro-cache/`` by default). The file name is the cache
*key*: a SHA-256 over the canonical JSON encoding of

* the measure function's ``module:qualname``,
* the full config dict (dataclasses such as :class:`~repro.core.params.
  AEMParams` are encoded field-by-field with their class name),
* the sweep-level seed (the :class:`~repro.engine.config.ExperimentConfig`
  seed, distinct from any per-measurement ``seed`` entry inside the
  config), and
* the repro package version.

Changing any component — a config value, the seed, the package version —
changes the key, so stale entries are never *served*; they are simply
orphaned until :meth:`ResultCache.clear` wipes the root. Entries are
written atomically (tmp file + rename), which is what makes killed sweeps
resumable: every measurement that completed before the kill replays as a
hit on the next run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..machine.cost import CostRecord

DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment override for the cache root (used by tests and CI to keep
#: cache traffic out of the working tree).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def _package_version() -> str:
    from repro import __version__

    return __version__


def canonical(obj: Any) -> Any:
    """A JSON-serializable canonical form of a config value.

    Dataclasses carry their class name so two parameter types with the
    same fields hash differently; mappings are key-sorted so dict ordering
    never changes a key; numpy scalars collapse to plain numbers.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        enc = {"__dataclass__": type(obj).__qualname__}
        for f in dataclasses.fields(obj):
            enc[f.name] = canonical(getattr(obj, f.name))
        return enc
    if isinstance(obj, Mapping):
        return {
            str(k): canonical(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    # numpy scalars (without importing numpy here)
    item = getattr(obj, "item", None)
    if callable(item):
        return canonical(item())
    return repr(obj)


def function_id(fn: Callable) -> str:
    """Stable identity of a measure function: ``module:qualname``."""
    return f"{getattr(fn, '__module__', '?')}:{getattr(fn, '__qualname__', repr(fn))}"


def cache_key(
    measure: Callable,
    config: Mapping,
    *,
    seed: Optional[int] = None,
    version: Optional[str] = None,
) -> str:
    """The content hash a measurement is filed under."""
    payload = {
        "measure": function_id(measure),
        "config": canonical(dict(config)),
        "seed": seed,
        "version": version if version is not None else _package_version(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _encode_value(value: Any) -> Any:
    """Encode a measurement result so :func:`_decode_value` restores it.

    Recurses through mappings and sequences, so a :class:`CostRecord` or a
    numpy scalar nested anywhere inside a result round-trips as the real
    object — not, as a shallow encoding would give, a ``repr()`` string on
    the first warm read. Tuples are tagged so they come back as tuples, not
    JSON lists; anything unrecognized falls back to ``repr()`` (one-way).
    """
    if isinstance(value, CostRecord):
        return {"__cost_record__": _encode_value(value.as_dict())}
    if isinstance(value, Mapping):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars, no numpy import
    if callable(item):
        return _encode_value(item())
    return repr(value)


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__cost_record__" in value:
            return CostRecord(**_decode_value(value["__cost_record__"]))
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lookups": self.lookups,
        }


_MISS = object()

#: A read that hits partial JSON (weak rename visibility on network
#: filesystems) is retried this many times, this far apart, before it
#: counts as a miss.
_READ_ATTEMPTS = 3
_READ_RETRY_S = 0.001


@dataclass
class ResultCache:
    """One-JSON-file-per-measurement cache under ``root``.

    ``version`` defaults to the installed repro version; passing another
    string lets tests exercise version-bump invalidation without touching
    the package.
    """

    root: Path = field(default_factory=lambda: Path(default_cache_dir()))
    version: Optional[str] = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.version is None:
            self.version = _package_version()
        self.stats = CacheStats()

    def key(
        self, measure: Callable, config: Mapping, *, seed: Optional[int] = None
    ) -> str:
        return cache_key(measure, config, seed=seed, version=self.version)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or the sentinel :data:`MISS`.

        Unreadable, non-JSON, or structurally invalid entries (valid JSON
        that is not a ``{"value": ...}`` object — e.g. hand-edited or
        written by an incompatible version) are all treated as misses; a
        corrupt file never crashes a sweep.

        The cache is shared by concurrent writers without locks — safe
        because :meth:`put` publishes via atomic rename and identical keys
        produce identical bytes, so the worst concurrency outcome is a
        redundant store, never a torn read on a POSIX filesystem. On
        filesystems where rename visibility is weaker (network mounts), a
        read can still observe partial JSON mid-publish; those decode
        failures are retried briefly before counting as a miss, so one
        torn read costs a millisecond instead of a redundant measurement.
        """
        path = self.path(key)
        for attempt in range(_READ_ATTEMPTS):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except OSError:
                self.stats.misses += 1
                return _MISS
            except (json.JSONDecodeError, UnicodeDecodeError):
                if attempt + 1 < _READ_ATTEMPTS:
                    time.sleep(_READ_RETRY_S)
                    continue
                self.stats.misses += 1
                return _MISS
            if not isinstance(entry, dict) or "value" not in entry:
                self.stats.misses += 1
                return _MISS
            self.stats.hits += 1
            return _decode_value(entry["value"])
        self.stats.misses += 1  # pragma: no cover - loop always returns
        return _MISS

    def put(self, key: str, value: Any, *, meta: Optional[dict] = None) -> None:
        """Store ``value`` atomically (a killed run never leaves torn files)."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"value": _encode_value(value), "meta": meta or {}}
        blob = json.dumps(entry, sort_keys=True, default=_json_fallback)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Also sweeps up orphaned ``*.tmp`` files left by runs killed between
        ``mkstemp`` and the atomic rename (not counted as entries).
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.root.glob("*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


#: Public name for the miss sentinel (identity-compared).
MISS = _MISS


def _json_fallback(obj):
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return repr(obj)
