"""Sweep-execution engine: parallel fan-out, on-disk memoization, resume.

Layering::

    experiments  ──>  analysis.sweep helpers  ──>  ambient SweepEngine
                                                      │
                                   ProcessPoolExecutor┤ ResultCache
                                     (jobs > 1)       │ (.repro-cache/)

* :class:`SweepEngine` — runs ``measure(**config)`` grids; parallel
  output is record-identical to serial (deterministic re-ordering).
* :class:`ResultCache` — content-addressed JSON store keyed on
  (measure qualname, config, sweep seed, package version); atomic writes
  make killed sweeps resumable.
* :class:`ExperimentConfig` — the one object describing how a run
  executes (budget, seed, jobs, cache policy, observers); successor of
  the ``quick`` flag.
* :func:`use_engine` / :func:`active_engine` — ambient-engine plumbing
  the sweep helpers route through.
"""

from .cache import (
    MISS,
    CacheStats,
    ResultCache,
    cache_key,
    canonical,
    default_cache_dir,
    function_id,
)
from .config import ExperimentConfig
from .core import (
    EngineStats,
    EngineWorkerError,
    ProfileEntry,
    SweepEngine,
    active_engine,
    ambient_engine,
    use_engine,
)

__all__ = [
    "MISS",
    "CacheStats",
    "EngineStats",
    "EngineWorkerError",
    "ExperimentConfig",
    "ProfileEntry",
    "ResultCache",
    "SweepEngine",
    "active_engine",
    "ambient_engine",
    "cache_key",
    "canonical",
    "default_cache_dir",
    "function_id",
    "use_engine",
]
