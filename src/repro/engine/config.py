"""ExperimentConfig: one object for how an experiment run should execute.

The old API threaded a bare ``quick: bool`` through ``run_experiment`` /
``run_all`` / every registered runner. That flag is now one field of a
frozen :class:`ExperimentConfig` carrying everything execution-related —
budget, sweep seed, parallelism, cache policy, extra observers — passed
once and visible to every layer (runner, sweep helpers, engine, CLI,
benchmarks). ``quick=`` keeps working through a deprecation shim in
:func:`repro.experiments.common.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from .cache import ResultCache, default_cache_dir
from .core import SweepEngine

BUDGETS = ("quick", "full")


@dataclass(frozen=True)
class ExperimentConfig:
    """Execution policy for experiment runs.

    Attributes
    ----------
    budget:
        ``"quick"`` (CI-sized sweeps) or ``"full"`` (paper-sized sweeps);
        the successor of the old ``quick`` flag.
    seed:
        Optional sweep-level seed, folded into every cache key so sweeps
        replayed under a different seed never alias (per-measurement seeds
        stay inside each config dict).
    jobs:
        Worker processes for sweep fan-out (``1`` = serial).
    cache:
        Whether measurements are memoized on disk. Off by default for
        library callers (byte-identical, side-effect-free runs); the CLI
        turns it on.
    cache_dir:
        Cache root; defaults to ``.repro-cache/`` or the
        ``REPRO_CACHE_DIR`` environment override.
    observers:
        Extra machine observers attached to every engine-routed
        measurement (forces serial, cache-less execution — events cannot
        be replayed from a cache or another process).
    counting:
        Run measurements on counting (payload-free) machines where the
        measure function supports it; costs are bit-identical to full
        runs, output verification is skipped. See
        :mod:`repro.machine.phantom`.
    profile:
        Attach a :class:`~repro.telemetry.profile.CostProfiler` to every
        measurement, collected per-config on the engine's ``profiles``
        list (forces serial, cache-less execution like ``observers``).
    """

    budget: str = "quick"
    seed: Optional[int] = None
    jobs: int = 1
    cache: bool = False
    cache_dir: str = field(default_factory=default_cache_dir)
    observers: Tuple = ()
    counting: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if self.budget not in BUDGETS:
            raise ValueError(
                f"budget must be one of {BUDGETS}, got {self.budget!r}"
            )
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {self.jobs!r}")
        object.__setattr__(self, "observers", tuple(self.observers))

    @property
    def quick(self) -> bool:
        """Back-compat view of the budget (``budget == "quick"``)."""
        return self.budget == "quick"

    @classmethod
    def from_quick(cls, quick: bool, **overrides) -> "ExperimentConfig":
        """The config equivalent of the legacy ``quick=`` flag."""
        return cls(budget="quick" if quick else "full", **overrides)

    def with_budget(self, budget: str) -> "ExperimentConfig":
        return replace(self, budget=budget)

    def make_cache(self) -> Optional[ResultCache]:
        return ResultCache(self.cache_dir) if self.cache else None

    def make_engine(self) -> SweepEngine:
        """A fresh engine implementing this config's execution policy."""
        return SweepEngine(
            jobs=self.jobs,
            cache=self.make_cache(),
            seed=self.seed,
            observers=self.observers,
            counting=self.counting,
            profile=self.profile,
        )
