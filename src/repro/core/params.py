"""Model parameters for the (M, B, omega)-Asymmetric External Memory model.

The AEM model (Blelloch et al. [7], as used by Jacob & Sitchinava, SPAA'17)
is a two-level memory hierarchy:

* an *internal* (symmetric) memory holding at most ``M`` atoms,
* an unbounded *external* (asymmetric) memory accessed in blocks of ``B``
  atoms, where a write I/O costs ``omega`` times a read I/O.

This module defines :class:`AEMParams`, the single source of truth for the
derived quantities used throughout the paper and this code base::

    m = ceil(M / B)          blocks that fit in internal memory
    n = ceil(N / B)          blocks occupied by an input of N atoms
    d = omega * m            the mergesort fan-out of Section 3

Special cases of the model are expressed as constructors:

* ``AEMParams.em(M, B)`` — the symmetric EM model of Aggarwal & Vitter
  (``omega = 1``),
* ``AEMParams.aram(M, omega)`` — the (M, omega)-ARAM of Blelloch et al.
  (``B = 1``), which the paper notes is equivalent to the (M, 1, omega)-AEM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for non-negative integers (``⌈a/b⌉``)."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be non-negative, got {a}")
    return -(-a // b)


@dataclass(frozen=True)
class AEMParams:
    """Parameters of an (M, B, omega)-AEM machine.

    Attributes
    ----------
    M:
        Internal memory capacity in atoms. Must satisfy ``M >= B``.
    B:
        Block size in atoms, ``B >= 1``.
    omega:
        Write-to-read cost ratio, ``omega >= 1``. Integers are typical but
        any real ratio ``>= 1`` is accepted (costs stay exact because the
        counters keep reads and writes separately).
    """

    M: int
    B: int
    omega: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.M, int) or self.M < 1:
            raise ValueError(f"M must be a positive integer, got {self.M!r}")
        if not isinstance(self.B, int) or self.B < 1:
            raise ValueError(f"B must be a positive integer, got {self.B!r}")
        if self.M < self.B:
            raise ValueError(
                f"internal memory must hold at least one block (M={self.M} < B={self.B})"
            )
        if not (isinstance(self.omega, (int, float)) and self.omega >= 1):
            raise ValueError(f"omega must be a number >= 1, got {self.omega!r}")

    # ------------------------------------------------------------------
    # Constructors for the special cases discussed in the paper.
    # ------------------------------------------------------------------
    @staticmethod
    def em(M: int, B: int) -> "AEMParams":
        """The symmetric EM model of Aggarwal & Vitter: ``omega = 1``."""
        return AEMParams(M=M, B=B, omega=1.0)

    @staticmethod
    def aram(M: int, omega: float) -> "AEMParams":
        """The (M, omega)-ARAM of Blelloch et al.: ``B = 1``."""
        return AEMParams(M=M, B=1, omega=omega)

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of blocks fitting in internal memory, ``m = ceil(M/B)``."""
        return ceil_div(self.M, self.B)

    def n(self, N: int) -> int:
        """Number of blocks occupied by ``N`` atoms, ``n = ceil(N/B)``."""
        return ceil_div(N, self.B)

    @property
    def fanout(self) -> int:
        """The Section 3 mergesort fan-out ``d = omega * m`` (at least 2)."""
        return max(2, int(self.omega * self.m))

    @property
    def write_cost(self) -> float:
        """Cost of one write I/O (``omega``); a read I/O costs 1."""
        return float(self.omega)

    def base_case_size(self) -> int:
        """Largest input sorted by the small-array base case, ``omega * M``.

        Section 3 sorts subarrays of ``N' <= omega * M`` elements directly
        (via Blelloch et al. [7, Lemma 4.2]) in ``O(omega n')`` reads and
        ``O(n')`` writes.
        """
        return max(self.M, int(self.omega * self.M))

    def log_omega_m(self, x: float) -> float:
        """``log`` of ``x`` in base ``omega * m`` (clamped to base >= 2)."""
        base = max(2.0, self.omega * self.m)
        if x <= 1:
            return 0.0
        return math.log(x) / math.log(base)

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    def with_memory(self, M: int) -> "AEMParams":
        """A copy of these parameters with a different internal memory size.

        Used by the Lemma 4.1 round conversion, which runs the converted
        program on a machine with doubled internal memory.
        """
        return replace(self, M=M)

    def scaled_memory(self, factor: float) -> "AEMParams":
        """A copy with ``M`` multiplied by ``factor`` (at least ``B``)."""
        return replace(self, M=max(self.B, int(self.M * factor)))

    def describe(self) -> str:
        return (
            f"(M={self.M}, B={self.B}, omega={self.omega:g})-AEM"
            f" [m={self.m}, fanout={self.fanout}]"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def param_grid(
    Ms: list[int], Bs: list[int], omegas: list[float]
) -> Iterator[AEMParams]:
    """Yield every valid combination of the given parameter values.

    Combinations with ``M < B`` are silently skipped, which makes it easy to
    write exhaustive sweeps without guarding each tuple.
    """
    for M in Ms:
        for B in Bs:
            if M < B:
                continue
            for omega in omegas:
                yield AEMParams(M=M, B=B, omega=omega)
