"""Regime analysis for the Theorem 4.5 bound ``min{N, omega*n*log_{omega m} n}``.

The counting proof distinguishes two cases by which term of the denominator
dominates:

1. ``B >= c * omega * log N / log(3*e*omega*m)`` — the block term dominates
   and the bound is ``Omega(omega * n * log_{omega m} n)`` (the *sorting
   regime*: permuting is as hard as sorting);
2. otherwise the bound is ``Omega(N)`` (the *naive regime*: moving atoms
   one by one is already optimal).

This module computes the predicted boundary, classifies instances, and
locates the empirical crossover of the two *upper* bounds (direct vs
sort-based permuting), which the experiments compare against the
prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Sequence

from .bounds import permute_naive_shape, sort_upper_shape
from .params import AEMParams


class Regime(Enum):
    """Which branch of ``min{N, omega*n*log_{omega m} n}`` is active."""

    NAIVE = "naive"  # the N branch: element-wise moving is optimal
    SORTING = "sorting"  # the omega*n*log branch: permuting ~ sorting


#: The constant ``c`` of the case distinction ``B >= c*omega*logN/log(3ewm)``.
#: The proof takes any c with log(N^{1+1/w} 3^{1/w} e / (wm)) <= c log N;
#: c = 2 suffices for omega >= 1 and N >= 3 e.
CASE_CONSTANT = 2.0


def boundary_B(N: int, p: AEMParams, c: float = CASE_CONSTANT) -> float:
    """The predicted regime boundary ``B* = c*omega*log2(N)/log2(3*e*omega*m)``."""
    if N < 2:
        return 0.0
    return c * p.omega * math.log2(N) / math.log2(3.0 * math.e * p.omega * p.m)


def classify(N: int, p: AEMParams, c: float = CASE_CONSTANT) -> Regime:
    """The proof's case for this instance (case 1 -> SORTING, 2 -> NAIVE)."""
    return Regime.SORTING if p.B >= boundary_B(N, p, c) else Regime.NAIVE


def min_branch(N: int, p: AEMParams) -> Regime:
    """Which branch of the bound's ``min`` is actually smaller."""
    n = p.n(N)
    base = max(2.0, float(p.fanout))
    log_term = max(1.0, math.log(max(n, 2)) / math.log(base))
    return Regime.NAIVE if N <= p.omega * n * log_term else Regime.SORTING


def upper_bound_winner(N: int, p: AEMParams) -> Regime:
    """Which permuting *algorithm* is predicted cheaper on this instance."""
    return (
        Regime.NAIVE
        if permute_naive_shape(N, p) <= sort_upper_shape(N, p)
        else Regime.SORTING
    )


@dataclass(frozen=True)
class Crossover:
    """The location where a predicate flips along a swept parameter."""

    parameter: str
    values: tuple
    flip_index: Optional[int]  # first index where predicate is True; None if never

    @property
    def before(self):
        if self.flip_index is None or self.flip_index == 0:
            return None
        return self.values[self.flip_index - 1]

    @property
    def at(self):
        if self.flip_index is None:
            return None
        return self.values[self.flip_index]


def find_crossover(
    values: Sequence, predicate: Callable[[object], bool], parameter: str = "x"
) -> Crossover:
    """First value (in sweep order) where ``predicate`` becomes true.

    Used to locate e.g. the B at which sorting-based permuting starts to
    beat direct permuting. The sweep need not be monotone in the predicate;
    the *first* flip is reported, matching how the experiments present it.
    """
    flip = next((i for i, v in enumerate(values) if predicate(v)), None)
    return Crossover(parameter=parameter, values=tuple(values), flip_index=flip)
