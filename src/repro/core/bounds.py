"""Closed-form cost formulas from the paper.

These are the *asymptotic shapes* (no hidden constants) used to compare
measured I/O counts against theory:

* sorting / merging upper bounds (Section 3),
* the permutation upper bound ``min{N + omega*n, omega*n*log_{omega m} n}``,
* the permutation lower bound of Theorem 4.5,
  ``Omega(min{N, omega*n*log_{omega m} n})``.

Exact (constant-free) lower bounds via the counting argument live in
:mod:`repro.core.counting`; SpMxV formulas live in
:mod:`repro.spmxv.bounds`. Every function here returns a *unit-free shape*
value: experiments fit a single constant per algorithm against it and check
the constant is stable across the sweep (that is what "matching the bound"
means for an asymptotic statement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import AEMParams


def _log_base(x: float, base: float) -> float:
    """log_base(x), clamped so that shapes stay >= 1 for trivial inputs."""
    if x <= 1.0 or base <= 1.0:
        return 1.0
    return max(1.0, math.log(x) / math.log(base))


def merge_cost_shape(N: int, p: AEMParams) -> float:
    """Theorem 3.2: merging ``omega*m`` runs of total size N costs
    ``O(omega*(n + m))`` reads and ``O(n + m)`` writes; total shape
    ``omega * (n + m)``."""
    return p.omega * (p.n(N) + p.m)


def merge_read_shape(N: int, p: AEMParams) -> float:
    return p.omega * (p.n(N) + p.m)


def merge_write_shape(N: int, p: AEMParams) -> float:
    return float(p.n(N) + p.m)


def sort_levels(N: int, p: AEMParams) -> float:
    """Number of recursion levels of the Section 3 mergesort.

    The recursion divides by ``d = omega*m`` per level and bottoms out at
    subarrays of ``omega*M`` elements, so there are
    ``ceil(log_d(N / (omega*M)))`` merge levels plus the base case;
    clamped to at least 1.
    """
    base = p.base_case_size()
    if N <= base:
        return 1.0
    return 1.0 + math.ceil(math.log(N / base) / math.log(max(2, p.fanout)))


def sort_upper_shape(N: int, p: AEMParams) -> float:
    """Section 3 mergesort: ``O(omega * n * log_{omega m} n)`` total cost."""
    return p.omega * p.n(N) * sort_levels(N, p)


def sort_read_shape(N: int, p: AEMParams) -> float:
    """Reads of the Section 3 mergesort: ``O(omega * n * log_{omega m} n)``."""
    return p.omega * p.n(N) * sort_levels(N, p)


def sort_write_shape(N: int, p: AEMParams) -> float:
    """Writes of the Section 3 mergesort: ``O(n * log_{omega m} n)``."""
    return p.n(N) * sort_levels(N, p)


def heapsort_shape(N: int, p: AEMParams) -> float:
    """Shape of the replacement-selection heapsort: one run-formation pass
    plus ``ceil(log_{omega m}(N/M))`` merge levels.

    Same asymptotics as :func:`sort_upper_shape` (the bound both satisfy),
    but its level boundaries fall at multiples of M rather than omega*M —
    initial runs come from an M-atom heap — so fitting heapsort against
    its own shape keeps the constant flat across N (experiment E13).
    """
    n = p.n(N)
    if N <= p.M:
        return p.omega * max(1, n)
    levels = 1.0 + math.ceil(math.log(N / p.M) / math.log(max(2, p.fanout)))
    return p.omega * n * levels


def em_sort_shape(N: int, p: AEMParams) -> float:
    """Classic Aggarwal–Vitter m-way mergesort run in the AEM: each level
    scans the data once for reads and once for writes, over
    ``log_m n`` levels — cost ``O((1 + omega) * n * log_m n)``."""
    n = p.n(N)
    levels = _log_base(max(n / p.m, 2.0), max(2, p.m)) + 1.0
    return (1 + p.omega) * n * levels


def permute_naive_shape(N: int, p: AEMParams) -> float:
    """Direct permuting: gather each output block with at most B reads and
    one write — ``O(N + omega*n)`` total cost."""
    return N + p.omega * p.n(N)


def permute_upper_shape(N: int, p: AEMParams) -> float:
    """The better of direct permuting and permuting by sorting."""
    return min(permute_naive_shape(N, p), sort_upper_shape(N, p))


def permute_lower_shape(N: int, p: AEMParams) -> float:
    """Theorem 4.5: ``Omega(min{N, omega * n * log_{omega m} n})``.

    Valid under the theorem's assumption ``omega <= N/B``; the function
    returns the shape regardless, callers can check
    :func:`theorem_4_5_applicable`.
    """
    n = p.n(N)
    log_term = _log_base(float(n), max(2, p.fanout))
    return min(float(N), p.omega * n * log_term)


def theorem_4_5_applicable(N: int, p: AEMParams) -> bool:
    """The assumption ``omega <= N/B`` (equivalently ``omega*B <= N``)."""
    return p.omega * p.B <= N


@dataclass(frozen=True)
class BoundPair:
    """A (lower, upper) pair of shape values for one instance."""

    lower: float
    upper: float

    @property
    def gap(self) -> float:
        """Upper/lower ratio — O(1) in the regimes where the paper proves
        tightness."""
        return self.upper / max(self.lower, 1e-12)


def permute_bounds(N: int, p: AEMParams) -> BoundPair:
    return BoundPair(permute_lower_shape(N, p), permute_upper_shape(N, p))


def sort_bounds(N: int, p: AEMParams) -> BoundPair:
    """Sorting inherits the permutation lower bound (every sorter must be
    able to realize any permutation)."""
    return BoundPair(permute_lower_shape(N, p), sort_upper_shape(N, p))


def small_sort_shape(N: int, p: AEMParams) -> float:
    """Base case (Blelloch et al. Lemma 4.2): ``N' <= omega*M`` elements in
    ``O(omega * n')`` reads and ``O(n')`` writes — total ``O(omega * n')``."""
    if N > p.base_case_size():
        raise ValueError(
            f"small-sort shape only applies to N <= omega*M = {p.base_case_size()}"
        )
    return p.omega * p.n(N)
