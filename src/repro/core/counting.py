"""The Section 4.2 counting lower bound, evaluated exactly.

The argument: a *round-based* program proceeds in rounds of cost at most
``omega*m`` (all but the last of cost at least ``omega*(m-1)``), with empty
internal memory between rounds. Inequality (1) of the paper bounds the
number of distinct permutations ``P(R)`` that R rounds can generate:

    P(R) <= [ C(N, wM/B) * C(wM, M) * 2^M * (M! / B!^{M/B}) * (3N)^{M/B} ]^R

where ``w`` stands for omega. A correct permuting program must be able to
generate all permutations, modulo the within-block orders that are counted
once at the final writes, so

    P(R) >= N! / B!^{N/B}.

Solving for R and multiplying by the per-round cost yields the lower bound
of Theorem 4.5, ``Omega(min{N, omega*n*log_{omega m} n})``.

This module evaluates the inequality chain *exactly* in the log domain
(``math.lgamma`` — no overflow, no Stirling slop on the exact side), so the
derived bound

    R_min = ceil( log(N!/B!^{N/B}) / log(per-round factor) )
    Q     >= omega*(m-1) * (R_min - 1)

is a true, constant-free lower bound on the cost of every round-based
permuting program. The soundness experiments compare it directly against
the measured cost of real round-based programs produced by the Lemma 4.1
converter. The paper's *simplified* closed form (the display chain after
inequality (1)) is implemented alongside for comparison; it is weaker by
design and the tests verify ``simplified <= exact`` pointwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import AEMParams, ceil_div

LOG2E = math.log2(math.e)


def log2_factorial(n: float) -> float:
    """log2(n!) via lgamma (exact to double precision)."""
    if n < 0:
        raise ValueError("factorial of negative number")
    return math.lgamma(n + 1.0) * LOG2E


def log2_binomial(n: float, k: float) -> float:
    """log2 of C(n, k) for real-valued n, k.

    Conventions for the counting argument's edge cases:

    * ``k <= 0`` or ``k >= n`` contributes no choice: returns 0 for
      ``k <= 0``; for ``k >= n`` the round may read *all* blocks, so the
      number of subsets is at most ``2^n`` — we return ``n`` (log2 of 2^n),
      an upper bound, keeping P(R) an upper bound.
    """
    if k <= 0 or n <= 0:
        return 0.0
    if k >= n:
        return float(n)
    return (
        math.lgamma(n + 1.0) - math.lgamma(k + 1.0) - math.lgamma(n - k + 1.0)
    ) * LOG2E


@dataclass(frozen=True)
class CountingBound:
    """The exact counting lower bound for one instance.

    Attributes
    ----------
    log2_required:
        ``log2(N! / B!^{N/B})`` — permutations that must be generatable.
    log2_per_round:
        log2 of the bracketed per-round factor of inequality (1).
    rounds:
        ``R_min = ceil(required / per_round)``.
    round_cost:
        The minimum cost of every non-final round, ``omega*(m-1)``
        (clamped to at least 1 so the bound stays meaningful at m = 1).
    cost:
        The lower bound on the cost of any round-based permuting program:
        ``round_cost * (rounds - 1)``, clamped at 0.
    """

    N: int
    params: AEMParams
    log2_required: float
    log2_per_round: float
    rounds: int
    round_cost: float
    cost: float


def log2_permutations_per_round(
    N: int,
    p: AEMParams,
    *,
    budget: float | None = None,
    memory: int | None = None,
) -> float:
    """log2 of the bracketed factor of inequality (1).

    Terms, in paper order (``w`` = omega, defaults reproduce the paper's
    round shape exactly: budget ``w*m`` on memory ``M``):

    * ``C(N, r_max)`` — choices of which (at most) ``r_max = budget``
      blocks to read (a read costs 1, so a round affords ``budget`` reads;
      the paper's ``w*M/B``),
    * ``C(B*r_max, M)`` — which M of the readable atoms to keep (the
      paper's ``C(wM, M)``),
    * ``2^M`` — keep-or-not refinement per kept atom,
    * ``M! / B!^{M/B}`` — orders of the written atoms, modulo within-block
      orders (those are counted once, at the final writes),
    * ``(3N)^{w_max}`` — destinations of the (at most) ``w_max = budget/w``
      written blocks (the paper's ``M/B``).

    The ``budget``/``memory`` overrides let the soundness experiments
    evaluate the bound for round-based programs produced by the Lemma 4.1
    converter, whose rounds run on doubled memory with a slightly larger
    cost cap.
    """
    M = memory if memory is not None else p.M
    B, w = p.B, p.omega
    if budget is None:
        budget = w * ceil_div(M, B)
    r_max = budget
    w_max = budget / w
    log_choose_blocks = log2_binomial(N, r_max)
    log_choose_atoms = log2_binomial(B * r_max, M)
    log_keep = float(M)
    log_orders = log2_factorial(M) - (M / B) * log2_factorial(B)
    log_destinations = w_max * math.log2(3.0 * N) if N > 0 else 0.0
    return log_choose_blocks + log_choose_atoms + log_keep + log_orders + log_destinations


def log2_required_permutations(N: int, p: AEMParams) -> float:
    """log2 of ``N! / B!^{N/B}`` — the count a correct program must reach."""
    return log2_factorial(N) - (N / p.B) * log2_factorial(p.B)


def counting_lower_bound(
    N: int,
    p: AEMParams,
    *,
    budget: float | None = None,
    memory: int | None = None,
    round_floor: float | None = None,
) -> CountingBound:
    """The exact Section 4.2 lower bound for permuting N atoms.

    Applies to *round-based* programs on an (M, B, omega)-AEM whose rounds
    cost at most ``budget`` (default ``omega*m``) with all but the last
    costing at least ``round_floor`` (default ``omega*(m-1)``). For
    arbitrary programs, either convert them with the Lemma 4.1 converter
    and compare against this bound directly (what the experiments do), or
    use :func:`counting_lower_bound_general`, which pays the Corollary 4.2
    constant.
    """
    required = log2_required_permutations(N, p)
    per_round = log2_permutations_per_round(N, p, budget=budget, memory=memory)
    if per_round <= 0:
        # A round that can generate at most one permutation: any non-trivial
        # permutation count forces unbounded rounds; practically N <= B.
        rounds = 0 if required <= 0 else 1
    else:
        rounds = max(0, math.ceil(required / per_round))
    if round_floor is None:
        round_floor = p.omega * (p.m - 1)
    round_cost = max(1.0, round_floor)
    cost = max(0.0, round_cost * (rounds - 1))
    return CountingBound(
        N=N,
        params=p,
        log2_required=required,
        log2_per_round=per_round,
        rounds=rounds,
        round_cost=round_cost,
        cost=cost,
    )


#: Cost inflation of the Lemma 4.1 round conversion: per round of original
#: cost >= omega*(m-1), the converted program adds at most m reads (reload
#: the memory image), m writes (spill it), i.e. <= m + omega*m extra, and
#: rounds of the original cost at least omega*(m-1) — a factor <= 1 +
#: (m + omega*m) / (omega*(m-1)) <= 5 for m >= 2, omega >= 1. We use the
#: measured-safe constant 6.
LEMMA_4_1_CONSTANT = 6.0


def counting_lower_bound_general(N: int, p: AEMParams) -> float:
    """Lower bound for *arbitrary* programs on the (M, B, omega)-AEM.

    Corollary 4.2: a problem needing round-based cost Q on the
    (2M, B, omega)-AEM needs Omega(Q) on the (M, B, omega)-AEM. Concretely,
    an arbitrary program of cost Q on (M, B, omega) converts (Lemma 4.1) to
    a round-based program of cost <= LEMMA_4_1_CONSTANT * Q on
    (2M, B, omega); hence Q >= round_based_bound(2M) / LEMMA_4_1_CONSTANT.
    """
    doubled = p.with_memory(2 * p.M)
    return counting_lower_bound(N, doubled).cost / LEMMA_4_1_CONSTANT


def simplified_round_bound(N: int, p: AEMParams) -> float:
    """The paper's simplified closed-form bound on ``omega*m*R``.

    The display chain below inequality (1):

        w*m*R >= N*log(N/2B) / (2*max{ log(N^{1+1/w} * 3^{1/w} * e / (w*m)),
                                       (B/w)*log(3*e*w*m) })

    (logs base 2). Returns the right-hand side, clamped at 0; weaker than
    the exact bound by construction (each simplification enlarges P(R)).
    """
    M, B, w, m = p.M, p.B, p.omega, p.m
    if N <= 2 * B:
        return 0.0
    numerator = N * math.log2(N / (2.0 * B))
    term1 = math.log2((N ** (1.0 + 1.0 / w)) * (3.0 ** (1.0 / w)) * math.e / (w * m))
    term2 = (B / w) * math.log2(3.0 * math.e * w * m)
    denominator = 2.0 * max(term1, term2, 1e-9)
    return max(0.0, numerator / denominator)


def simplified_cost_bound(N: int, p: AEMParams) -> float:
    """Cost form of :func:`simplified_round_bound`.

    ``omega*m*R`` *is* (up to the last round) the program cost, since every
    non-final round costs between ``omega*(m-1)`` and ``omega*m``; we scale
    by ``(m-1)/m`` to stay a true lower bound.
    """
    wmR = simplified_round_bound(N, p)
    if p.m <= 1:
        return wmR  # degenerate: rounds are single writes
    return wmR * (p.m - 1) / p.m


def theorem_4_5_shape(N: int, p: AEMParams) -> float:
    """The asymptotic statement of Theorem 4.5 (shape, no constant):
    ``min{N, omega*n*log_{omega m} n}``, assuming ``omega <= N/B``."""
    n = p.n(N)
    base = max(2.0, float(p.fanout))
    log_term = max(1.0, math.log(max(n, 2)) / math.log(base))
    return min(float(N), p.omega * n * log_term)
