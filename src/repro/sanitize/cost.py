"""CostSanitizer: the asymmetric cost identity ``Q = Qr + omega * Qw``.

The paper's whole object of study is the cost functional
``Q = Qr + omega * Qw`` (Section 2). The machines account for it through
an always-attached :class:`~repro.observe.CostObserver` ("the ledger");
this sanitizer recomputes everything independently from the raw event
stream — per-event charges, running totals, and per-phase attribution —
and reconciles against the ledger at the end of the run. A machine that
charges the wrong per-I/O cost, or a ledger that was tampered with
(counters reset mid-run, totals patched), is reported with the exact
discrepancy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..observe.batch import KIND_READ, KIND_TOUCH, KIND_WRITE
from ..observe.cost import CostObserver
from .base import Sanitizer

_TOL = 1e-9


class CostSanitizer(Sanitizer):
    """Recompute ``Qr``/``Qw``/``Q`` from raw events; reconcile the ledger.

    Parameters
    ----------
    read_cost / write_cost:
        The model's expected per-event charges. Default ``None`` infers
        them at attach time from the machine's own
        :class:`~repro.observe.CostObserver`: reads cost ``1`` and writes
        cost ``omega`` (correct for AEM/EM/ARAM machines). For a flash
        machine pass ``read_cost=Br, write_cost=Bw`` explicitly.
    """

    rule = "COST"

    def __init__(
        self,
        *,
        read_cost: Optional[float] = None,
        write_cost: Optional[float] = None,
    ):
        super().__init__()
        self.read_cost = read_cost
        self.write_cost = write_cost
        self.reads = 0
        self.writes = 0
        self.touches = 0
        self.read_cost_total = 0.0
        self.write_cost_total = 0.0
        # Shadow phase attribution: name -> [reads, writes, touches].
        self.phases: dict[str, list[float]] = {}
        self._stack: list[str] = []
        self._ledger: Optional[CostObserver] = None
        self._omega: Optional[float] = None
        self._reconciled = False

    def on_attach(self, core) -> None:
        super().on_attach(core)
        ledgers = core.find(CostObserver)
        if ledgers:
            self._ledger = ledgers[0]
            self._omega = self._ledger.counter.omega
        if self.read_cost is None:
            self.read_cost = 1
        if self.write_cost is None:
            self.write_cost = self._omega if self._omega is not None else 1

    # ------------------------------------------------------------------
    # Event handlers: independent recount.
    # ------------------------------------------------------------------
    def _attribute(self, slot: int, amount: float = 1) -> None:
        # Mirror the ledger's discipline: costs go to the innermost phase.
        if self._stack:
            self.phases[self._stack[-1]][slot] += amount

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self.reads += 1
        self.read_cost_total += cost
        self._attribute(0)
        if abs(cost - self.read_cost) > _TOL:
            self.flag(
                f"read of block {addr} charged {cost}, the model's read "
                f"cost is {self.read_cost}",
                where=self._where(),
            )

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self.writes += 1
        self.write_cost_total += cost
        self._attribute(1)
        if abs(cost - self.write_cost) > _TOL:
            self.flag(
                f"write of block {addr} charged {cost}, the model's write "
                f"cost is {self.write_cost}",
                where=self._where(),
            )

    def on_touch(self, k: int) -> None:
        self.events += 1
        self.touches += k
        self._attribute(2, k)

    def on_batch(self, batch) -> None:
        # Per-event recount in original order (accumulation order and the
        # ``events`` counter match synchronous dispatch exactly); whole-
        # batch phase attribution is valid because phase boundaries flush.
        # Acquire/release carry no cost and are skipped, as in the
        # synchronous tier (no handlers for them).
        expected_read = self.read_cost
        expected_write = self.write_cost
        for kind, addr, length, cost in zip(
            batch.kinds, batch.addrs, batch.lengths, batch.costs
        ):
            if kind == KIND_READ:
                self.events += 1
                self.reads += 1
                self.read_cost_total += cost
                self._attribute(0)
                if abs(cost - expected_read) > _TOL:
                    self.flag(
                        f"read of block {addr} charged {cost}, the model's "
                        f"read cost is {expected_read}",
                        where=self._where(),
                    )
            elif kind == KIND_WRITE:
                self.events += 1
                self.writes += 1
                self.write_cost_total += cost
                self._attribute(1)
                if abs(cost - expected_write) > _TOL:
                    self.flag(
                        f"write of block {addr} charged {cost}, the model's "
                        f"write cost is {expected_write}",
                        where=self._where(),
                    )
            elif kind == KIND_TOUCH:
                self.events += 1
                self.touches += length
                self._attribute(2, length)

    def on_phase_enter(self, name: str) -> None:
        self.events += 1
        self._stack.append(name)
        self.phases.setdefault(name, [0, 0, 0])

    def on_phase_exit(self, name: str) -> None:
        self.events += 1
        if not self._stack or self._stack[-1] != name:
            self.flag(
                f"phase exit {name!r} does not match the open phase "
                f"{self._stack[-1]!r}" if self._stack
                else f"phase exit {name!r} with no phase open",
                where=self._where(),
            )
            return
        self._stack.pop()

    # ------------------------------------------------------------------
    # End-of-run reconciliation against the machine's ledger.
    # ------------------------------------------------------------------
    @property
    def Q(self) -> float:
        """Total cost recomputed from raw events."""
        return self.read_cost_total + self.write_cost_total

    def _finalize(self) -> None:
        if self._reconciled or self._ledger is None:
            return
        self._reconciled = True
        counter = self._ledger.counter
        checks = (
            ("Qr (read count)", counter.reads, self.reads),
            ("Qw (write count)", counter.writes, self.writes),
            ("T (touches)", counter.touches, self.touches),
            ("accumulated read cost", self._ledger.read_cost, self.read_cost_total),
            ("accumulated write cost", self._ledger.write_cost, self.write_cost_total),
            (
                "Q = Qr + omega*Qw",
                counter.Q,
                self.reads + counter.omega * self.writes,
            ),
        )
        for label, ledger_value, recomputed in checks:
            if abs(ledger_value - recomputed) > _TOL:
                self.flag(
                    f"ledger {label} is {ledger_value:g}, raw events give "
                    f"{recomputed:g}"
                )
        # Per-phase attribution must agree with the ledger's.
        for name, (r, w, t) in self.phases.items():
            snap = counter.phases.get(name)
            if snap is None:
                self.flag(f"phase {name!r} seen on the bus but missing from the ledger")
                continue
            if (snap.reads, snap.writes, snap.touches) != (r, w, t):
                self.flag(
                    f"phase {name!r}: ledger says reads={snap.reads} "
                    f"writes={snap.writes} touches={snap.touches}, raw events "
                    f"give reads={r:g} writes={w:g} touches={t:g}"
                )
