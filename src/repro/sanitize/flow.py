"""Control-flow graphs and a forward-dataflow fixpoint engine.

The single-pass ``ast.NodeVisitor`` lint (:mod:`repro.sanitize.lint`)
answers "does this syntax occur?"; the rules in
:mod:`repro.sanitize.analysis` need to answer "does this happen *on every
path*?" (phase balance) or "can this value *reach* that sink?" (batch
escape, counting-mode payload reads). Both questions are classic
dataflow problems, so this module provides the two generic pieces they
share:

* :func:`build_cfg` — a per-function control-flow graph covering the
  statement forms the tree actually uses: ``if``/``elif``/``else``,
  ``while``/``for`` (with ``else`` and ``break``/``continue``),
  ``try``/``except``/``else``/``finally``, ``with``, ``match``,
  ``return``/``raise``. One node per simple statement; compound
  statements contribute a header node (the branch point) plus their
  bodies. Edges carry labels (``"true"``/``"false"``/``"body"``/...)
  so analyses can refine state per branch — e.g. "inside this edge,
  ``machine.counting`` is known false".
* :func:`fixpoint` — a worklist solver for any
  :class:`ForwardAnalysis`: states join at merge points and the
  transfer function is applied until nothing changes. Lattices are the
  analysis's own business; the solver only needs ``join``, ``transfer``
  and equality.

Exception edges are *explicit-control-flow only*: a ``raise`` statement
jumps to the innermost enclosing handler/finally (or the function's
exit), and every statement inside a ``try`` body may jump to that
``try``'s handlers — but an ordinary call outside any ``try`` is not
treated as a potential exit. Treating every expression as may-raise
would make "on all paths" vacuously false everywhere, which is exactly
the noise a balance rule cannot afford. ``finally`` bodies are built
once and wired to every way their ``try`` can be left (normal fall-off,
``return``/``break``/``continue``/``raise``), so the canonical

    enter_phase(name)
    try:
        yield
    finally:
        exit_phase(name)

pattern is recognized as balanced on every path, including the
exceptional ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Edge labels a branch header emits. Plain sequencing uses ``""``.
TRUE, FALSE = "true", "false"
LOOP_BODY, LOOP_EXIT = "body", "exit"


@dataclass
class CFGNode:
    """One statement (or branch header) in a function's control flow."""

    index: int
    stmt: Optional[ast.stmt]
    kind: str  # "entry" | "exit" | "stmt" | "branch" | "loop" | "with" | "except" | "match"
    succs: List[Tuple[int, str]] = field(default_factory=list)
    preds: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0


class CFG:
    """A function's control-flow graph. ``nodes[0]`` is the entry,
    ``nodes[1]`` the (unique) exit every path converges to."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")

    def _new(self, stmt: Optional[ast.stmt], kind: str) -> CFGNode:
        node = CFGNode(index=len(self.nodes), stmt=stmt, kind=kind)
        self.nodes.append(node)
        return node

    def connect(self, src: CFGNode, dst: CFGNode, label: str = "") -> None:
        if (dst.index, label) not in src.succs:
            src.succs.append((dst.index, label))
            dst.preds.append((src.index, label))

    def successors(self, node: CFGNode) -> Iterator[Tuple[CFGNode, str]]:
        for idx, label in node.succs:
            yield self.nodes[idx], label


# A frontier is the set of dangling (node, edge-label) pairs still
# waiting for their successor while the builder walks a statement list.
Frontier = List[Tuple[CFGNode, str]]


@dataclass
class _TryFrame:
    """Wiring state for one ``try`` while its body is being built."""

    handler_entries: List[CFGNode] = field(default_factory=list)
    finally_entry: Optional[CFGNode] = None
    # Abrupt continuations registered by return/break/continue/raise that
    # must run after this frame's ``finally`` body.
    pending: List[CFGNode] = field(default_factory=list)
    # Nodes created inside the try body (implicit may-raise sources).
    body_nodes: List[CFGNode] = field(default_factory=list)


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        # (break target pending-lists, continue target) per open loop —
        # targets are resolved lazily because the loop's exit node set is
        # only known after its body is built.
        self._loop_breaks: List[List[CFGNode]] = []
        self._loop_heads: List[CFGNode] = []
        # Open try frames, innermost last.
        self._tries: List[_TryFrame] = []

    # -- plumbing ------------------------------------------------------
    def _connect_frontier(self, frontier: Frontier, node: CFGNode) -> None:
        for src, label in frontier:
            self.cfg.connect(src, node, label)

    def _record_body_node(self, node: CFGNode) -> None:
        for frame in self._tries:
            frame.body_nodes.append(node)

    def _innermost_finallies(self, upto: Optional[_TryFrame] = None) -> List[_TryFrame]:
        """Open frames with a ``finally``, innermost first, stopping at
        (and excluding) ``upto``."""
        out: List[_TryFrame] = []
        for frame in reversed(self._tries):
            if frame is upto:
                break
            if frame.finally_entry is not None:
                out.append(frame)
        return out

    def _route_abrupt(self, node: CFGNode, target: CFGNode) -> None:
        """Route an abrupt exit through every intervening ``finally``."""
        chain = self._innermost_finallies()
        if not chain:
            self.cfg.connect(node, target)
            return
        self.cfg.connect(node, chain[0].finally_entry or target)
        for inner, outer in zip(chain, chain[1:]):
            entry = outer.finally_entry
            if entry is not None and entry not in inner.pending:
                inner.pending.append(entry)
        if target not in chain[-1].pending:
            chain[-1].pending.append(target)

    def _raise_target(self) -> Optional[CFGNode]:
        """Where an explicit ``raise`` lands: innermost handler or
        finally, else the function exit (``None`` means exit)."""
        for frame in reversed(self._tries):
            if frame.handler_entries:
                return frame.handler_entries[0]
            if frame.finally_entry is not None:
                return frame.finally_entry
        return None

    # -- statement walk ------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self.seq(body, [(self.cfg.entry, "")])
        self._connect_frontier(frontier, self.cfg.exit)
        return self.cfg

    def seq(self, stmts: Sequence[ast.stmt], frontier: Frontier) -> Frontier:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.stmt(stmt, frontier)
        return frontier

    def stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self.cfg._new(stmt, "stmt")
            self._connect_frontier(frontier, node)
            self._record_body_node(node)
            self._route_abrupt(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg._new(stmt, "stmt")
            self._connect_frontier(frontier, node)
            self._record_body_node(node)
            target = self._raise_target()
            if target is None:
                self._route_abrupt(node, self.cfg.exit)
            else:
                self.cfg.connect(node, target)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new(stmt, "stmt")
            self._connect_frontier(frontier, node)
            self._record_body_node(node)
            if self._loop_breaks:
                self._loop_breaks[-1].append(node)
            else:  # malformed code; treat as function exit
                self._route_abrupt(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new(stmt, "stmt")
            self._connect_frontier(frontier, node)
            self._record_body_node(node)
            if self._loop_heads:
                self._route_abrupt(node, self._loop_heads[-1])
            else:
                self._route_abrupt(node, self.cfg.exit)
            return []
        # Simple statement (assignments, expressions, nested defs, ...).
        node = self.cfg._new(stmt, "stmt")
        self._connect_frontier(frontier, node)
        self._record_body_node(node)
        return [(node, "")]

    def _if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        header = self.cfg._new(stmt, "branch")
        self._connect_frontier(frontier, header)
        self._record_body_node(header)
        out = self.seq(stmt.body, [(header, TRUE)])
        if stmt.orelse:
            out = out + self.seq(stmt.orelse, [(header, FALSE)])
        else:
            out = out + [(header, FALSE)]
        return out

    @staticmethod
    def _always_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        header = self.cfg._new(stmt, "loop")
        self._connect_frontier(frontier, header)
        self._record_body_node(header)
        breaks: List[CFGNode] = []
        self._loop_breaks.append(breaks)
        self._loop_heads.append(header)
        body_out = self.seq(stmt.body, [(header, TRUE)])
        self._connect_frontier(body_out, header)  # loop back
        self._loop_breaks.pop()
        self._loop_heads.pop()
        out: Frontier = []
        if not self._always_true(stmt.test):
            if stmt.orelse:
                out = self.seq(stmt.orelse, [(header, FALSE)])
            else:
                out = [(header, FALSE)]
        out = out + [(n, "") for n in breaks]
        return out

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], frontier: Frontier) -> Frontier:
        header = self.cfg._new(stmt, "loop")
        self._connect_frontier(frontier, header)
        self._record_body_node(header)
        breaks: List[CFGNode] = []
        self._loop_breaks.append(breaks)
        self._loop_heads.append(header)
        body_out = self.seq(stmt.body, [(header, LOOP_BODY)])
        self._connect_frontier(body_out, header)
        self._loop_breaks.pop()
        self._loop_heads.pop()
        if stmt.orelse:
            out = self.seq(stmt.orelse, [(header, LOOP_EXIT)])
        else:
            out = [(header, LOOP_EXIT)]
        return out + [(n, "") for n in breaks]

    def _with(self, stmt: Union[ast.With, ast.AsyncWith], frontier: Frontier) -> Frontier:
        header = self.cfg._new(stmt, "with")
        self._connect_frontier(frontier, header)
        self._record_body_node(header)
        return self.seq(stmt.body, [(header, "")])

    def _match(self, stmt: ast.Match, frontier: Frontier) -> Frontier:
        header = self.cfg._new(stmt, "match")
        self._connect_frontier(frontier, header)
        self._record_body_node(header)
        out: Frontier = []
        for i, case in enumerate(stmt.cases):
            out = out + self.seq(case.body, [(header, f"case{i}")])
        return out + [(header, "nomatch")]

    def _try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        frame = _TryFrame()
        for handler in stmt.handlers:
            node = self.cfg._new(handler, "except")  # type: ignore[arg-type]
            frame.handler_entries.append(node)
        if stmt.finalbody:
            frame.finally_entry = self.cfg._new(stmt, "stmt")
        self._tries.append(frame)

        body_out = self.seq(stmt.body, frontier)
        if stmt.orelse:
            body_out = self.seq(stmt.orelse, body_out)

        # Any statement inside the try body may raise into each handler
        # (and, with no matching handler, straight into the finally).
        for node in frame.body_nodes:
            for entry in frame.handler_entries:
                self.cfg.connect(node, entry, "raise")
            if frame.finally_entry is not None:
                self.cfg.connect(node, frame.finally_entry, "raise")

        self._tries.pop()

        handler_out: Frontier = []
        for handler, entry in zip(stmt.handlers, frame.handler_entries):
            handler_out = handler_out + self.seq(handler.body, [(entry, "")])

        normal_out = body_out + handler_out
        if frame.finally_entry is None:
            return normal_out

        self._connect_frontier(normal_out, frame.finally_entry)
        # The finally body runs outside the frame (its own aborts route to
        # enclosing frames), between the entry marker and the targets.
        fin_out = self.seq(stmt.finalbody, [(frame.finally_entry, "")])
        for target in frame.pending:
            self._connect_frontier(fin_out, target)
        # Uncaught-exception continuation: the finally may also re-raise
        # outward; that path leaves the function (or reaches the next
        # enclosing handler). Model the leave-the-function leg only when
        # an explicit raise routed through this finally (covered by
        # ``pending``); plain fall-off continues normally.
        return fin_out


def build_cfg(func: Union[FunctionNode, ast.Module]) -> CFG:
    """Build the control-flow graph of one function (or module) body."""
    return _Builder().build(func.body)


def iter_functions(
    tree: ast.AST, *, prefix: str = ""
) -> Iterator[Tuple[str, FunctionNode]]:
    """Yield ``(qualname, def)`` for every function in ``tree``, including
    methods and nested defs (``outer.<locals>.inner`` style dotted names,
    without the ``<locals>`` noise: just ``outer.inner``)."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            yield qual, node
            yield from iter_functions(node, prefix=f"{qual}.")
        elif isinstance(node, ast.ClassDef):
            yield from iter_functions(node, prefix=f"{prefix}{node.name}.")
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.AsyncWith,
                               ast.For, ast.AsyncFor, ast.While)):
            # Defs can hide under conditional/guarded blocks at any level.
            yield from iter_functions(node, prefix=prefix)


S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """A forward dataflow problem: states flow along CFG edges.

    Subclasses define the lattice (``join`` + equality via ``==``) and
    the transfer function. ``transfer_edge`` optionally refines the
    post-state per outgoing edge label — the hook branch-sensitive
    analyses (counting-mode guards) use.
    """

    def initial_state(self) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        raise NotImplementedError

    def transfer_edge(self, node: CFGNode, label: str, state: S) -> Optional[S]:
        """Refine ``state`` along the edge ``label``; ``None`` kills the
        edge (statically unreachable under this state)."""
        return state

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError


def fixpoint(cfg: CFG, analysis: ForwardAnalysis[S]) -> Dict[int, S]:
    """Solve the analysis over the CFG; returns IN-state per node index.

    Nodes never reached keep no entry. The worklist loops until states
    stabilize, so lattices must have finite height (analyses with
    unbounded state — e.g. phase stacks — cap it themselves).
    """
    in_states: Dict[int, S] = {cfg.entry.index: analysis.initial_state()}
    work: List[int] = [cfg.entry.index]
    while work:
        idx = work.pop()
        node = cfg.nodes[idx]
        out = analysis.transfer(node, in_states[idx])
        for succ, label in node.succs:
            edge_state = analysis.transfer_edge(node, label, out)
            if edge_state is None:
                continue
            if succ not in in_states:
                in_states[succ] = edge_state
                work.append(succ)
            else:
                joined = analysis.join(in_states[succ], edge_state)
                if joined != in_states[succ]:
                    in_states[succ] = joined
                    work.append(succ)
    return in_states


def exit_states(cfg: CFG, analysis: ForwardAnalysis[S]) -> List[Tuple[CFGNode, S]]:
    """Solve and return the states flowing into the function exit, one
    per predecessor (return statements and the fall-off tail)."""
    in_states = fixpoint(cfg, analysis)
    out: List[Tuple[CFGNode, S]] = []
    for idx, label in cfg.exit.preds:
        if idx in in_states:
            node = cfg.nodes[idx]
            state = analysis.transfer(node, in_states[idx])
            refined = analysis.transfer_edge(node, label, state)
            if refined is not None:
                out.append((node, refined))
    return out
