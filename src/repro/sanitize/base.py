"""Sanitizer plumbing: violations, the error type, and the observer base.

A *sanitizer* turns one of the model's axioms into an executable
assertion. Two flavors share this module's plumbing:

* **live sanitizers** — :class:`Sanitizer` subclasses, which are ordinary
  :class:`~repro.observe.MachineObserver` instances attached to a machine's
  event bus; they watch a run as it happens and accumulate
  :class:`Violation` records instead of raising mid-run (so a single run
  reports *every* breach, not just the first);
* **trace sanitizers** — :class:`TraceSanitizer` subclasses, which check a
  recorded :class:`~repro.trace.program.Program` (or a report derived from
  one) after the fact.

Both expose the same surface: ``violations`` (the accumulated evidence),
``ok`` (no violations), and ``verify()`` (raise :class:`SanitizerError`
carrying all of them). Violation collection is capped so a hot loop that
breaches an invariant millions of times still produces a readable report;
the suppressed remainder is counted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.errors import MachineError
from ..observe.base import MachineObserver

#: Per-sanitizer cap on recorded violations; everything past it is only
#: counted (``suppressed``), keeping reports readable and memory bounded.
MAX_VIOLATIONS = 20


@dataclass(frozen=True)
class Violation:
    """One observed breach of a model invariant."""

    rule: str
    message: str
    where: str = ""

    def render(self) -> str:
        loc = f" [{self.where}]" if self.where else ""
        return f"{self.rule}: {self.message}{loc}"


class SanitizerError(MachineError):
    """One or more model invariants were violated.

    Carries the full list of :class:`Violation` records in
    :attr:`violations`; the message renders them all.
    """

    def __init__(self, violations: tuple[Violation, ...] | list[Violation]):
        self.violations = tuple(violations)
        lines = "\n".join("  " + v.render() for v in self.violations)
        super().__init__(
            f"{len(self.violations)} model-invariant violation(s):\n{lines}"
        )

    def __reduce__(self):
        # Same picklability concern as CapacityError: rebuild from the
        # original argument, not the formatted message.
        return (type(self), (self.violations,))


class _Collector:
    """Shared violation-accumulation behavior (mixed into both flavors)."""

    rule: str = "SANITIZER"

    def __init__(self) -> None:
        self._violations: list[Violation] = []
        self._suppressed = 0

    def flag(self, message: str, *, where: str = "") -> None:
        """Record one violation (or count it once the cap is reached)."""
        if len(self._violations) >= MAX_VIOLATIONS:
            self._suppressed += 1
            return
        self._violations.append(Violation(self.rule, message, where))

    @property
    def violations(self) -> list[Violation]:
        """Accumulated violations, current through every event emitted so
        far — on a live sanitizer this flushes the core's batch buffer
        first, so the readout is exact under batched dispatch too."""
        self._pre_finalize()
        return self._violations

    @property
    def suppressed(self) -> int:
        """Violations counted past the cap (flushes like ``violations``)."""
        self._pre_finalize()
        return self._suppressed

    @property
    def ok(self) -> bool:
        """True when no violation has been observed (after finalizing)."""
        self._pre_finalize()
        self._finalize()
        return not self.violations

    def verify(self) -> None:
        """Raise :class:`SanitizerError` if any violation was observed."""
        self._pre_finalize()
        self._finalize()
        if self.violations:
            raise SanitizerError(tuple(self.violations))

    def _pre_finalize(self) -> None:
        """Hook run before finalizing (live sanitizers flush the bus here)."""

    def _finalize(self) -> None:
        """Hook for end-of-run checks (ledger reconciliation, open rounds).

        Must be idempotent: ``ok``/``verify()`` may be consulted more than
        once.
        """

    def describe(self) -> str:
        n = len(self.violations) + self.suppressed
        return f"{self.rule}: {'clean' if n == 0 else f'{n} violation(s)'}"


class Sanitizer(_Collector, MachineObserver):
    """Base class for live (event-bus) sanitizers.

    Subclasses override the machine events they check. The attached core
    is available as :attr:`core` from ``on_attach`` onward, so checks can
    read machine state (ledger occupancy, block store) directly — reading
    is free in the model; sanitizers never mutate (lint rule AEM103).
    """

    def __init__(self) -> None:
        _Collector.__init__(self)
        self.core = None  # set on attach
        self.events = 0  # events this sanitizer has inspected

    def on_attach(self, core) -> None:
        self.core = core

    def _pre_finalize(self) -> None:
        # Verdicts must cover every event emitted so far, including the
        # ones still buffered in the core's batch.
        core = self.core
        if core is not None:
            core.flush_events()

    def _where(self) -> str:
        return f"event {self.events}"


class TraceSanitizer(_Collector):
    """Base class for after-the-fact (recorded program) sanitizers."""
