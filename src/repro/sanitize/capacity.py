"""CapacitySanitizer: the AEM's defining constraint, ``occupancy <= M``.

The model (Section 2) allows at most ``M`` atoms resident in internal
memory and moves data in blocks of at most ``B`` atoms. The machines
normally enforce the first through the
:class:`~repro.machine.internal.InternalMemory` ledger, but enforcement
can be disabled (``enforce_capacity=False``) — and the flash machine runs
with it off by design. This sanitizer re-checks both constraints from the
*outside*, at every event, so a run that cheats the ledger (or a ledger
bug itself) is caught regardless of the enforcement switch.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..observe.batch import KIND_READ, KIND_TOUCH, KIND_WRITE
from .base import Sanitizer


class CapacitySanitizer(Sanitizer):
    """Internal memory never exceeds its capacity; transfers never exceed B.

    Parameters
    ----------
    capacity:
        Atom capacity to check against; defaults to the attached core's
        ledger capacity (the machine's ``M``).
    block_size:
        Maximum atoms per block transfer; defaults to the attached core's
        block store ``B``.
    """

    rule = "CAPACITY"

    def __init__(
        self, *, capacity: Optional[int] = None, block_size: Optional[int] = None
    ):
        super().__init__()
        self.capacity = capacity
        self.block_size = block_size
        self.peak = 0

    def on_attach(self, core) -> None:
        super().on_attach(core)
        if self.capacity is None:
            self.capacity = core.mem.capacity
        if self.block_size is None:
            self.block_size = core.disk.B

    # ------------------------------------------------------------------
    # Checks.
    # ------------------------------------------------------------------
    def _check_occupancy(self) -> None:
        occ = self.core.mem.occupancy
        if occ > self.peak:
            self.peak = occ
        if occ > self.capacity:
            self.flag(
                f"internal memory holds {occ} atoms, capacity is {self.capacity}",
                where=self._where(),
            )

    def _check_block(self, kind: str, addr: int, items: Sequence) -> None:
        if len(items) > self.block_size:
            self.flag(
                f"{kind} of {len(items)} atoms at block {addr} exceeds "
                f"block size B={self.block_size}",
                where=self._where(),
            )

    # ------------------------------------------------------------------
    # Event handlers.
    # ------------------------------------------------------------------
    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._check_block("read", addr, items)
        self._check_occupancy()

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._check_block("write", addr, items)
        self._check_occupancy()

    def on_acquire(self, k: int, what: str) -> None:
        self.events += 1
        self._check_occupancy()

    def on_release(self, k: int) -> None:
        self.events += 1
        self._check_occupancy()

    # ------------------------------------------------------------------
    # Vectorized delivery. The batch's ``occs`` column records ledger
    # occupancy *after* each event — exactly what the synchronous
    # handlers read live — so a clean batch reduces to two max() calls.
    # ------------------------------------------------------------------
    def on_batch(self, batch) -> None:
        mx = max(batch.occs)
        if mx > self.peak:
            self.peak = mx
        if mx <= self.capacity and max(batch.lengths) <= self.block_size:
            # Touch events are not capacity events (no synchronous
            # handler exists for them); everything else counts. A touch
            # whose k exceeds B can land us in the slow loop below, but
            # the loop filters by kind, so that costs time, not verdicts.
            self.events += batch.n - batch.touch_events
            return
        capacity = self.capacity
        block_size = self.block_size
        for kind, addr, length, occ in zip(
            batch.kinds, batch.addrs, batch.lengths, batch.occs
        ):
            if kind == KIND_TOUCH:
                continue
            self.events += 1
            if kind <= KIND_WRITE and length > block_size:
                name = "read" if kind == KIND_READ else "write"
                self.flag(
                    f"{name} of {length} atoms at block {addr} exceeds "
                    f"block size B={block_size}",
                    where=self._where(),
                )
            if occ > capacity:
                self.flag(
                    f"internal memory holds {occ} atoms, capacity is {capacity}",
                    where=self._where(),
                )
