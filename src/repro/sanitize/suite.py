"""SanitizerSuite: attach the live sanitizers to a machine in one call.

``attach_sanitizers(machine)`` is the one-liner the pytest plugin, the
``repro-aem check --traces`` battery, and ad-hoc debugging all use: it
picks the right sanitizer configuration for the machine's model (AEM-like
machines get the inferred ``1``/``omega`` costs; flash machines get
``Br``/``Bw``) and returns a :class:`SanitizerSuite` whose ``verify()``
raises one :class:`~repro.sanitize.base.SanitizerError` carrying every
violation from every member.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .base import Sanitizer, SanitizerError, Violation
from .capacity import CapacitySanitizer
from .cost import CostSanitizer
from .provenance import ProvenanceSanitizer
from .rounds import RoundFormSanitizer


class SanitizerSuite:
    """A bundle of live sanitizers verified together."""

    def __init__(self, sanitizers: Iterable[Sanitizer]):
        self.sanitizers = list(sanitizers)

    def __iter__(self):
        return iter(self.sanitizers)

    def __getitem__(self, kind: type) -> Sanitizer:
        """The member of the given class (e.g. ``suite[CostSanitizer]``)."""
        for s in self.sanitizers:
            if isinstance(s, kind):
                return s
        raise KeyError(kind.__name__)

    @property
    def violations(self) -> list[Violation]:
        out: list[Violation] = []
        for s in self.sanitizers:
            s._pre_finalize()
            s._finalize()
            out.extend(s.violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def verify(self) -> None:
        """Raise :class:`SanitizerError` with every member's violations."""
        found = self.violations
        if found:
            raise SanitizerError(tuple(found))

    def describe(self) -> str:
        return "; ".join(s.describe() for s in self.sanitizers)


def attach_sanitizers(
    machine,
    *,
    rounds: bool = False,
    budget: Optional[float] = None,
) -> SanitizerSuite:
    """Attach the standard live sanitizers to ``machine``; returns the suite.

    ``machine`` may be an :class:`~repro.machine.aem.AEMMachine` (or its
    EM/ARAM specializations) or a :class:`~repro.machine.flash.FlashMachine`
    — anything exposing ``attach`` and a ``core``. Flash machines are
    recognized by their ``Br``/``Bw`` block sizes and get explicit
    volume-based expected costs.

    ``rounds=True`` additionally attaches a :class:`RoundFormSanitizer`
    (only meaningful for runs that declare round boundaries).
    """
    is_flash = hasattr(machine, "Br") and hasattr(machine, "Bw")
    sanitizers: list[Sanitizer] = [
        CapacitySanitizer(),
        CostSanitizer(read_cost=machine.Br, write_cost=machine.Bw)
        if is_flash
        else CostSanitizer(),
    ]
    # Provenance follows atom uids through payloads, which counting
    # machines never materialize; the capacity/cost rules still apply in
    # full on the counting event stream.
    if not getattr(machine, "counting", False):
        sanitizers.append(ProvenanceSanitizer())
    if rounds:
        sanitizers.append(RoundFormSanitizer(budget=budget))
    for s in sanitizers:
        machine.attach(s)
    return SanitizerSuite(sanitizers)
