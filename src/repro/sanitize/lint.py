"""Repo-specific source lint: the model's layering rules, mechanically.

The trace sanitizers check *runs*; this module checks *source*. Each rule
encodes a structural invariant of this repository that, when broken,
lets code cheat the model silently — an algorithm poking the block store
moves data without I/O cost, an observer mutating machine state makes
observation non-free, a hand-rolled cost dict bypasses the audited
ledger. Rules are AST-based (no third-party dependency) and every rule
has an ID, a docstring, and an escape hatch::

    some_code()  # lint: disable=AEM102
    # lint: disable-file=AEM104     (anywhere in the file, disables for it)

Run via ``repro-aem check --lint`` or :func:`lint_paths`.

The lint is the *syntactic* tier of the static-analysis stack: each file
is checked in isolation, against a :class:`~repro.sanitize.semantic
.ModuleModel` of its own imports so aliased references (``from
repro.machine.aem import AEMMachine as AM``, ``import repro.machine.aem
as aem``, local ``M = AEMMachine`` rebinds) resolve to the same rule
hits as direct names. Whole-program questions — phase balance on every
path, counting-safety of a sorter's call graph, batch refs escaping
through aliases — live in :mod:`repro.sanitize.analysis` (rules
AEM201-AEM204) on the CFG/dataflow engine in
:mod:`repro.sanitize.flow`.

Rules
-----
AEM101
    No module outside ``repro.machine`` touches ``BlockStore`` internals
    (``_blocks``, ``_next_addr``) on another object. (Unrelated private
    attributes on ``self`` are fine.)
AEM102
    Algorithm packages (sorting, permute, spmxv, structures, primitives,
    flashmodel) move data only through machine APIs: no
    ``*.disk.get/set/restore/load_items/dump_items`` access. Block sizes
    come from ``machine.block_len``; data moves via ``read``/``write``.
AEM103
    Observer classes (subclasses of ``MachineObserver``) never mutate
    machine state: no calls to mutating core/ledger/store methods and no
    attribute assignment on the observed core from inside a handler.
AEM104
    No bare dict cost accounting: a dict literal with both ``"Qr"`` and
    ``"Qw"`` keys outside the ledger module (``repro.machine.cost``) is a
    shadow cost record; use :class:`~repro.machine.cost.CostRecord`.
AEM105
    Observer classes define no ``on_*`` methods outside the machine-event
    vocabulary (the static mirror of the attach-time runtime check).
AEM106
    Nothing outside ``repro.machine`` assigns to a ledger's
    ``occupancy``/``peak``/``capacity`` — tampering with the capacity
    accounting from outside the machine layer.
AEM107
    Vectorized observers do not retain references to the reused batch or
    its column arrays (``kinds``/``addrs``/``lengths``/``costs``/
    ``occs``/``whats``) beyond ``on_batch``: the bus clears and refills
    those buffers in place after every flush, so a stored reference goes
    stale silently. Snapshot with ``list(batch.addrs)`` (or copy the
    scalar aggregates) instead.
AEM108
    The serving layer (``repro.serve``) never constructs machines
    directly — no ``AEMMachine``/``FlashMachine``/``MachineCore`` calls
    (including ``.for_algorithm``). Server handlers route every
    measurement through :mod:`repro.api`, so served answers share the
    engine's caching/dedup identity and stay bit-identical to direct
    ``api.evaluate`` calls; a machine built inside a handler bypasses
    all of that.
AEM109
    Observers keep their hands off the ambient span machinery (the
    AEM107 of trace propagation): inside an observer class, the span
    stack and collector mutators (``use_span``, ``use_collector``,
    ``set_collector``, ``install_span_observer_factory``) are never
    called, and the ambient readers (``current_span``,
    ``current_collector``) appear only in the sanctioned hooks —
    ``__init__``, ``on_attach``, ``on_detach``. A dispatched handler
    grabbing ``current_span()`` retains whatever request context happens
    to be live at flush time, which is not necessarily the run it is
    observing (batched dispatch defers handler execution); take the span
    as a constructor argument like
    :class:`~repro.telemetry.spans.SpanPhaseRecorder` does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from ..observe.base import EVENTS
from .semantic import ModuleModel, is_machine_class, local_rebinds

#: Packages holding *algorithms* — code that runs on a machine and must
#: move data exclusively through the machine API (rule AEM102).
ALGORITHM_PACKAGES = (
    "sorting",
    "permute",
    "spmxv",
    "structures",
    "primitives",
    "flashmodel",
)

#: BlockStore internals nothing outside repro.machine may touch (AEM101).
_STORE_INTERNALS = {"_blocks", "_next_addr"}

#: ``.disk.<attr>`` accesses forbidden in algorithm packages (AEM102).
_DISK_FORBIDDEN = {"get", "set", "restore", "load_items", "dump_items"}

#: Mutating methods an observer must not call on the observed machine
#: core / ledger / store (AEM103).
_MUTATORS = {
    "acquire",
    "release",
    "drain",
    "read_block",
    "write_block",
    "emit_read",
    "emit_write",
    "round_boundary",
    "set",
    "restore",
    "free",
    "allocate",
    "allocate_one",
    "load_items",
    "reset",
}

#: Names an observer handler may reach machine state through (AEM103).
_CORE_ROOTS = {"core", "machine"}

#: Event vocabulary for AEM105 (lifecycle hooks and the vectorized
#: batch hook included).
_ALLOWED_HANDLERS = set(EVENTS) | {"on_attach", "on_detach", "on_batch"}

#: Column arrays of :class:`repro.observe.batch.EventBatch` — the mutable
#: buffers the bus reuses across flushes (AEM107).
_BATCH_COLUMNS = {"kinds", "addrs", "lengths", "costs", "occs", "whats"}

#: Machine classes the serving layer must never construct (AEM108);
#: cost queries route through repro.api instead.
_MACHINE_CLASSES = {"AEMMachine", "FlashMachine", "MachineCore"}

#: Span-stack/collector mutators no observer may call at all (AEM109).
_SPAN_MUTATORS = {
    "use_span",
    "use_collector",
    "set_collector",
    "install_span_observer_factory",
}

#: Ambient span readers observers may call only in sanctioned hooks
#: (AEM109): construction and attach/detach, never dispatched handlers.
_SPAN_READERS = {"current_span", "current_collector"}

_SANCTIONED_SPAN_HOOKS = {"__init__", "on_attach", "on_detach"}

_DISABLE_LINE = re.compile(r"#\s*lint:\s*disable\s*=\s*([A-Z0-9,\s]+)")
_DISABLE_FILE = re.compile(r"#\s*lint:\s*disable-file\s*=\s*([A-Z0-9,\s]+)")


@dataclass(frozen=True)
class LintViolation:
    """One rule breach at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _parse_disables(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """``(line -> rules disabled on it, rules disabled file-wide)``."""
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DISABLE_LINE.search(text)
        if m:
            per_line.setdefault(lineno, set()).update(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
        m = _DISABLE_FILE.search(text)
        if m:
            per_file.update(r.strip() for r in m.group(1).split(",") if r.strip())
    return per_line, per_file


def _attr_root(node: ast.expr) -> Optional[str]:
    """The leftmost name of an attribute chain (``a.b.c`` -> ``"a"``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_observer_class(node: ast.ClassDef) -> bool:
    """Textual check: does any base mention ``MachineObserver``/``Sanitizer``?

    Lint is per-file static analysis, so this is heuristic by design: it
    catches direct subclasses and the conventional naming; exotic indirect
    subclasses are covered by the runtime attach-time validation instead.
    """
    for base in node.bases:
        text = ast.unparse(base)
        tail = text.rsplit(".", 1)[-1]
        if tail in ("MachineObserver", "Sanitizer") or tail.endswith("Observer"):
            return True
    return False


class _Checker(ast.NodeVisitor):
    """One file's AST walk, collecting violations for every rule."""

    def __init__(
        self,
        path: Path,
        rel: str,
        module_parts: tuple[str, ...],
        model: Optional[ModuleModel] = None,
    ):
        self.rel = rel
        self.model = model
        self.in_machine_pkg = "machine" in module_parts
        self.in_algorithm_pkg = any(p in module_parts for p in ALGORITHM_PACKAGES)
        self.in_cost_module = module_parts[-2:] == ("machine", "cost")
        self.in_serve_pkg = "serve" in module_parts
        self.found: list[LintViolation] = []
        #: End line of each violation's statement, parallel to ``found`` —
        #: a ``# lint: disable=`` on any line of a multi-line statement
        #: suppresses it.
        self.spans: list[int] = []
        self._observer_depth = 0
        # Function-local names rebound to machine classes (AEM108), one
        # alias map per enclosing function, innermost last.
        self._machine_rebinds: list[dict[str, str]] = []
        # Name of the batch parameter while inside an observer's
        # ``on_batch`` body (AEM107); None elsewhere.
        self._batch_param: Optional[str] = None
        # Name of the observer method being visited (AEM109); nested
        # defs inherit it — a closure runs in its handler's context.
        self._observer_method: Optional[str] = None

    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.found.append(LintViolation(rule, self.rel, line, message))
        self.spans.append(getattr(node, "end_lineno", None) or line)

    # -- AEM101 / AEM102 / AEM106 ------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self.in_machine_pkg and node.attr in _STORE_INTERNALS:
            root = _attr_root(node)
            if root != "self":
                self.flag(
                    "AEM101",
                    node,
                    f"access to BlockStore internal {node.attr!r} outside "
                    "repro.machine; use the machine/store API",
                )
        if (
            self.in_algorithm_pkg
            and node.attr in _DISK_FORBIDDEN
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "disk"
        ):
            self.flag(
                "AEM102",
                node,
                f"algorithm code reaching into the block store "
                f"(.disk.{node.attr}); move data through machine "
                "read/write and size blocks via machine.block_len",
            )
        self.generic_visit(node)

    def _check_ledger_assign(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and target.attr in ("occupancy", "peak", "capacity")
            and not self.in_machine_pkg
        ):
            root = _attr_root(target)
            if root != "self":
                self.flag(
                    "AEM106",
                    target,
                    f"assignment to ledger field {target.attr!r} outside "
                    "repro.machine (capacity accounting is the ledger's)",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_ledger_assign(t)
            self._check_observer_assign(t)
        self._check_batch_retention(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_ledger_assign(node.target)
        self._check_observer_assign(node.target)
        self.generic_visit(node)

    # -- AEM103 / AEM105 ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        observer = _is_observer_class(node)
        if observer:
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name.startswith("on_")
                    and item.name not in _ALLOWED_HANDLERS
                ):
                    self.flag(
                        "AEM105",
                        item,
                        f"handler {item.name!r} matches no machine event "
                        f"(known: {', '.join(EVENTS)})",
                    )
            self._observer_depth += 1
        self.generic_visit(node)
        if observer:
            self._observer_depth -= 1

    # -- AEM107 --------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        prev = self._batch_param
        prev_method = self._observer_method
        if self.in_serve_pkg and self.model is not None:
            rebinds = {
                name: qual
                for name, qual in local_rebinds(node, self.model).items()
                if is_machine_class(qual)
            }
            self._machine_rebinds.append(rebinds)
        if self._observer_depth > 0 and node.name == "on_batch":
            args = list(node.args.posonlyargs) + list(node.args.args)
            # Second positional parameter after self is the batch.
            if len(args) >= 2:
                self._batch_param = args[1].arg
        if self._observer_depth > 0 and prev_method is None:
            self._observer_method = node.name
        # Nested defs inside on_batch inherit the batch name (closures can
        # retain too); leaving on_batch restores the previous state.
        self.generic_visit(node)
        if self.in_serve_pkg and self.model is not None:
            self._machine_rebinds.pop()
        self._batch_param = prev
        self._observer_method = prev_method

    def _is_batch_ref(self, node: ast.expr) -> bool:
        """Is this expression the live batch or one of its column arrays?

        Matches the bare batch parameter and ``batch.<column>`` for the
        reused list columns. ``list(batch.addrs)`` and scalar aggregates
        (``batch.n``, ``batch.reads``, ...) are copies — not matched.
        """
        if self._batch_param is None:
            return False
        if isinstance(node, ast.Name):
            return node.id == self._batch_param
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self._batch_param
            and node.attr in _BATCH_COLUMNS
        )

    def _check_batch_retention(self, node: ast.Assign) -> None:
        if self._batch_param is None:
            return
        values = (
            list(node.value.elts)
            if isinstance(node.value, (ast.Tuple, ast.List))
            else [node.value]
        )
        if not any(self._is_batch_ref(v) for v in values):
            return
        targets: list[ast.expr] = []
        for t in node.targets:
            targets.extend(
                t.elts if isinstance(t, (ast.Tuple, ast.List)) else [t]
            )
        for t in targets:
            if isinstance(t, ast.Attribute) and _attr_root(t) == "self":
                self.flag(
                    "AEM107",
                    node,
                    "observer stores a reference to the reused event batch "
                    "beyond on_batch; the bus clears these buffers in "
                    "place after every flush — snapshot with list(...) "
                    "instead",
                )
                return

    def _reaches_machine_state(self, node: ast.expr) -> bool:
        """Does this attribute chain start at the observed core/machine?

        Matches ``core.*`` / ``machine.*`` (handler parameters) and
        ``self.core.*`` / ``self.machine.*`` / ``self._core.*`` (stored at
        attach). ``self.<other>`` is the observer's own state — allowed.
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        parts.reverse()  # root first
        if not parts:
            return False
        if parts[0] in _CORE_ROOTS:
            return True
        return (
            parts[0] == "self"
            and len(parts) > 1
            and parts[1].lstrip("_") in _CORE_ROOTS
        )

    # -- AEM108 --------------------------------------------------------
    def _resolve_machine_ref(self, expr: ast.expr) -> Optional[str]:
        """Resolve an expression to a machine class through the module's
        import aliases and any function-local rebinds (``AM = AEMMachine``),
        returning the class name it denotes."""
        if self.model is None:
            return None
        locals_map: dict[str, str] = {}
        for rebinds in self._machine_rebinds:
            locals_map.update(rebinds)
        qual = self.model.resolve(expr, locals_map or None)
        if qual is not None and is_machine_class(qual):
            return qual.rsplit(".", 1)[-1]
        if isinstance(expr, ast.Name) and expr.id in locals_map:
            return locals_map[expr.id].rsplit(".", 1)[-1]
        return None

    def _machine_construction(self, func: ast.expr) -> Optional[str]:
        """The machine class this call constructs, if any.

        Matches bare names (``AEMMachine(...)``), qualified references
        (``aem.AEMMachine(...)``), the ``for_algorithm`` classmethod
        constructors (``AEMMachine.for_algorithm(...)``), and — through
        the module's semantic model — import aliases (``from
        repro.machine.aem import AEMMachine as AM``) and local rebinds
        (``M = AEMMachine; M(...)``).
        """
        if isinstance(func, ast.Name) and func.id in _MACHINE_CLASSES:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr in _MACHINE_CLASSES:
                return func.attr
            if func.attr == "for_algorithm":
                base = func.value
                tail = (
                    base.attr
                    if isinstance(base, ast.Attribute)
                    else base.id if isinstance(base, ast.Name) else None
                )
                if tail in _MACHINE_CLASSES:
                    return f"{tail}.for_algorithm"
                aliased_base = self._resolve_machine_ref(base)
                if aliased_base is not None:
                    return f"{aliased_base}.for_algorithm"
        aliased = self._resolve_machine_ref(func)
        if aliased is not None:
            return aliased
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_serve_pkg:
            constructed = self._machine_construction(node.func)
            if constructed is not None:
                self.flag(
                    "AEM108",
                    node,
                    f"serving code constructs a machine directly "
                    f"({constructed}); route the query through repro.api "
                    "so it shares the engine's cache/dedup identity",
                )
        if (
            self._observer_depth > 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and self._reaches_machine_state(node.func.value)
        ):
            self.flag(
                "AEM103",
                node,
                f"observer mutates machine state ({node.func.attr}); "
                "observation must be free — observers only read",
            )
        if (
            self._batch_param is not None
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and _attr_root(node.func.value) == "self"
            and any(self._is_batch_ref(a) for a in node.args)
        ):
            self.flag(
                "AEM107",
                node,
                "observer appends the reused event batch (or a column "
                "array) to its own state; the bus clears these buffers "
                "in place after every flush — append a copy instead",
            )
        self._check_span_discipline(node)
        self.generic_visit(node)

    # -- AEM109 --------------------------------------------------------
    def _check_span_discipline(self, node: ast.Call) -> None:
        if self._observer_depth == 0:
            return
        func = node.func
        tail = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if tail in _SPAN_MUTATORS:
            self.flag(
                "AEM109",
                node,
                f"observer mutates the ambient span machinery ({tail}); "
                "span propagation belongs to the serving/engine layers — "
                "observers receive their SpanContext at construction",
            )
        elif (
            tail in _SPAN_READERS
            and self._observer_method is not None
            and self._observer_method not in _SANCTIONED_SPAN_HOOKS
        ):
            self.flag(
                "AEM109",
                node,
                f"observer calls {tail}() inside a dispatched handler "
                f"({self._observer_method}); batched dispatch defers "
                "handlers, so the ambient context may belong to another "
                "run — take the span in __init__/on_attach instead",
            )

    def _check_observer_assign(self, target: ast.expr) -> None:
        if (
            self._observer_depth > 0
            and isinstance(target, ast.Attribute)
            and self._reaches_machine_state(target.value)
        ):
            self.flag(
                "AEM103",
                target,
                f"observer assigns to machine state (.{target.attr}); "
                "observation must be free — observers only read",
            )

    # -- AEM104 --------------------------------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        if not self.in_cost_module:
            keys = {
                k.value
                for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
            if {"Qr", "Qw"} <= keys:
                self.flag(
                    "AEM104",
                    node,
                    "bare dict cost accounting (both 'Qr' and 'Qw' keys); "
                    "build a repro.machine.cost.CostRecord instead",
                )
        self.generic_visit(node)


def lint_source(source: str, *, rel: str, module_parts: tuple[str, ...]) -> list[LintViolation]:
    """Lint one file's source text; returns surviving violations."""
    tree = ast.parse(source, filename=rel)
    model = ModuleModel(".".join(module_parts) or rel, tree, path=rel)
    checker = _Checker(Path(rel), rel, module_parts, model)
    checker.visit(tree)
    per_line, per_file = _parse_disables(source)
    out = []
    for v, end_line in zip(checker.found, checker.spans):
        if v.rule in per_file:
            continue
        # A disable comment anywhere on the flagged statement counts —
        # multi-line calls often carry the comment on their closing line.
        span = range(v.line, max(v.line, end_line) + 1)
        if any(v.rule in per_line.get(line, ()) for line in span):
            continue
        out.append(v)
    return out


def _module_parts(path: Path, root: Path) -> tuple[str, ...]:
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = path
    return tuple(rel.with_suffix("").parts)


def iter_python_files(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def lint_paths(paths: Sequence[Path | str]) -> list[LintViolation]:
    """Lint every ``.py`` file under the given files/directories."""
    violations: list[LintViolation] = []
    for entry in paths:
        entry = Path(entry)
        files: Iterable[Path] = (
            iter_python_files(entry) if entry.is_dir() else [entry]
        )
        root = entry if entry.is_dir() else entry.parent
        for f in files:
            source = f.read_text(encoding="utf-8")
            violations.extend(
                lint_source(
                    source,
                    rel=str(f),
                    module_parts=_module_parts(f, root),
                )
            )
    return violations
