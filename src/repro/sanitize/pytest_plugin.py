"""Pytest integration: the ``sanitized_machine`` fixture and global mode.

Two ways to run tests under the sanitizers:

* the :func:`sanitized_machine` factory fixture — build machines whose
  runs are verified at test teardown::

      def test_my_algorithm(sanitized_machine, p_small):
          machine = sanitized_machine(p_small)
          ...  # teardown raises SanitizerError on any violation

* **global mode** — set ``REPRO_SANITIZE=1`` and every
  :class:`~repro.machine.aem.AEMMachine` constructed during a test gets
  the suite attached and verified at teardown, so the *whole existing
  suite* runs under sanitizers with no test changes. Machines built with
  ``enforce_capacity=False`` are exempt (tests use them precisely to
  exercise violations), as are tests marked ``@pytest.mark.no_sanitize``.

Registered from ``tests/conftest.py`` via ``pytest_plugins``.
"""

from __future__ import annotations

import os

import pytest

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from .suite import SanitizerSuite, attach_sanitizers

#: Environment switch for global sanitize mode.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_mode_enabled() -> bool:
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "no_sanitize: skip the REPRO_SANITIZE global machine sanitizers "
        "for this test",
    )


@pytest.fixture
def sanitized_machine():
    """Factory for machines verified by the sanitizer suite at teardown.

    ``sanitized_machine(params, **kw)`` builds an
    ``AEMMachine.for_algorithm`` (pass ``for_algorithm=False`` for an
    exact-capacity machine) with the live sanitizers attached. Teardown
    calls ``verify()`` on every suite, so a test passes only if every run
    it performed respected the model axioms.
    """
    suites: list[SanitizerSuite] = []

    def make(params: AEMParams, *, for_algorithm: bool = True, **kw) -> AEMMachine:
        if for_algorithm:
            machine = AEMMachine.for_algorithm(params, **kw)
        else:
            machine = AEMMachine(params, **kw)
        suites.append(attach_sanitizers(machine))
        return machine

    yield make
    for suite in suites:
        suite.verify()


@pytest.fixture(autouse=True)
def _global_sanitizers(request, monkeypatch):
    """REPRO_SANITIZE=1: sanitize every AEMMachine a test constructs."""
    if not sanitize_mode_enabled():
        yield
        return
    if request.node.get_closest_marker("no_sanitize"):
        yield
        return

    suites: list[SanitizerSuite] = []
    original_init = AEMMachine.__init__

    def patched_init(self, params, *, enforce_capacity=True, **kw):
        original_init(self, params, enforce_capacity=enforce_capacity, **kw)
        # Machines with enforcement off are violation *probes*; leave them.
        if enforce_capacity:
            suites.append(attach_sanitizers(self))

    monkeypatch.setattr(AEMMachine, "__init__", patched_init)
    yield
    for suite in suites:
        suite.verify()
