"""RoundFormSanitizer: Lemma 4.1's round-based normal form, checked live.

Lemma 4.1 converts any AEM program into a *round-based* one on doubled
internal memory: I/Os split into rounds, every round costs at most
``2*omega*m + m``, and internal memory is empty at every round boundary.
The conversion itself lives in :mod:`repro.rounds`; this module makes the
normal form falsifiable in two ways:

* :class:`RoundFormSanitizer` watches a machine that *claims* to run
  round-based (it declares boundaries via ``machine.round_boundary()``)
  and flags boundaries where the ledger was not empty — the
  ``drain()``-returned slot count is exposed by the core as
  ``last_drained`` — and rounds whose accumulated event cost exceeds the
  budget;
* :func:`check_round_form` wraps :func:`repro.rounds.verify.verify_round_based`
  (budget, boundary liveness, replay, reference equivalence) into the
  sanitizer violation vocabulary for recorded programs, which is how
  ``repro-aem check --traces`` validates a real Lemma 4.1 conversion
  end-to-end.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..machine.errors import TraceError
from ..observe.cost import CostObserver
from ..trace.program import Program
from .base import Sanitizer, TraceSanitizer, Violation


class RoundFormSanitizer(Sanitizer):
    """Empty memory at declared round boundaries; bounded per-round cost.

    Parameters
    ----------
    budget:
        Maximum allowed cost per round. Default ``None`` computes the
        Lemma 4.1 guarantee ``2*omega*m + m`` from the attached machine at
        the first boundary (``m = ceil(M/B)`` from the core's ledger
        capacity and block size, ``omega`` from its cost observer).
    """

    rule = "ROUNDFORM"

    def __init__(self, *, budget: Optional[float] = None):
        super().__init__()
        self.budget = budget
        self.rounds = 0
        self.round_cost = 0.0
        self.max_round_cost = 0.0

    def on_attach(self, core) -> None:
        super().on_attach(core)
        if self.budget is None:
            ledgers = core.find(CostObserver)
            omega = ledgers[0].counter.omega if ledgers else 1.0
            m = max(1, -(-core.mem.capacity // core.disk.B))  # ceil(M/B)
            self.budget = 2 * omega * m + m

    def _charge(self, cost: float) -> None:
        self.round_cost += cost
        if self.round_cost > self.max_round_cost:
            self.max_round_cost = self.round_cost

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._charge(cost)

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._charge(cost)

    def on_round_boundary(self, index: int) -> None:
        self.events += 1
        self.rounds += 1
        drained = getattr(self.core, "last_drained", 0)
        if drained:
            self.flag(
                f"round {self.rounds} ended with {drained} atoms still in "
                "internal memory; round-based programs drain to empty",
                where=f"boundary at I/O {index}",
            )
        if self.round_cost > self.budget + 1e-9:
            self.flag(
                f"round {self.rounds} cost {self.round_cost:g} exceeds the "
                f"Lemma 4.1 budget {self.budget:g}",
                where=f"boundary at I/O {index}",
            )
        self.round_cost = 0.0

    def _finalize(self) -> None:
        # The trailing partial round (after the last declared boundary)
        # must respect the budget too.
        if self.round_cost > (self.budget or 0) + 1e-9:
            self.flag(
                f"final round cost {self.round_cost:g} exceeds the "
                f"Lemma 4.1 budget {self.budget:g}"
            )
            self.round_cost = 0.0


class RoundFormProgramSanitizer(TraceSanitizer):
    """Trace-level round-form checks via the Lemma 4.1 verifier."""

    rule = "ROUNDFORM"

    def check_program(
        self,
        program: Program,
        *,
        budget: Optional[float] = None,
        memory_limit: Optional[int] = None,
        reference: Optional[Program] = None,
    ) -> list[Violation]:
        """Run :func:`verify_round_based`; any failure becomes a violation."""
        from ..rounds.verify import verify_round_based

        try:
            verify_round_based(
                program,
                budget=budget,
                memory_limit=memory_limit,
                reference=reference,
            )
        except TraceError as exc:
            self.flag(str(exc))
        return list(self.violations)


def check_round_form(
    program: Program,
    *,
    budget: Optional[float] = None,
    memory_limit: Optional[int] = None,
    reference: Optional[Program] = None,
) -> list[Violation]:
    """Convenience wrapper: round-form violations of a recorded program."""
    return RoundFormProgramSanitizer().check_program(
        program, budget=budget, memory_limit=memory_limit, reference=reference
    )
