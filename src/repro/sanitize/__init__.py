"""Model sanitizers and the repo lint pass: the AEM axioms, executable.

Two halves (see ``docs/sanitizers.md``):

* **trace sanitizers** — observers and program checkers that verify model
  axioms on real runs: capacity (``occupancy <= M``), cost
  (``Q = Qr + omega*Qw`` recomputed from raw events), provenance (no
  teleported data), round form (Lemma 4.1), flash-reduction volume
  (Lemma 4.3);
* **source lint** — AST rules AEM101-AEM108 enforcing the layering that
  keeps the model honest (:mod:`repro.sanitize.lint`).

Entry points: ``repro-aem check [--traces|--lint|--all]``, the
``sanitized_machine`` pytest fixture, ``REPRO_SANITIZE=1`` global test
mode, and :func:`attach_sanitizers` for ad-hoc use.
"""

from .base import (
    MAX_VIOLATIONS,
    Sanitizer,
    SanitizerError,
    TraceSanitizer,
    Violation,
)
from .capacity import CapacitySanitizer
from .cost import CostSanitizer
from .lint import LintViolation, lint_paths, lint_source
from .provenance import ProgramProvenanceSanitizer, ProvenanceSanitizer
from .reduction import ReductionSanitizer
from .rounds import RoundFormProgramSanitizer, RoundFormSanitizer, check_round_form
from .runner import run_lint_checks, run_trace_checks
from .suite import SanitizerSuite, attach_sanitizers

__all__ = [
    "MAX_VIOLATIONS",
    "Sanitizer",
    "SanitizerError",
    "TraceSanitizer",
    "Violation",
    "CapacitySanitizer",
    "CostSanitizer",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "ProgramProvenanceSanitizer",
    "ProvenanceSanitizer",
    "ReductionSanitizer",
    "RoundFormProgramSanitizer",
    "RoundFormSanitizer",
    "check_round_form",
    "run_lint_checks",
    "run_trace_checks",
    "SanitizerSuite",
    "attach_sanitizers",
]
