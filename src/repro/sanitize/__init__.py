"""Model sanitizers and the repo lint pass: the AEM axioms, executable.

Two halves (see ``docs/sanitizers.md``):

* **trace sanitizers** — observers and program checkers that verify model
  axioms on real runs: capacity (``occupancy <= M``), cost
  (``Q = Qr + omega*Qw`` recomputed from raw events), provenance (no
  teleported data), round form (Lemma 4.1), flash-reduction volume
  (Lemma 4.3);
* **source lint** — per-file, alias-aware AST rules AEM101-AEM109
  enforcing the layering that keeps the model honest
  (:mod:`repro.sanitize.lint`);
* **dataflow analysis** — whole-program rules AEM201-AEM204 (phase
  balance, counting-safety inference, batch escape, async safety) built
  on the CFG/fixpoint engine in :mod:`repro.sanitize.flow` and the
  import/alias-resolving semantic model in
  :mod:`repro.sanitize.semantic`, with a committed fingerprint baseline
  and SARIF output (:mod:`repro.sanitize.analysis`,
  :mod:`repro.sanitize.report`).

Entry points: ``repro-aem check [--traces|--lint|--analysis|--all]
[--format text|json|sarif]``, the ``sanitized_machine`` pytest fixture,
``REPRO_SANITIZE=1`` global test mode, and :func:`attach_sanitizers`
for ad-hoc use.
"""

from .analysis import RULES, Finding, analyze_project, infer_counting_safe
from .base import (
    MAX_VIOLATIONS,
    Sanitizer,
    SanitizerError,
    TraceSanitizer,
    Violation,
)
from .capacity import CapacitySanitizer
from .cost import CostSanitizer
from .lint import LintViolation, lint_paths, lint_source
from .provenance import ProgramProvenanceSanitizer, ProvenanceSanitizer
from .reduction import ReductionSanitizer
from .rounds import RoundFormProgramSanitizer, RoundFormSanitizer, check_round_form
from .report import (
    apply_baseline,
    as_findings,
    load_baseline,
    render,
    render_sarif,
    write_baseline,
)
from .runner import run_analysis_checks, run_lint_checks, run_trace_checks
from .suite import SanitizerSuite, attach_sanitizers

__all__ = [
    "RULES",
    "Finding",
    "analyze_project",
    "infer_counting_safe",
    "apply_baseline",
    "as_findings",
    "load_baseline",
    "render",
    "render_sarif",
    "write_baseline",
    "run_analysis_checks",
    "MAX_VIOLATIONS",
    "Sanitizer",
    "SanitizerError",
    "TraceSanitizer",
    "Violation",
    "CapacitySanitizer",
    "CostSanitizer",
    "LintViolation",
    "lint_paths",
    "lint_source",
    "ProgramProvenanceSanitizer",
    "ProvenanceSanitizer",
    "ReductionSanitizer",
    "RoundFormProgramSanitizer",
    "RoundFormSanitizer",
    "check_round_form",
    "run_lint_checks",
    "run_trace_checks",
    "SanitizerSuite",
    "attach_sanitizers",
]
