"""Rendering and baselines for lint violations and analysis findings.

One output pipeline serves both checkers: legacy
:class:`~repro.sanitize.lint.LintViolation` rows are lifted into
:class:`~repro.sanitize.analysis.Finding` (empty symbol) and everything
downstream — text, JSON, SARIF 2.1.0, the baseline file — speaks
``Finding``.

The baseline is a committed JSON file of fingerprints (see
``Finding.fingerprint``: rule + path + symbol + digit-stripped message,
deliberately line-free). ``repro-aem check --analysis`` fails only on
findings *not* in the baseline, so a rule can land before the last
legacy offender is fixed; each suppression carries a human ``reason``
so the debt stays visible. ``--update-baseline`` rewrites the file from
the current findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .analysis import RULES, Finding
from .lint import LintViolation

BASELINE_VERSION = 1

#: Default baseline location, relative to the repository root.
BASELINE_FILENAME = ".aem-baseline.json"


def from_violation(v: LintViolation) -> Finding:
    """Lift a legacy lint violation into the common ``Finding`` shape."""
    return Finding(rule=v.rule, path=v.path, line=v.line, symbol="", message=v.message)


def as_findings(
    rows: Iterable[Union[Finding, LintViolation]]
) -> List[Finding]:
    return [r if isinstance(r, Finding) else from_violation(r) for r in rows]


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    return "\n".join(f.render() for f in findings)


def _finding_payload(f: Finding) -> Dict[str, object]:
    return {
        "rule": f.rule,
        "path": f.path,
        "line": f.line,
        "symbol": f.symbol,
        "message": f.message,
        "fingerprint": f.fingerprint,
    }


def render_json(
    findings: Sequence[Finding], *, suppressed: int = 0
) -> str:
    doc = {
        "version": 1,
        "tool": "repro-aem",
        "findings": [_finding_payload(f) for f in findings],
        "summary": {
            "total": len(findings),
            "suppressed_by_baseline": suppressed,
            "by_rule": _counts_by_rule(findings),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _counts_by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return counts


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 — one run, one rule entry per catalog rule, one
    result per finding. GitHub code scanning ingests this directly."""
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": short},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, short in sorted(RULES.items())
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(RULES))}
    results = []
    for f in findings:
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(1, f.line)},
                    },
                    **(
                        {"logicalLocations": [{"fullyQualifiedName": f.symbol}]}
                        if f.symbol
                        else {}
                    ),
                }
            ],
            "partialFingerprints": {"aemFingerprint/v1": f.fingerprint},
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-aem",
                        "informationUri": "https://example.invalid/repro-aem",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render(findings: Sequence[Finding], fmt: str, *, suppressed: int = 0) -> str:
    if fmt == "text":
        return render_text(findings)
    if fmt == "json":
        return render_json(findings, suppressed=suppressed)
    if fmt == "sarif":
        return render_sarif(findings)
    raise ValueError(f"unknown output format {fmt!r}")


# ----------------------------------------------------------------------
# Baseline.
# ----------------------------------------------------------------------
def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, str]]:
    """Fingerprint -> suppression entry; empty when the file is absent."""
    p = Path(path)
    if not p.exists():
        return {}
    doc = json.loads(p.read_text(encoding="utf-8"))
    out: Dict[str, Dict[str, str]] = {}
    for entry in doc.get("suppressions", []):
        fp = entry.get("fingerprint")
        if isinstance(fp, str) and fp:
            out[fp] = {k: str(v) for k, v in entry.items()}
    return out


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, str]]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, suppressed-by-baseline)``."""
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for f in findings:
        (suppressed if f.fingerprint in baseline else new).append(f)
    return new, suppressed


def write_baseline(
    path: Union[str, Path],
    findings: Sequence[Finding],
    *,
    reason: str = "baselined pre-existing finding",
    previous: Optional[Dict[str, Dict[str, str]]] = None,
) -> None:
    """Write the baseline for ``findings``; keeps reasons from ``previous``
    where fingerprints persist."""
    prior = previous or {}
    suppressions = []
    for f in sorted(findings, key=lambda f: (f.path, f.rule, f.symbol)):
        kept = prior.get(f.fingerprint, {})
        suppressions.append(
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "reason": kept.get("reason", reason),
            }
        )
    doc = {
        "version": BASELINE_VERSION,
        "tool": "repro-aem",
        "comment": (
            "Accepted findings from `repro-aem check --analysis`. Each entry "
            "suppresses one fingerprint (line-number independent); remove "
            "entries as the underlying code is fixed. Regenerate with "
            "`repro-aem check --analysis --update-baseline`."
        ),
        "suppressions": suppressions,
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
