"""Module-level semantic model: imports, aliases, symbols, registries.

The per-file AST rules in :mod:`repro.sanitize.lint` historically matched
names textually — ``AEMMachine(...)`` fired, ``from repro.machine.aem
import AEMMachine as AM; AM(...)`` did not. This module supplies the
minimum name resolution a source lint needs to close that hole without
importing (executing!) the code under analysis:

* :class:`ModuleModel` — one parsed file: its dotted module name, an
  alias map from every import form (``import a.b``, ``import a.b as c``,
  ``from ..machine import aem as m``, function-local imports), and the
  top-level binding of simple ``NAME = <expr>`` aliases. ``resolve``
  turns an attribute chain like ``m.AEMMachine`` into the fully
  qualified ``repro.machine.aem.AEMMachine``.
* :class:`ProjectModel` — every module of a package directory, plus
  cross-module symbol lookup (used by the counting-safety inference to
  chase a sorter's call graph across files) and literal *registry
  extraction*: evaluating ``SORTERS = {"name": fn, ...}`` and
  ``COUNTING_SORTERS = frozenset({...})`` from the AST so the analysis
  can compare the manual allow-list with what it infers.

Resolution is static and deliberately modest: it follows imports and
single assignments of plain names, not arbitrary dataflow. That covers
the aliasing that actually occurs in import-heavy Python — and every
miss is a miss towards fewer findings, never a false positive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Union

from .flow import FunctionNode


def attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    parts.reverse()
    return parts


def resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Resolve ``from <level dots><target> import ...`` seen in ``module``.

    ``module`` is the importing module's dotted name (e.g.
    ``repro.sorting.base``); level 1 is its package, each further level
    one package up — the runtime's rule, applied to names.
    """
    if level == 0:
        return target or ""
    parts = module.split(".")
    # Level 1 = the containing package: drop the module's own last part.
    base = parts[: len(parts) - level] if len(parts) >= level else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(
    body: Sequence[ast.stmt], module_name: str, aliases: Dict[str, str]
) -> None:
    for stmt in body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            base = resolve_relative(module_name, stmt.level, stmt.module)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name


class ModuleModel:
    """Symbols and aliases of one parsed module."""

    def __init__(self, name: str, tree: ast.Module, path: str = "") -> None:
        self.name = name
        self.tree = tree
        self.path = path
        #: local name -> fully qualified target (module or symbol).
        self.aliases: Dict[str, str] = {}
        #: top-level function and class defs by name.
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        #: top-level ``NAME = <expr>`` assignments (last one wins).
        self.assignments: Dict[str, ast.expr] = {}
        _collect_imports(tree.body, name, self.aliases)
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    if isinstance(t, ast.Name):
                        self.assignments[t.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                    self.assignments[stmt.target.id] = stmt.value

    @classmethod
    def from_source(
        cls, source: str, *, name: str, path: str = ""
    ) -> "ModuleModel":
        return cls(name, ast.parse(source, filename=path or name), path)

    # -- resolution ----------------------------------------------------
    def resolve_parts(
        self, parts: Sequence[str], local_aliases: Optional[Dict[str, str]] = None
    ) -> Optional[str]:
        """Fully qualified name of an attribute chain, following the
        module's import aliases (and, optionally, function-local ones).
        Returns ``None`` when the root is not an imported/aliased name."""
        if not parts:
            return None
        root = parts[0]
        target: Optional[str] = None
        if local_aliases and root in local_aliases:
            target = local_aliases[root]
        elif root in self.aliases:
            target = self.aliases[root]
        elif root in self.functions or root in self.classes:
            target = f"{self.name}.{root}"
        if target is None:
            return None
        return ".".join([target, *parts[1:]])

    def resolve(
        self, node: ast.expr, local_aliases: Optional[Dict[str, str]] = None
    ) -> Optional[str]:
        parts = attr_chain(node)
        if parts is None:
            return None
        return self.resolve_parts(parts, local_aliases)


def local_import_aliases(func: FunctionNode, module: ModuleModel) -> Dict[str, str]:
    """Alias map contributed by imports *inside* a function body
    (the deferred-import idiom used to break package cycles)."""
    aliases: Dict[str, str] = {}
    for stmt in ast.walk(func):
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _collect_imports([stmt], module.name, aliases)
    return aliases


def local_rebinds(
    func: FunctionNode,
    module: ModuleModel,
    *,
    resolves_to: Optional[str] = None,
) -> Dict[str, str]:
    """Names bound inside ``func`` by a simple ``NAME = <chain>``
    assignment, resolved through the module's aliases.

    With ``resolves_to`` set, only bindings whose resolution starts with
    that prefix are kept (e.g. machine classes for AEM108). Single-pass:
    re-rebinding a name later in the function wins — the lint trades
    flow-sensitivity for simplicity here, accepting rare false negatives.
    """
    out: Dict[str, str] = {}
    locals_imports = local_import_aliases(func, module)
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            resolved = module.resolve(stmt.value, {**locals_imports, **out})
            if resolved is None:
                continue
            if resolves_to is None or resolved.startswith(resolves_to):
                out[target.id] = resolved
    return out


@dataclass
class Registry:
    """A string-keyed registry dict evaluated from the AST."""

    name: str
    line: int
    entries: Dict[str, str]  # key -> fully qualified callable


@dataclass
class NameSet:
    """A literal set/frozenset of strings evaluated from the AST."""

    name: str
    line: int
    values: FrozenSet[str]
    path: str = ""


class ProjectModel:
    """Every module under one package directory, resolvable by name.

    ``root`` is the directory that *is* the package (its basename is the
    package name) — e.g. ``src/repro`` for the shipped tree, or a fixture
    tree's ``repro`` directory in tests.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.package = self.root.name
        self.modules: Dict[str, ModuleModel] = {}
        for path in sorted(self.root.rglob("*.py")):
            rel = path.relative_to(self.root).with_suffix("")
            parts = [self.package, *rel.parts]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            name = ".".join(parts)
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            except SyntaxError:
                continue
            self.modules[name] = ModuleModel(name, tree, path=str(path))

    def __contains__(self, name: str) -> bool:
        return name in self.modules

    def module(self, name: str) -> Optional[ModuleModel]:
        return self.modules.get(name)

    def iter_modules(self) -> Iterator[ModuleModel]:
        yield from self.modules.values()

    def split_symbol(self, qualname: str) -> Optional[Tuple[ModuleModel, str]]:
        """``repro.sorting.mergesort.aem_mergesort`` ->
        ``(module model, "aem_mergesort")``. Follows one level of
        re-export: a symbol imported into the named module resolves to
        its defining module."""
        parts = qualname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            model = self.modules.get(mod_name)
            if model is None:
                continue
            tail = parts[cut:]
            if len(tail) != 1:
                return None  # attribute on a symbol (method); not a module symbol
            sym = tail[0]
            if sym in model.functions or sym in model.classes:
                return model, sym
            # Re-export: the name is itself an import alias here.
            if sym in model.aliases:
                return self.split_symbol(model.aliases[sym])
            return model, sym
        return None

    def function(self, qualname: str) -> Optional[Tuple[ModuleModel, FunctionNode]]:
        hit = self.split_symbol(qualname)
        if hit is None:
            return None
        model, sym = hit
        func = model.functions.get(sym)
        if func is None:
            return None
        return model, func

    # -- registry extraction -------------------------------------------
    def registry(self, module_name: str, var: str) -> Optional[Registry]:
        """Evaluate a ``VAR = {"key": callable, ...}`` dict literal."""
        model = self.modules.get(module_name)
        if model is None:
            return None
        expr = model.assignments.get(var)
        if not isinstance(expr, ast.Dict):
            return None
        entries: Dict[str, str] = {}
        for key, value in zip(expr.keys, expr.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            resolved = model.resolve(value) if value is not None else None
            if resolved is not None:
                entries[key.value] = resolved
        return Registry(name=var, line=expr.lineno, entries=entries)

    def name_set(self, module_name: str, var: str) -> Optional[NameSet]:
        """Evaluate a ``VAR = frozenset({...})`` / set / tuple of string
        literals."""
        model = self.modules.get(module_name)
        if model is None:
            return None
        expr = model.assignments.get(var)
        if expr is None:
            return None
        inner: Optional[ast.expr] = expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("frozenset", "set", "tuple", "list")
        ):
            inner = expr.args[0] if expr.args else None
        values: List[str] = []
        if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
            for elt in inner.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    values.append(elt.value)
        elif inner is None and isinstance(expr, ast.Call):
            pass  # frozenset() — empty
        else:
            return None
        return NameSet(
            name=var, line=expr.lineno, values=frozenset(values), path=model.path
        )


#: Fully qualified machine constructors the serving layer must not call
#: (rule AEM108). Matched by suffix so fixture trees with the same shape
#: but a different top-level package name behave identically.
MACHINE_CLASS_SUFFIXES = (
    "machine.aem.AEMMachine",
    "machine.flash.FlashMachine",
    "machine.core.MachineCore",
    "machine.AEMMachine",
    "machine.FlashMachine",
    "machine.MachineCore",
)


def is_machine_class(qualname: str) -> bool:
    """Does this fully qualified name denote one of the machine classes?"""
    return qualname.endswith(MACHINE_CLASS_SUFFIXES)
