"""The ``repro-aem check`` battery: sanitizers on real runs, lint on source.

``run_trace_checks`` executes a fixed set of small but real algorithm
runs — sorters, permuters, SpMxV — under the live sanitizers, then
validates the two paper lemmas end-to-end on freshly recorded programs:

* Lemma 4.1: capture a permuting program, convert it with
  :func:`repro.rounds.convert.to_round_based`, and require the converted
  program to pass every round-form check against the original;
* Lemma 4.3: reduce recorded programs to the flash model and require the
  measured I/O volume within ``2N + 2QB/omega``.

``run_lint_checks`` lints the ``repro`` source tree with the AEM rules.
Both return violation lists; the CLI maps non-empty to a non-zero exit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence

import numpy as np

from ..atoms.atom import Atom
from ..core.params import AEMParams
from .analysis import Finding
from .base import Sanitizer, Violation
from .capacity import CapacitySanitizer
from .cost import CostSanitizer
from .lint import LintViolation, lint_paths
from .provenance import ProgramProvenanceSanitizer, ProvenanceSanitizer
from .reduction import ReductionSanitizer
from .rounds import RoundFormProgramSanitizer
from .suite import SanitizerSuite

#: The battery's machine: small enough to run in a second, shaped so the
#: Lemma 4.3 reduction applies (integer omega, omega | B, B > omega).
BATTERY_PARAMS = AEMParams(M=64, B=8, omega=4)

Log = Optional[Callable[[str], None]]


def _say(log: Log, message: str) -> None:
    if log is not None:
        log(message)


def _fresh_sanitizers() -> list[Sanitizer]:
    return [CapacitySanitizer(), CostSanitizer(), ProvenanceSanitizer()]


def _prefixed(violations: Sequence[Violation], context: str) -> list[Violation]:
    return [
        Violation(v.rule, v.message, f"{context}{'; ' + v.where if v.where else ''}")
        for v in violations
    ]


def _permute_program(n: int, permuter: str, seed: int = 7):
    from ..permute.base import PERMUTERS
    from ..trace.program import capture
    from ..workloads.generators import permutation

    rng = np.random.default_rng(seed)
    atoms = [Atom(int(k), i) for i, k in enumerate(rng.integers(0, 8 * n, n))]
    perm = permutation(n, "random", rng)
    return capture(BATTERY_PARAMS, atoms, PERMUTERS[permuter], perm, BATTERY_PARAMS)


def run_trace_checks(*, log: Log = None) -> list[Violation]:
    """Run the live-sanitizer and lemma battery; returns all violations."""
    from ..api.measures import measure_permute, measure_sort, measure_spmxv

    violations: list[Violation] = []

    live_cases = [
        ("sort/aem_mergesort", lambda obs: measure_sort(
            "aem_mergesort", 600, BATTERY_PARAMS, observers=obs)),
        ("sort/em_mergesort", lambda obs: measure_sort(
            "em_mergesort", 600, BATTERY_PARAMS, observers=obs)),
        ("permute/adaptive", lambda obs: measure_permute(
            "adaptive", 512, BATTERY_PARAMS, observers=obs)),
        ("permute/naive", lambda obs: measure_permute(
            "naive", 256, BATTERY_PARAMS, observers=obs)),
        ("spmxv/sort_based", lambda obs: measure_spmxv(
            "sort_based", 128, 3, BATTERY_PARAMS, observers=obs)),
    ]
    for name, run in live_cases:
        sanitizers = _fresh_sanitizers()
        run(sanitizers)
        suite = SanitizerSuite(sanitizers)
        found = suite.violations
        violations.extend(_prefixed(found, name))
        _say(log, f"  {name}: {'clean' if not found else f'{len(found)} violation(s)'}")

    # Lemma 4.1 end-to-end: record -> convert -> verify round form.
    from ..rounds.convert import to_round_based

    for permuter, n in (("naive", 192), ("sort_based", 256)):
        program = _permute_program(n, permuter)
        converted, _report = to_round_based(program)
        found = RoundFormProgramSanitizer().check_program(
            converted, reference=program
        )
        found += ProgramProvenanceSanitizer().check_program(program)
        violations.extend(_prefixed(found, f"lemma4.1/{permuter}"))
        _say(
            log,
            f"  lemma4.1/{permuter}: {len(converted.rounds())} rounds, "
            f"{'clean' if not found else f'{len(found)} violation(s)'}",
        )

    # Lemma 4.3 end-to-end: record -> reduce to flash -> volume bound.
    for permuter, n in (("naive", 192), ("sort_based", 256)):
        program = _permute_program(n, permuter)
        found = ReductionSanitizer().check_program(program)
        violations.extend(_prefixed(found, f"lemma4.3/{permuter}"))
        _say(
            log,
            f"  lemma4.3/{permuter}: "
            f"{'clean' if not found else f'{len(found)} violation(s)'}",
        )

    violations.extend(_flow_trace_check(log))
    return violations


def _flow_trace_check(log: Log) -> list[Violation]:
    """Serve one query and validate the end-to-end flow chain.

    A live server with a telemetry dir must, on drain, write one
    ``trace.json`` whose request-lane ``s``, engine-task ``t``, and
    machine-segment ``f`` events chain per trace id and land on real
    spans — exactly what :func:`repro.telemetry.validate_trace` checks.
    """
    import json
    import tempfile

    from ..serve import ServeConfig
    from ..serve.testing import ServerThread
    from ..telemetry import validate_trace

    found: list[Violation] = []
    with tempfile.TemporaryDirectory() as tmp:
        with ServerThread(
            ServeConfig(port=0, counting=True, cache=False, telemetry_dir=tmp)
        ) as srv:
            resp = srv.post(
                "/evaluate",
                {"workload": "sort", "n": 256, "M": 64, "B": 8, "omega": 4},
            )
        trace_path = Path(tmp) / "trace.json"
        if resp.status != 200:
            found.append(
                Violation("FLOW", f"served query failed: {resp.status}", "serve/flow")
            )
        elif not trace_path.is_file():
            found.append(
                Violation("FLOW", "drained server wrote no trace.json", "serve/flow")
            )
        else:
            trace = json.loads(trace_path.read_text())
            try:
                validate_trace(trace)
            except ValueError as exc:
                found.append(Violation("FLOW", str(exc), "serve/flow"))
            phases = {
                e.get("ph")
                for e in trace["traceEvents"]
                if e.get("ph") in ("s", "t", "f")
            }
            if phases != {"s", "t", "f"}:
                found.append(
                    Violation(
                        "FLOW",
                        f"incomplete flow chain: saw phases {sorted(phases)}, "
                        "expected s (serve), t (engine), f (machine)",
                        "serve/flow",
                    )
                )
    _say(
        log,
        f"  serve/flow: {'clean' if not found else f'{len(found)} violation(s)'}",
    )
    return found


def default_lint_root() -> Path:
    """The installed ``repro`` package directory (what ``--lint`` checks)."""
    return Path(__file__).resolve().parent.parent


def run_lint_checks(
    paths: Optional[Sequence[Path | str]] = None, *, log: Log = None
) -> list[LintViolation]:
    """Lint the repro source tree (or the given paths)."""
    roots = [default_lint_root()] if paths is None else list(paths)
    found = lint_paths(roots)
    _say(
        log,
        f"  lint over {', '.join(str(r) for r in roots)}: "
        f"{'clean' if not found else f'{len(found)} violation(s)'}",
    )
    return found


def default_baseline_path(root: Optional[Path] = None) -> Path:
    """Where the committed analysis baseline lives for a package root.

    For the in-repo layout (``<repo>/src/repro``) that is
    ``<repo>/.aem-baseline.json``; for an installed package the file
    simply does not exist and the baseline is empty.
    """
    pkg_root = root if root is not None else default_lint_root()
    from .report import BASELINE_FILENAME

    return pkg_root.parent.parent / BASELINE_FILENAME


def run_analysis_checks(
    root: Optional[Path | str] = None,
    *,
    baseline: Optional[Path | str] = None,
    log: Log = None,
) -> tuple[list[Finding], list[Finding]]:
    """Run the dataflow rules (AEM201-AEM204) over the package tree.

    Returns ``(new, suppressed)``: findings not covered by the baseline
    (these should fail the check) and the baselined ones. ``baseline``
    defaults to ``.aem-baseline.json`` at the repository root when
    present.
    """
    from .analysis import analyze_project
    from .report import apply_baseline, load_baseline

    pkg_root = Path(root) if root is not None else default_lint_root()
    findings = analyze_project(pkg_root)
    baseline_path = (
        Path(baseline) if baseline is not None else default_baseline_path(pkg_root)
    )
    new, suppressed = apply_baseline(findings, load_baseline(baseline_path))
    _say(
        log,
        f"  analysis over {pkg_root}: "
        f"{'clean' if not new else f'{len(new)} finding(s)'}"
        + (f", {len(suppressed)} baselined" if suppressed else ""),
    )
    return new, suppressed
