"""Dataflow-powered analysis rules: AEM201-AEM204.

These are the rules the single-pass lint (:mod:`repro.sanitize.lint`)
structurally cannot express — each needs either "on every path" (a CFG
property), "can this value reach that sink" (taint), or "who calls whom
with what known" (an interprocedural mode analysis):

AEM201 — phase balance
    Every raw ``enter_phase(name)`` reaches a matching ``exit_phase`` on
    *all* control-flow paths out of the function, including the
    exceptional ones through ``finally``. Code using ``with
    machine.phase(...)`` never trips this (the context manager is the
    audited implementation and is itself verified balanced). The
    ``enter_phase``/``exit_phase`` definitions and the observer event
    mirrors (``on_phase_enter``/``on_phase_exit``) are exempt by name:
    they are the two halves of the protocol, balanced across calls by
    construction.

AEM202 — counting-safety inference vs. the allow-list
    Counting machines carry tokens, not atoms, so a sorter/permuter on
    the counting fast path must never read payloads (``.sort_token()``
    on a stored item, ``.key``/``.value``/``.uid`` field reads,
    ``dump_items``/``load_items``/``collect_output``) except on paths
    where ``machine.counting`` is known false. This rule *derives* the
    counting-safe set: a branch-sensitive mode analysis (counting may be
    {true, false, either} per CFG edge) runs over each registry entry's
    call graph — following module functions, deferred imports, nested
    defs, ``self.`` methods, and methods of locally constructed project
    classes — and collects payload operations reachable while counting
    may be true. The result is cross-checked in both directions against
    ``COUNTING_SORTERS``: an allow-listed sorter with a reachable
    payload op is a correctness bug; a clean sorter missing from the
    list is drift that silently forfeits the fast path.

AEM203 — batch escape analysis
    The vectorized event bus refills one :class:`EventBatch` in place,
    so any reference to the batch or its column lists that survives
    ``on_batch`` goes stale silently. Where AEM107 pattern-matched
    single assignments, this rule runs a taint fixpoint: the batch
    parameter and ``batch.<column>`` expressions seed the taint, plain
    assignments/tuple unpacking/container mutation propagate it, and
    the sinks are stores into ``self``, returns/yields, and closures
    that capture tainted names and themselves escape. Snapshot calls
    (``list(...)``, ``.copy()``) clear taint, as does indexing (the
    columns hold scalars).

AEM204 — async safety in the serving layer
    ``repro.serve`` runs on one event loop; a blocking call inside an
    ``async def`` stalls every in-flight request. Flagged: ``time.sleep``,
    sync socket construction, ``subprocess``/``os.system``, synchronous
    HTTP helpers, and ``SweepEngine.map`` (the engine's blocking entry —
    serve code routes it through ``run_in_executor``). Call arguments of
    ``run_in_executor``/``asyncio.to_thread`` are exempt: shipping the
    blocking call to a worker thread is exactly the sanctioned fix.

Every finding honours the ``# lint: disable=AEMxxx`` escape hatches, and
:func:`analyze_project` is the one entry point the runner/CLI use.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from .flow import (
    FALSE,
    TRUE,
    CFGNode,
    ForwardAnalysis,
    FunctionNode,
    build_cfg,
    fixpoint,
    iter_functions,
)
from .lint import _BATCH_COLUMNS, _is_observer_class, _parse_disables
from .semantic import (
    ModuleModel,
    ProjectModel,
    attr_chain,
    local_import_aliases,
)

#: Rule catalog (legacy lint + dataflow analysis) — SARIF metadata and docs.
RULES: Dict[str, str] = {
    "AEM101": "BlockStore internals touched outside repro.machine",
    "AEM102": "algorithm code bypasses the machine I/O API",
    "AEM103": "observer mutates machine state",
    "AEM104": "bare dict cost accounting outside the ledger",
    "AEM105": "observer handler outside the machine event vocabulary",
    "AEM106": "ledger capacity fields assigned outside repro.machine",
    "AEM107": "observer retains the reused event batch",
    "AEM108": "serving layer constructs a machine directly",
    "AEM109": "observer touches the ambient span machinery",
    "AEM201": "enter_phase without matching exit_phase on some path",
    "AEM202": "counting-safety drift vs. COUNTING_SORTERS",
    "AEM203": "batch/column reference escapes on_batch",
    "AEM204": "blocking call inside async serving code",
}

_DIGITS = re.compile(r"\d+")


@dataclass(frozen=True)
class Finding:
    """One analysis finding at a source location.

    ``fingerprint`` identifies the finding across line churn: it hashes
    the rule, the project-relative path, the enclosing symbol and the
    digit-stripped message — never line numbers — so a baseline survives
    unrelated edits to the same file.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.path}:{self.line}: {self.rule}:{where} {self.message}"

    @property
    def fingerprint(self) -> str:
        key = "|".join(
            (self.rule, self.path, self.symbol, _DIGITS.sub("", self.message))
        )
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Shared AST plumbing.
# ----------------------------------------------------------------------
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` in source order, without descending into nested
    function/class scopes below ``root`` (the def node itself is still
    yielded — it is a statement of this scope)."""
    yield root
    for child in ast.iter_child_nodes(root):
        if isinstance(child, _SCOPE_NODES):
            yield child
        else:
            yield from scope_walk(child)


def _stmt_exprs(node: CFGNode) -> List[ast.AST]:
    """The AST a CFG node *executes itself* — for compound statements
    that is the header expression only (their bodies are separate
    nodes), for simple statements the whole statement."""
    stmt = node.stmt
    if stmt is None:
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):  # type: ignore[unreachable]
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, ast.Try):  # the synthetic ``finally`` marker
        return []
    if isinstance(stmt, _SCOPE_NODES):
        return []
    return [stmt]


def _call_tail(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _rel_path(path: str, root: Path) -> str:
    try:
        return os.path.relpath(path, root.parent)
    except ValueError:
        return path


# ----------------------------------------------------------------------
# AEM201 — phase balance.
# ----------------------------------------------------------------------
#: Functions allowed to call enter/exit unpaired: the protocol halves.
_PHASE_EXEMPT = {"enter_phase", "exit_phase", "on_phase_enter", "on_phase_exit"}

_PHASE_CALLS = {"enter_phase", "exit_phase"}

# Lattice: a tuple of (phase name or "?", enter line) frames, or None
# for "paths disagree" (the conflict top).
_PhaseStack = Optional[Tuple[Tuple[str, int], ...]]


def _phase_ops(node: CFGNode) -> List[Tuple[str, str, int]]:
    """``("enter"|"exit", name-or-"?", line)`` per phase call the node makes."""
    ops: List[Tuple[str, str, int]] = []
    for root in _stmt_exprs(node):
        for sub in scope_walk(root):
            if not isinstance(sub, ast.Call):
                continue
            tail = _call_tail(sub.func)
            if tail not in _PHASE_CALLS:
                continue
            name = "?"
            if sub.args and isinstance(sub.args[0], ast.Constant):
                value = sub.args[0].value
                if isinstance(value, str):
                    name = value
            kind = "enter" if tail == "enter_phase" else "exit"
            ops.append((kind, name, sub.lineno))
    return ops


class _PhaseAnalysis(ForwardAnalysis[_PhaseStack]):
    def __init__(self) -> None:
        self.problems: Set[Tuple[str, int, str]] = set()

    def initial_state(self) -> _PhaseStack:
        return ()

    def transfer(self, node: CFGNode, state: _PhaseStack) -> _PhaseStack:
        if state is None:
            return None
        stack = state
        for kind, name, line in _phase_ops(node):
            if kind == "enter":
                stack = stack + ((name, line),)
            else:
                if not stack:
                    self.problems.add(("unmatched-exit", line, name))
                    continue
                top_name = stack[-1][0]
                if name != "?" and top_name != "?" and name != top_name:
                    self.problems.add(("mismatch", line, f"{name}|{top_name}"))
                stack = stack[:-1]
        return stack

    def join(self, a: _PhaseStack, b: _PhaseStack) -> _PhaseStack:
        return a if a == b else None


def _check_phase_balance(
    model: ModuleModel, rel: str
) -> List[Finding]:
    out: List[Finding] = []
    for qual, func in iter_functions(model.tree):
        bare = qual.rsplit(".", 1)[-1]
        if bare in _PHASE_EXEMPT:
            continue
        has_raw = any(
            isinstance(n, ast.Call) and _call_tail(n.func) in _PHASE_CALLS
            for n in ast.walk(func)
        )
        if not has_raw:
            continue
        cfg = build_cfg(func)
        analysis = _PhaseAnalysis()
        in_states = fixpoint(cfg, analysis)
        conflict = False
        for idx, label in cfg.exit.preds:
            if idx not in in_states:
                continue
            node = cfg.nodes[idx]
            state = analysis.transfer(node, in_states[idx])
            if state is None:
                conflict = True
            elif state:
                for name, line in state:
                    analysis.problems.add(("unclosed", line, name))
        if conflict:
            analysis.problems.add(("conflict", func.lineno, qual))
        for kind, line, detail in sorted(analysis.problems):
            if kind == "unclosed":
                msg = (
                    f"enter_phase({detail!r}) is not matched by exit_phase "
                    "on every path out of the function; use 'with "
                    "machine.phase(...)' or close it in a finally block"
                )
            elif kind == "unmatched-exit":
                msg = (
                    f"exit_phase({detail!r}) reachable with no phase "
                    "open on some path"
                )
            elif kind == "mismatch":
                want, got = detail.split("|", 1)
                msg = (
                    f"exit_phase({want!r}) but the innermost enter on this "
                    f"path is {got!r}; phase enter/exit must nest"
                )
            else:  # conflict
                msg = (
                    "phase depth differs between merging control-flow "
                    "paths; enter/exit must balance identically on every "
                    "path"
                )
            out.append(Finding("AEM201", rel, line, qual, msg))
    return out


# ----------------------------------------------------------------------
# AEM202 — counting-safety inference.
# ----------------------------------------------------------------------
BOTH, FULL, COUNT = "both", "full", "count"

#: Atom field reads that require real payloads.
_PAYLOAD_ATTRS = {"key", "value", "uid"}

#: Calls that move or materialize real payloads.
_PAYLOAD_CALLS = {"dump_items", "load_items", "collect_output"}


def _counting_test(expr: ast.expr) -> Optional[bool]:
    """``True`` if the expression is truthy exactly when counting is on,
    ``False`` if negated, ``None`` when unrelated to counting."""
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        inner = _counting_test(expr.operand)
        return None if inner is None else not inner
    if isinstance(expr, ast.Name) and expr.id == "counting":
        return True
    if isinstance(expr, ast.Attribute) and expr.attr == "counting":
        return True
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        # ``counting and X``: the true edge implies counting.
        if any(_counting_test(v) is True for v in expr.values):
            return True
    return None


def _intersect_mode(state: str, implied: str) -> Optional[str]:
    if state == BOTH:
        return implied
    if state == implied:
        return state
    return None  # statically impossible edge under this state


class _ModeAnalysis(ForwardAnalysis[str]):
    """Which values ``machine.counting`` may take at each node."""

    def initial_state(self) -> str:
        return BOTH

    def transfer(self, node: CFGNode, state: str) -> str:
        return state

    def transfer_edge(self, node: CFGNode, label: str, state: str) -> Optional[str]:
        stmt = node.stmt
        if label in (TRUE, FALSE) and isinstance(stmt, (ast.If, ast.While)):
            truthy = _counting_test(stmt.test)
            if truthy is not None:
                implied = COUNT if truthy == (label == TRUE) else FULL
                return _intersect_mode(state, implied)
        return state

    def join(self, a: str, b: str) -> str:
        return a if a == b else BOTH


@dataclass(frozen=True)
class PayloadSite:
    """One payload operation reachable while counting may be true."""

    path: str
    line: int
    what: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.what}"


_FuncKey = Tuple[str, int, str]
_Callee = Tuple[ModuleModel, FunctionNode, Optional[ast.ClassDef]]


def _class_method(cls: ast.ClassDef, name: str) -> Optional[FunctionNode]:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == name:
                return item
    return None


class CountingInference:
    """Interprocedural payload-reachability over a project's call graphs."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self._memo: Dict[_FuncKey, Tuple[PayloadSite, ...]] = {}
        self._active: Set[_FuncKey] = set()

    def payload_sites(
        self,
        model: ModuleModel,
        func: FunctionNode,
        owner: Optional[ast.ClassDef] = None,
    ) -> Tuple[PayloadSite, ...]:
        """Payload ops reachable from ``func`` while counting may be on."""
        key: _FuncKey = (model.name, func.lineno, func.name)
        if key in self._memo:
            return self._memo[key]
        if key in self._active:
            return ()  # recursion: the cycle's ops surface on other paths
        self._active.add(key)
        try:
            sites = self._analyze(model, func, owner)
        finally:
            self._active.discard(key)
        self._memo[key] = sites
        return sites

    # -- one function --------------------------------------------------
    def _analyze(
        self,
        model: ModuleModel,
        func: FunctionNode,
        owner: Optional[ast.ClassDef],
    ) -> Tuple[PayloadSite, ...]:
        local_imports = local_import_aliases(func, model)
        nested: Dict[str, FunctionNode] = {}
        instances: Dict[str, Tuple[ModuleModel, ast.ClassDef]] = {}
        for sub in scope_walk(func):
            if sub is not func and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                nested[sub.name] = sub
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name) and isinstance(sub.value, ast.Call):
                    qual = model.resolve(sub.value.func, local_imports)
                    if qual is not None:
                        hit = self.project.split_symbol(qual)
                        if hit is not None and hit[1] in hit[0].classes:
                            instances[target.id] = (hit[0], hit[0].classes[hit[1]])

        cfg = build_cfg(func)
        in_states = fixpoint(cfg, _ModeAnalysis())
        found: List[PayloadSite] = []
        seen: Set[PayloadSite] = set()

        def add(line: int, what: str) -> None:
            site = PayloadSite(model.path, line, what)
            if site not in seen:
                seen.add(site)
                found.append(site)

        for idx, mode in sorted(in_states.items()):
            if mode == FULL:
                continue
            node = cfg.nodes[idx]
            for root in _stmt_exprs(node):
                for sub in scope_walk(root):
                    if isinstance(sub, ast.Call):
                        f = sub.func
                        if isinstance(f, ast.Attribute) and f.attr == "sort_token":
                            add(sub.lineno, "atom payload read (.sort_token())")
                            continue
                        tail = _call_tail(f)
                        if tail in _PAYLOAD_CALLS:
                            add(sub.lineno, f"payload transfer ({tail})")
                            continue
                        callee = self._resolve_callee(
                            f, model, local_imports, nested, instances, owner
                        )
                        if callee is not None:
                            for site in self.payload_sites(*callee):
                                if site not in seen:
                                    seen.add(site)
                                    found.append(site)
                    elif (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.attr in _PAYLOAD_ATTRS
                    ):
                        chain = attr_chain(sub)
                        if chain is not None and chain[0] == "self":
                            continue  # an object's own fields, not an atom's
                        add(sub.lineno, f"atom field read (.{sub.attr})")
        return tuple(found)

    def _resolve_callee(
        self,
        f: ast.expr,
        model: ModuleModel,
        local_imports: Dict[str, str],
        nested: Dict[str, FunctionNode],
        instances: Dict[str, Tuple[ModuleModel, ast.ClassDef]],
        owner: Optional[ast.ClassDef],
    ) -> Optional[_Callee]:
        if isinstance(f, ast.Name) and f.id in nested:
            return model, nested[f.id], owner
        if isinstance(f, ast.Attribute):
            chain = attr_chain(f)
            if chain is not None and len(chain) == 2:
                base, meth = chain
                if base == "self" and owner is not None:
                    method = _class_method(owner, meth)
                    if method is not None:
                        return model, method, owner
                if base in instances:
                    inst_model, cls = instances[base]
                    method = _class_method(cls, meth)
                    if method is not None:
                        return inst_model, method, cls
        qual = model.resolve(f, local_imports)
        if qual is None:
            return None
        hit = self.project.split_symbol(qual)
        if hit is None:
            return None
        sym_model, sym = hit
        if sym in sym_model.functions:
            return sym_model, sym_model.functions[sym], None
        if sym in sym_model.classes:
            cls = sym_model.classes[sym]
            init = _class_method(cls, "__init__")
            if init is not None:
                return sym_model, init, cls
        return None


def infer_payload_sites(
    project: ProjectModel,
) -> Dict[str, Tuple[PayloadSite, ...]]:
    """Registry entry name -> payload ops reachable in counting mode.

    Covers both the sorter and permuter registries; an empty tuple means
    the entry is inferred counting-safe.
    """
    inference = CountingInference(project)
    out: Dict[str, Tuple[PayloadSite, ...]] = {}
    pkg = project.package
    for module_name, var in (
        (f"{pkg}.sorting.base", "SORTERS"),
        (f"{pkg}.permute.base", "PERMUTERS"),
    ):
        registry = project.registry(module_name, var)
        if registry is None:
            continue
        for name, qual in registry.entries.items():
            hit = project.function(qual)
            if hit is None:
                continue
            out[name] = inference.payload_sites(hit[0], hit[1])
    return out


def infer_counting_safe(project: ProjectModel) -> Dict[str, bool]:
    """Registry entry name -> inferred counting-safety (no payload ops)."""
    return {name: not sites for name, sites in infer_payload_sites(project).items()}


def _check_counting_safety(project: ProjectModel, root: Path) -> List[Finding]:
    pkg = project.package
    sites_by_name = infer_payload_sites(project)
    out: List[Finding] = []

    sorters = project.registry(f"{pkg}.sorting.base", "SORTERS")
    allow = project.name_set(f"{pkg}.sorting.base", "COUNTING_SORTERS")
    if sorters is not None and allow is not None:
        rel = _rel_path(allow.path, root)
        for name in sorted(sorters.entries):
            if name not in sites_by_name:
                continue
            sites = sites_by_name[name]
            listed = name in allow.values
            if listed and sites:
                witness = "; ".join(
                    f"{_rel_path(s.path, root)}:{s.line}: {s.what}"
                    for s in sites[:3]
                )
                out.append(
                    Finding(
                        "AEM202",
                        rel,
                        allow.line,
                        name,
                        f"sorter {name!r} is allow-listed in COUNTING_SORTERS "
                        f"but payload operations are reachable while "
                        f"machine.counting may be true: {witness}",
                    )
                )
            elif not listed and not sites:
                out.append(
                    Finding(
                        "AEM202",
                        rel,
                        allow.line,
                        name,
                        f"sorter {name!r} makes no counting-mode payload "
                        "access but is missing from COUNTING_SORTERS; add it "
                        "(or add a payload guard comment explaining why not)",
                    )
                )

    permuters = project.registry(f"{pkg}.permute.base", "PERMUTERS")
    if permuters is not None:
        perm_model = project.module(f"{pkg}.permute.base")
        perm_rel = _rel_path(perm_model.path, root) if perm_model else ""
        for name in sorted(permuters.entries):
            sites = sites_by_name.get(name, ())
            if sites:
                witness = "; ".join(
                    f"{_rel_path(s.path, root)}:{s.line}: {s.what}"
                    for s in sites[:3]
                )
                out.append(
                    Finding(
                        "AEM202",
                        perm_rel,
                        permuters.line,
                        name,
                        f"permuter {name!r} must support counting mode (all "
                        f"registered permuters do) but payload operations "
                        f"are reachable while machine.counting may be true: "
                        f"{witness}",
                    )
                )
    return out


# ----------------------------------------------------------------------
# AEM203 — batch escape analysis.
# ----------------------------------------------------------------------
#: Calls whose *result* is a safe snapshot, clearing taint.
_CONTAINER_MUTATORS = {
    "append",
    "add",
    "extend",
    "insert",
    "appendleft",
    "setdefault",
    "update",
}


class _BatchTaint:
    """Flow-insensitive taint over one ``on_batch`` body."""

    def __init__(self, func: FunctionNode, batch: str) -> None:
        self.func = func
        self.batch = batch
        self.tainted: Set[str] = set()

    def expr_tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id == self.batch or expr.id in self.tainted
        if isinstance(expr, ast.Attribute):
            return expr.attr in _BATCH_COLUMNS and self.expr_tainted(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body) or self.expr_tainted(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_tainted(v) for v in expr.values)
        if isinstance(expr, ast.NamedExpr):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Lambda):
            return bool(self._captured(expr))
        # Calls (list(...), .copy(), zip(...)) snapshot; subscripts pull
        # scalars out of the column lists — both clear taint.
        return False

    def _captured(self, node: ast.AST) -> Set[str]:
        """Tainted names (incl. the batch) referenced anywhere below."""
        live = self.tainted | {self.batch}
        return {
            n.id
            for n in ast.walk(node)
            if isinstance(n, ast.Name) and n.id in live
        }

    def _bind(self, target: ast.expr, value: ast.expr) -> bool:
        """Propagate one assignment; True if the taint set grew."""
        grew = False
        if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                grew = self._bind(t, v) or grew
            return grew
        if isinstance(target, (ast.Tuple, ast.List)):
            if self.expr_tainted(value):
                for t in target.elts:
                    grew = self._bind(t, value) or grew
            return grew
        if isinstance(target, ast.Name) and self.expr_tainted(value):
            if target.id not in self.tainted:
                self.tainted.add(target.id)
                return True
        return grew

    def solve(self) -> None:
        """Iterate assignment/mutation/closure propagation to fixpoint."""
        while True:
            grew = False
            for node in ast.walk(self.func):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        grew = self._bind(t, node.value) or grew
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    grew = self._bind(node.target, node.value) or grew
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.target, ast.Name) and self.expr_tainted(
                        node.value
                    ):
                        if node.target.id not in self.tainted:
                            self.tainted.add(node.target.id)
                            grew = True
                elif isinstance(node, ast.NamedExpr):
                    grew = self._bind(node.target, node.value) or grew
                elif isinstance(node, ast.Call):
                    # local.append(tainted) makes the container tainted.
                    f = node.func
                    if (
                        isinstance(f, ast.Attribute)
                        and f.attr in _CONTAINER_MUTATORS
                        and isinstance(f.value, ast.Name)
                        and any(self.expr_tainted(a) for a in node.args)
                    ):
                        if f.value.id not in self.tainted:
                            self.tainted.add(f.value.id)
                            grew = True
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not self.func and self._captured(node):
                        if node.name not in self.tainted:
                            self.tainted.add(node.name)
                            grew = True
            if not grew:
                return


def _self_rooted(expr: ast.expr) -> bool:
    chain = attr_chain(expr)
    return chain is not None and chain[0] == "self"


def _check_batch_escape(
    model: ModuleModel, rel: str
) -> List[Finding]:
    out: List[Finding] = []
    for stmt in model.tree.body:
        if not (isinstance(stmt, ast.ClassDef) and _is_observer_class(stmt)):
            continue
        for item in stmt.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name != "on_batch":
                continue
            args = list(item.args.posonlyargs) + list(item.args.args)
            if len(args) < 2:
                continue
            taint = _BatchTaint(item, args[1].arg)
            taint.solve()
            qual = f"{stmt.name}.on_batch"

            def flag(
                node: ast.AST, how: str, *, _rel: str = rel, _qual: str = qual
            ) -> None:
                out.append(
                    Finding(
                        "AEM203",
                        _rel,
                        getattr(node, "lineno", 0),
                        _qual,
                        f"reference to the reused event batch (or a column "
                        f"array) escapes on_batch via {how}; the bus clears "
                        "these buffers in place after every flush — "
                        "snapshot with list(...) instead",
                    )
                )

            # scope_walk, not ast.walk: a `return` inside a nested def is
            # not a return of on_batch — the closure escape itself is what
            # gets flagged (via the captured-name taint).
            for node in scope_walk(item):
                if isinstance(node, ast.Assign):
                    if not taint.expr_tainted(node.value):
                        continue
                    for t in node.targets:
                        flat = (
                            list(t.elts)
                            if isinstance(t, (ast.Tuple, ast.List))
                            else [t]
                        )
                        for tgt in flat:
                            if isinstance(tgt, ast.Attribute) and _self_rooted(tgt):
                                flag(node, f"assignment to self.{tgt.attr}")
                            elif isinstance(tgt, ast.Subscript) and _self_rooted(
                                tgt.value
                            ):
                                flag(node, "a store into a container on self")
                elif isinstance(node, ast.Call):
                    f = node.func
                    if (
                        isinstance(f, ast.Attribute)
                        and f.attr in _CONTAINER_MUTATORS
                        and isinstance(f.value, (ast.Attribute, ast.Name))
                        and _self_rooted(f.value)
                        and any(taint.expr_tainted(a) for a in node.args)
                    ):
                        flag(node, f"{f.attr}() into a container on self")
                elif isinstance(node, ast.Return):
                    if node.value is not None and taint.expr_tainted(node.value):
                        flag(node, "the return value")
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    value = node.value
                    if value is not None and taint.expr_tainted(value):
                        flag(node, "a yielded value")
    return out


# ----------------------------------------------------------------------
# AEM204 — async safety in the serving layer.
# ----------------------------------------------------------------------
#: Fully qualified calls that block the event loop.
_BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "os.system",
    "os.popen",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.", "requests.")

#: Handing work to a worker thread is the sanctioned escape.
_EXECUTOR_CALLS = {"run_in_executor", "to_thread"}


def _is_engine_map(func: ast.expr, engine_names: Set[str]) -> bool:
    if not (isinstance(func, ast.Attribute) and func.attr == "map"):
        return False
    chain = attr_chain(func.value)
    if chain is None:
        return False
    if chain[-1] in engine_names or chain[0] in engine_names:
        return True
    return any("engine" in part.lower() for part in chain)


def _check_async_safety(model: ModuleModel, rel: str) -> List[Finding]:
    if "serve" not in model.name.split("."):
        return []
    out: List[Finding] = []
    for qual, func in iter_functions(model.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        local_imports = local_import_aliases(func, model)
        engine_names: Set[str] = set()
        for sub in scope_walk(func):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                ctor = model.resolve(sub.value.func, local_imports)
                if ctor is not None and ctor.endswith("SweepEngine"):
                    engine_names.add(sub.targets[0].id)

        def visit(
            node: ast.AST,
            *,
            _qual: str = qual,
            _func: FunctionNode = func,
            _imports: Dict[str, str] = local_imports,
            _engines: Set[str] = engine_names,
        ) -> None:
            qual, func = _qual, _func
            local_imports, engine_names = _imports, _engines
            if isinstance(node, _SCOPE_NODES) and node is not func:
                return  # nested defs are their own (possibly sync) scope
            if isinstance(node, ast.Call):
                tail = _call_tail(node.func)
                if tail in _EXECUTOR_CALLS:
                    return  # its arguments run on a worker thread
                qualname = model.resolve(node.func, local_imports)
                if qualname is not None and (
                    qualname in _BLOCKING_CALLS
                    or qualname.startswith(_BLOCKING_PREFIXES)
                ):
                    out.append(
                        Finding(
                            "AEM204",
                            rel,
                            node.lineno,
                            qual,
                            f"blocking call {qualname}() inside 'async def "
                            f"{func.name}' stalls the event loop; await an "
                            "async equivalent or push it through "
                            "loop.run_in_executor",
                        )
                    )
                elif _is_engine_map(node.func, engine_names):
                    out.append(
                        Finding(
                            "AEM204",
                            rel,
                            node.lineno,
                            qual,
                            f"SweepEngine.map is a blocking engine entry "
                            f"point; inside 'async def {func.name}' wrap it "
                            "in loop.run_in_executor like repro.serve.server "
                            "does",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in func.body:
            visit(stmt)
    return out


# ----------------------------------------------------------------------
# Project entry point.
# ----------------------------------------------------------------------
def analyze_project(
    root: Union[str, Path],
    *,
    respect_disables: bool = True,
) -> List[Finding]:
    """Run AEM201-AEM204 over the package rooted at ``root``.

    ``root`` is the package directory itself (e.g. ``src/repro``);
    finding paths come back relative to its parent. ``# lint:
    disable=``/``disable-file=`` comments suppress findings exactly as
    they do for the legacy lint rules.
    """
    root_path = Path(root)
    project = ProjectModel(root_path)
    findings: List[Finding] = []
    for model in project.iter_modules():
        rel = _rel_path(model.path, root_path)
        findings.extend(_check_phase_balance(model, rel))
        findings.extend(_check_batch_escape(model, rel))
        findings.extend(_check_async_safety(model, rel))
    findings.extend(_check_counting_safety(project, root_path))

    if not respect_disables:
        return sorted(findings, key=lambda f: (f.path, f.line, f.rule))

    kept: List[Finding] = []
    disables: Dict[str, Tuple[Dict[int, Set[str]], Set[str]]] = {}
    for f in findings:
        abs_path = root_path.parent / f.path
        if f.path not in disables:
            try:
                source = abs_path.read_text(encoding="utf-8")
            except OSError:
                source = ""
            disables[f.path] = _parse_disables(source)
        per_line, per_file = disables[f.path]
        if f.rule in per_file or f.rule in per_line.get(f.line, set()):
            continue
        kept.append(f)
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))
