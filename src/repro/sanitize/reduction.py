"""ReductionSanitizer: the Lemma 4.3 flash-volume bound, re-asserted.

Lemma 4.3 simulates an AEM permutation program of cost ``Q`` on ``N``
atoms in the unit-cost flash model (read blocks ``B/omega``, write blocks
``B``) with I/O volume at most ``2N + 2*Q*B/omega``. The reduction in
:mod:`repro.flashred` *measures* the volume on a real
:class:`~repro.machine.flash.FlashMachine`; this sanitizer replays a
reduction and asserts the measured volume against an independently
recomputed budget — catching both a broken simulation (volume too high,
or a construction error surfacing as a trace/model exception) and a
tampered report (whose ``bound`` field disagrees with the lemma formula).
"""

from __future__ import annotations

from typing import Optional

from ..machine.errors import MachineError
from ..trace.program import Program
from .base import TraceSanitizer, Violation


class ReductionSanitizer(TraceSanitizer):
    """Replay a flash reduction and assert the Lemma 4.3 volume bound."""

    rule = "REDUCTION"

    def check_report(
        self,
        report,
        *,
        B: Optional[int] = None,
        omega: Optional[float] = None,
    ) -> list[Violation]:
        """Check a :class:`~repro.flashred.reduction.FlashReductionReport`.

        When ``B`` and ``omega`` are known (always the case when coming
        from :meth:`check_program`) the budget is recomputed from the
        report's own ``N``/``aem_cost`` via the lemma formula rather than
        trusted from its ``bound`` field, so a forged bound is caught
        along with a genuine volume overrun.
        """
        from ..flashred.reduction import lemma_4_3_bound

        bound = report.bound
        if B is not None and omega is not None:
            bound = lemma_4_3_bound(report.N, report.aem_cost, B, omega)
            if abs(report.bound - bound) > 1e-6:
                self.flag(
                    f"report bound {report.bound:g} disagrees with the "
                    f"Lemma 4.3 formula 2N + 2QB/omega = {bound:g}"
                )
        if report.volume > bound + 1e-9:
            self.flag(
                f"flash I/O volume {report.volume:g} exceeds the Lemma 4.3 "
                f"budget {bound:g} (N={report.N}, Q={report.aem_cost:g})"
            )
        if report.read_volume < 0 or report.write_volume < 0:
            self.flag("negative I/O volume in the reduction report")
        return list(self.violations)

    def check_program(self, program: Program) -> list[Violation]:
        """Run the Lemma 4.3 reduction on ``program`` and check the result."""
        from ..flashred.reduction import reduce_to_flash

        try:
            _, report = reduce_to_flash(program)
        except MachineError as exc:
            self.flag(f"flash reduction failed: {exc}")
            return list(self.violations)
        return self.check_report(
            report, B=program.params.B, omega=program.params.omega
        )
