"""ProvenanceSanitizer: data must *move*, never teleport.

The lower-bound arguments (Sections 4-5) count the ways atoms can travel
between external blocks and internal memory; a simulated algorithm that
conjures data out of thin air — reading a block nothing ever wrote, or
writing an input atom it never read — would beat the counting bound
without doing the I/O the bound charges for. This sanitizer tracks atom
identity (``uid``) through the event stream:

* **read-before-write**: a read of a non-empty external block that was
  neither part of the initial disk contents nor written during the run;
* **teleported atoms**: a write whose atoms include an initial-disk atom
  that no read has brought into internal memory yet.

The complementary *output* check — every atom in the final output was
read at some point — needs to know which blocks are outputs, which only a
recorded :class:`~repro.trace.program.Program` knows; it is provided as
:func:`check_program_provenance` and used by ``repro-aem check --traces``.

Known blind spot: the initial disk snapshot is taken lazily at the first
event (machines load their input after construction, hence after
observers attach), so a breach *in the very first event* is indistinguishable
from input placement and passes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..trace.program import Program
from .base import Sanitizer, TraceSanitizer, Violation


def _uids(items: Sequence) -> list:
    return [u for u in (getattr(it, "uid", None) for it in items) if u is not None]


class ProvenanceSanitizer(Sanitizer):
    """No read of a never-written block; no write of a never-read input atom."""

    rule = "PROVENANCE"

    # Provenance is atom-identity tracking; a counting machine has no uids
    # to track, so attaching there must fail loudly (see observe.base),
    # and batched dispatch must keep exact per-event payload delivery.
    needs_payloads = True
    needs_events = True

    def __init__(self) -> None:
        super().__init__()
        self._initial_addrs: Optional[set[int]] = None
        self._initial_uids: set = set()
        self._written_addrs: set[int] = set()
        self._read_uids: set = set()
        self._flagged_addrs: set[int] = set()

    def _snapshot(self) -> None:
        """Record the pre-run disk state (lazily, at the first event).

        Blocks already written this run are excluded: when the first
        event is itself a write, the disk already holds its effect (the
        store mutates before the bus fires), and capturing it would make
        the write's own output look like teleported input.
        """
        if self._initial_addrs is not None:
            return
        self._initial_addrs = set()
        for addr in self.core.disk.addresses():
            if addr in self._written_addrs:
                continue
            self._initial_addrs.add(addr)
            self._initial_uids.update(_uids(self.core.disk.get(addr)))

    def on_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._snapshot()
        self._read_uids.update(_uids(items))
        if (
            items
            and addr not in self._initial_addrs
            and addr not in self._written_addrs
            and addr not in self._flagged_addrs
        ):
            self._flagged_addrs.add(addr)
            self.flag(
                f"read of block {addr} returned {len(items)} atoms, but the "
                "block was neither in the initial disk contents nor written "
                "during the run",
                where=self._where(),
            )

    def on_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.events += 1
        self._written_addrs.add(addr)  # before _snapshot: see its docstring
        self._snapshot()
        for uid in _uids(items):
            if uid in self._initial_uids and uid not in self._read_uids:
                self.flag(
                    f"write to block {addr} contains input atom uid={uid} "
                    "that was never read into internal memory (teleported data)",
                    where=self._where(),
                )


class ProgramProvenanceSanitizer(TraceSanitizer):
    """The trace-level version, including the output-completeness check."""

    rule = "PROVENANCE"

    def check_program(self, program: Program) -> list[Violation]:
        """Check a recorded program; returns the violations found.

        Walks the op sequence tracking which blocks have been written and
        which atom uids each read has surfaced, then checks the *final
        output*: every initial-disk atom landing in an output block must
        have been read by some op — output produced without reads is
        teleported data.
        """
        initial_uids: set = set()
        for items in program.initial_disk.values():
            initial_uids.update(_uids(items))
        written: set[int] = set()
        read_uids: set = set()
        for idx, op in enumerate(program.ops):
            if op.is_read:
                if (
                    op.uids
                    and op.addr not in program.initial_disk
                    and op.addr not in written
                ):
                    self.flag(
                        f"read of block {op.addr} that nothing wrote",
                        where=f"op {idx}",
                    )
                read_uids.update(u for u in op.uids if u is not None)
            else:
                for uid in op.uids:
                    if uid is not None and uid in initial_uids and uid not in read_uids:
                        self.flag(
                            f"write of input atom uid={uid} before any read "
                            "of it (teleported data)",
                            where=f"op {idx}",
                        )
                written.add(op.addr)

        final = program.replay(validate=False)
        for addr in program.output_addrs:
            for uid in _uids(final.get(addr, ())):
                if uid in initial_uids and uid not in read_uids:
                    self.flag(
                        f"output block {addr} holds input atom uid={uid} "
                        "that no op ever read",
                        where="final output",
                    )
        return list(self.violations)
