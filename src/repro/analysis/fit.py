"""Fitting measured costs to theoretical shapes.

The paper's bounds are asymptotic; "the measurement matches the bound"
means the ratio measured/shape is a stable constant across a sweep. A
:class:`FitResult` captures that: the fitted constant (median ratio) and
the spread (max/min ratio) — a spread close to 1 over a decade of N is the
empirical signature of a matching growth rate.

:func:`growth_exponent` fits a log-log slope, used to verify polynomial
factors (e.g. permuting's naive branch growing linearly in N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """Ratios of measured values to theoretical shapes."""

    constant: float  # median ratio
    min_ratio: float
    max_ratio: float
    ratios: tuple[float, ...]

    @property
    def spread(self) -> float:
        """max/min ratio: 1.0 means the shape tracks the data exactly."""
        if self.min_ratio <= 0:
            return float("inf")
        return self.max_ratio / self.min_ratio

    def describe(self) -> str:
        return (
            f"constant={self.constant:.3g} "
            f"ratio in [{self.min_ratio:.3g}, {self.max_ratio:.3g}] "
            f"(spread {self.spread:.2f}x)"
        )


def fit_constant(measured: Sequence[float], shapes: Sequence[float]) -> FitResult:
    """Fit ``measured ~= c * shape``; raises on length mismatch or
    non-positive shapes."""
    if len(measured) != len(shapes):
        raise ValueError("measured and shapes must align")
    if not measured:
        raise ValueError("cannot fit an empty series")
    if any(s <= 0 for s in shapes):
        raise ValueError("shapes must be positive")
    ratios = tuple(m / s for m, s in zip(measured, shapes))
    return FitResult(
        constant=float(np.median(ratios)),
        min_ratio=min(ratios),
        max_ratio=max(ratios),
        ratios=ratios,
    )


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The log-log slope of y against x (least squares).

    An exponent near 1.0 means linear growth, near 2.0 quadratic, etc.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two aligned points")
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
