"""Parameter-sweep harness.

A sweep runs a measurement function over a grid of configurations and
collects flat record dicts, which the table renderer and the fitters
consume directly. Execution is delegated to the *ambient*
:class:`~repro.engine.core.SweepEngine` (see :func:`repro.engine.use_engine`):
with no engine installed, sweeps run exactly as before — deterministic
serial order, no caching; under an engine they gain process-pool fan-out
and on-disk memoization while keeping the record stream identical.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, Mapping, Sequence

from ..engine.core import ambient_engine


def grid(**axes: Sequence) -> Iterator[Dict]:
    """Cartesian product of named axes as dicts, in axis order."""
    names = list(axes)
    for combo in itertools.product(*(axes[n] for n in names)):
        yield dict(zip(names, combo))


def sweep(
    measure: Callable[..., Mapping],
    configs: Iterable[Mapping],
) -> list[Dict]:
    """Run ``measure(**config)`` for each config; each record is the config
    merged with the measurement dict (measurement keys win on clashes)."""
    return ambient_engine().sweep(measure, configs)


def sweep_map(
    measure: Callable,
    configs: Iterable[Mapping],
) -> list:
    """Raw measurement results in config order (no config merging).

    The engine-backed building block experiments use when they post-process
    measurements themselves (custom record shapes, cross-config checks).
    """
    return ambient_engine().map(measure, configs)


def column(records: Sequence[Mapping], key: str) -> list:
    """Extract one column from sweep records."""
    return [r[key] for r in records]
