"""Parameter-sweep harness.

A sweep runs a measurement function over a grid of configurations and
collects flat record dicts, which the table renderer and the fitters
consume directly. Deliberately minimal: deterministic order, no
parallelism (the simulator's costs are exact counters, and runs are
seconds, not hours).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, Mapping, Sequence


def grid(**axes: Sequence) -> Iterator[Dict]:
    """Cartesian product of named axes as dicts, in axis order."""
    names = list(axes)
    for combo in itertools.product(*(axes[n] for n in names)):
        yield dict(zip(names, combo))


def sweep(
    measure: Callable[..., Mapping],
    configs: Iterable[Mapping],
) -> list[Dict]:
    """Run ``measure(**config)`` for each config; each record is the config
    merged with the measurement dict (measurement keys win on clashes)."""
    records: list[Dict] = []
    for config in configs:
        result = measure(**config)
        rec = dict(config)
        rec.update(result)
        records.append(rec)
    return records


def column(records: Sequence[Mapping], key: str) -> list:
    """Extract one column from sweep records."""
    return [r[key] for r in records]
