"""Plain-text tables for the experiment suite.

Every experiment prints one or more tables in the style of a paper's
evaluation section; EXPERIMENTS.md embeds their output verbatim, and the
benchmarks re-print them so a fresh run can be diffed against the record.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table with a separator under the header."""
    rendered = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
