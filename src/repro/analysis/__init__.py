"""Measurement analysis: curve fitting, sweeps, and text tables."""

from .fit import FitResult, fit_constant, growth_exponent
from .sweep import column, grid, sweep, sweep_map
from .tables import format_table

__all__ = [
    "FitResult",
    "column",
    "fit_constant",
    "format_table",
    "grid",
    "growth_exponent",
    "sweep",
    "sweep_map",
]
