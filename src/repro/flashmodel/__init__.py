"""Native algorithms for the unit-cost flash model of Ajwani et al."""

from .sort import flash_mergesort

__all__ = ["flash_mergesort"]
