"""Native sorting in the unit-cost flash model.

The Lemma 4.3 reduction *produces* flash programs; this module provides
the natural *native* comparison point: a mergesort written directly for
the model (read blocks of ``Br`` elements, write blocks of ``Bw``, cost =
transferred volume). Ajwani et al.'s message — the model sorts "as if all
blocks were small" — shows up as the volume
``~2N * (1 + ceil(log_f(N/M)))`` with fan-in ``f ~ M/(2*Br)``.

Experiment E9 places the measured volume of reduced AEM programs next to
this native algorithm's volume on the same instances: the reduction's
output is a legitimate flash program, not an artifact, and its volume is
within a small factor of native.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from ..machine.flash import FlashMachine


class _FlashRunReader:
    """Stream a run of write blocks by reading one small block at a time."""

    def __init__(self, fm: FlashMachine, addrs: Sequence[int], length: int):
        self.fm = fm
        self.addrs = list(addrs)
        self.length = length
        self._consumed = 0
        self._block = 0  # write-block index within the run
        self._small = 0  # small-block index within the write block
        self._buf: tuple = ()
        self._pos = 0

    def _fill(self) -> bool:
        while self._pos >= len(self._buf):
            if self._consumed >= self.length or self._block >= len(self.addrs):
                return False
            self._buf = self.fm.read_small(self.addrs[self._block], self._small)
            self._pos = 0
            self._small += 1
            if self._small >= self.fm.reads_per_write_block:
                self._small = 0
                self._block += 1
            if not self._buf:
                continue
        return True

    def peek(self):
        if not self._fill():
            return None
        return self._buf[self._pos]

    def take(self):
        if not self._fill():
            raise StopIteration("flash run exhausted")
        item = self._buf[self._pos]
        self._pos += 1
        self._consumed += 1
        return item


class _FlashRunWriter:
    """Buffer elements and emit full write blocks."""

    def __init__(self, fm: FlashMachine):
        self.fm = fm
        self._buf: list = []
        self.addrs: list[int] = []
        self.count = 0

    def push(self, item) -> None:
        self._buf.append(item)
        self.count += 1
        if len(self._buf) == self.fm.Bw:
            self.addrs.append(self.fm.write_fresh(self._buf))
            self._buf = []

    def close(self) -> list[int]:
        if self._buf:
            self.addrs.append(self.fm.write_fresh(self._buf))
            self._buf = []
        return self.addrs


def flash_mergesort(
    fm: FlashMachine,
    addrs: Sequence[int],
    *,
    memory: Optional[int] = None,
    key=None,
) -> list[int]:
    """Sort the elements stored in ``addrs``; returns the output run.

    ``memory`` (default the machine's M) bounds both the run-formation
    loads and the merge working set (``f`` input buffers of ``Br`` plus
    one output buffer of ``Bw``). Volume ``~2N*(1 + ceil(log_f(N/M)))``.
    """
    M = memory or fm.M
    key = key or (lambda x: x)
    items_total = sum(fm.block_len(a) for a in addrs)
    if items_total == 0:
        return []

    # Run formation: memoryloads of M elements (read small blocks, sort,
    # write out).
    runs: list[tuple[list[int], int]] = []
    loader = _FlashRunReader(fm, addrs, items_total)
    batch: list = []
    while True:
        nxt = loader.peek()
        if nxt is None or len(batch) == M:
            if not batch:
                break
            batch.sort(key=key)
            writer = _FlashRunWriter(fm)
            for item in batch:
                writer.push(item)
            runs.append((writer.close(), len(batch)))
            batch = []
            if nxt is None:
                break
        batch.append(loader.take())

    # Merging: fan-in bounded by the memory available for input buffers.
    fan = max(2, (M - fm.Bw) // fm.Br // 2)
    while len(runs) > 1:
        next_runs: list[tuple[list[int], int]] = []
        for t in range(0, len(runs), fan):
            group = runs[t : t + fan]
            if len(group) == 1:
                next_runs.append(group[0])
                continue
            readers = [_FlashRunReader(fm, a, ln) for a, ln in group]
            writer = _FlashRunWriter(fm)
            heap = []
            for idx, reader in enumerate(readers):
                item = reader.peek()
                if item is not None:
                    heap.append((key(item), idx))
            heapq.heapify(heap)
            while heap:
                _, idx = heapq.heappop(heap)
                writer.push(readers[idx].take())
                nxt = readers[idx].peek()
                if nxt is not None:
                    heapq.heappush(heap, (key(nxt), idx))
            next_runs.append((writer.close(), sum(ln for _, ln in group)))
        runs = next_runs
    return runs[0][0]
