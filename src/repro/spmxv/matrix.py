"""Sparse matrix conformations and the column-major external layout.

Section 5 fixes the setting: an N x N matrix A with exactly ``delta``
non-zero entries per column (H = delta * N in total), stored in external
memory in *column-major* order as a list of triples ``(i, j, a_ij)`` — the
non-zeros of column 0 by increasing row, then column 1, and so on.

A :class:`Conformation` is the structure (the positions of the non-zeros);
a *program* in the paper's sense is specific to one conformation, and the
generators below produce the instances the experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..atoms.atom import Atom
from ..machine.aem import AEMMachine
from .semiring import REAL, Semiring


@dataclass(frozen=True)
class Conformation:
    """Positions of the non-zeros: exactly ``delta`` sorted rows per column."""

    N: int
    delta: int
    cols: tuple[tuple[int, ...], ...]  # cols[j] = sorted row indices

    def __post_init__(self) -> None:
        if len(self.cols) != self.N:
            raise ValueError(f"expected {self.N} columns, got {len(self.cols)}")
        for j, rows in enumerate(self.cols):
            if len(rows) != self.delta:
                raise ValueError(
                    f"column {j} has {len(rows)} non-zeros, expected delta={self.delta}"
                )
            if any(not (0 <= r < self.N) for r in rows):
                raise ValueError(f"column {j} has row indices outside [0, N)")
            if any(rows[t] >= rows[t + 1] for t in range(len(rows) - 1)):
                raise ValueError(f"column {j} rows not strictly increasing")

    @property
    def H(self) -> int:
        """Total non-zeros, ``H = delta * N``."""
        return self.delta * self.N

    # ------------------------------------------------------------------
    # Generators.
    # ------------------------------------------------------------------
    @staticmethod
    def random(
        N: int, delta: int, rng: np.random.Generator | int | None = None
    ) -> "Conformation":
        """Each column's rows drawn uniformly without replacement."""
        if delta > N:
            raise ValueError("delta cannot exceed N")
        rng = np.random.default_rng(rng)
        cols = tuple(
            tuple(sorted(rng.choice(N, size=delta, replace=False).tolist()))
            for _ in range(N)
        )
        return Conformation(N=N, delta=delta, cols=cols)

    @staticmethod
    def banded(N: int, delta: int) -> "Conformation":
        """Rows ``j, j+1, ..., j+delta-1`` (mod N): a cyclic band —
        high-locality, the easy case for the direct algorithm."""
        if delta > N:
            raise ValueError("delta cannot exceed N")
        cols = tuple(
            tuple(sorted((j + t) % N for t in range(delta))) for j in range(N)
        )
        return Conformation(N=N, delta=delta, cols=cols)

    @staticmethod
    def transpose_like(N: int, delta: int, stride: Optional[int] = None) -> "Conformation":
        """Rows spread with a large stride: a worst-case-style conformation
        that defeats row locality (akin to the transposition permutation)."""
        if delta > N:
            raise ValueError("delta cannot exceed N")
        stride = stride or max(1, N // delta)
        cols = tuple(
            tuple(sorted((j + t * stride) % N for t in range(delta)))
            if len({(j + t * stride) % N for t in range(delta)}) == delta
            else tuple(sorted((j + t) % N for t in range(delta)))
            for j in range(N)
        )
        return Conformation(N=N, delta=delta, cols=cols)

    # ------------------------------------------------------------------
    # Layout & dense reference.
    # ------------------------------------------------------------------
    def column_major_entries(self, values: Sequence[float]) -> list[Atom]:
        """The triples as atoms in column-major order.

        ``values[p]`` is the numeric value of the p-th non-zero in
        column-major order. Each entry atom's key is ``(j, i)`` (its
        column-major rank is its position) and its value is ``(i, j, a)``.
        """
        if len(values) != self.H:
            raise ValueError(f"need {self.H} values, got {len(values)}")
        out: list[Atom] = []
        p = 0
        for j, rows in enumerate(self.cols):
            for i in rows:
                out.append(Atom((j, i), p, (i, j, values[p])))
                p += 1
        return out

    def positions_by_row(self) -> list[list[tuple[int, int]]]:
        """For each row i, the ``(column-major position, column)`` of its
        entries — derived from the conformation (problem metadata), which
        is exactly what the paper's per-conformation *program* knows."""
        by_row: list[list[tuple[int, int]]] = [[] for _ in range(self.N)]
        p = 0
        for j, rows in enumerate(self.cols):
            for i in rows:
                by_row[i].append((p, j))
                p += 1
        return by_row

    def to_dense(self, values: Sequence[float]) -> np.ndarray:
        """Dense numpy matrix (reference for verification only)."""
        A = np.zeros((self.N, self.N))
        p = 0
        for j, rows in enumerate(self.cols):
            for i in rows:
                A[i, j] = values[p]
                p += 1
        return A


def load_matrix(
    machine: AEMMachine, conf: Conformation, values: Sequence[float]
) -> list[int]:
    """Place the column-major triples into external memory (cost-free)."""
    return machine.load_input(conf.column_major_entries(values))


def load_vector(machine: AEMMachine, x: Sequence[float]) -> list[int]:
    """Place the dense vector into external memory (cost-free)."""
    return machine.load_input(list(x))


def reference_product(
    conf: Conformation,
    values: Sequence[float],
    x: Sequence[float],
    semiring: Semiring = REAL,
) -> list:
    """y = A x over the semiring, computed densely (verification only)."""
    y = [semiring.zero] * conf.N
    p = 0
    for j, rows in enumerate(conf.cols):
        for i in rows:
            y[i] = semiring.add(y[i], semiring.mul(values[p], x[j]))
            p += 1
    return y


class SpmxvVerificationError(AssertionError):
    """An SpMxV run produced a wrong output vector."""


def verify_spmxv_output(
    machine: AEMMachine,
    conf: Conformation,
    values: Sequence[float],
    x: Sequence[float],
    output_addrs: Sequence[int],
) -> list[float]:
    """Check the output vector against the dense reference; returns it.

    The counterpart of :func:`~repro.sorting.base.verify_sorted_output` /
    :func:`~repro.permute.base.verify_permutation_output` for SpMxV runs.
    Raises :class:`SpmxvVerificationError` on a length or value mismatch.
    Inspection is cost-free by design.
    """
    y = machine.collect_output(output_addrs)
    if len(y) != conf.N:
        raise SpmxvVerificationError(
            f"spmxv output mismatch: len={len(y)} vs {conf.N}"
        )
    ref = reference_product(conf, values, x)
    err = max((abs(a - b) for a, b in zip(y, ref)), default=0.0)
    if err > 1e-9 * max(1.0, conf.H):
        raise SpmxvVerificationError(
            f"spmxv output mismatch: len={len(y)} vs {conf.N}, err={err}"
        )
    return y
