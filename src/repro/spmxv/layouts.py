"""Alternative matrix layouts — why Section 5 fixes *column-major*.

Theorem 5.1's hardness is a statement about the column-major layout: the
entries a row needs are scattered across the stored sequence, so the direct
algorithm pays up to one read per entry. Stored *row-major* instead, the
direct algorithm scans the matrix sequentially (``h`` reads instead of up
to ``H``) and only the x-vector accesses stay scattered — the lower bound
machinery would not bite. This module provides the row-major layout and the
corresponding direct algorithm so the ablation (experiment A3) can measure
exactly how much the layout assumption is worth.
"""

from __future__ import annotations

from typing import Sequence

from ..atoms.atom import Atom
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.streams import BlockReader, BlockWriter
from .matrix import Conformation
from .naive import _BlockCache
from .semiring import REAL, Semiring


def row_major_entries(conf: Conformation, values: Sequence[float]) -> list[Atom]:
    """The same triples as ``column_major_entries`` reordered row-major.

    ``values`` stays indexed by *column-major* position (the canonical
    value order), so both layouts describe the identical matrix.
    """
    if len(values) != conf.H:
        raise ValueError(f"need {conf.H} values, got {len(values)}")
    triples = []
    p = 0
    for j, rows in enumerate(conf.cols):
        for i in rows:
            triples.append((i, j, p))
            p += 1
    triples.sort()
    return [Atom((i, j), p, (i, j, values[p])) for i, j, p in triples]


def load_matrix_row_major(
    machine: AEMMachine, conf: Conformation, values: Sequence[float]
) -> list[int]:
    """Place the row-major triples into external memory (cost-free)."""
    return machine.load_input(row_major_entries(conf, values))


def spmxv_naive_row_major(
    machine: AEMMachine,
    matrix_addrs: Sequence[int],
    x_addrs: Sequence[int],
    conf: Conformation,
    params: AEMParams,
    semiring: Semiring = REAL,
) -> list[int]:
    """The direct algorithm on a row-major layout: a single matrix scan.

    Cost ``O(h + H_x + omega*n)`` where the matrix contributes only ``h``
    sequential reads; the x accesses (up to one read per entry, cached)
    remain the scattered part. Contrast with
    :func:`repro.spmxv.naive.spmxv_naive` on column-major, where the matrix
    reads themselves are scattered.
    """
    B, N = params.B, conf.N
    writer = BlockWriter(machine, machine.allocate((N + B - 1) // B))
    x_cache = _BlockCache(machine, x_addrs)
    reader = BlockReader(machine, matrix_addrs)
    with machine.phase("spmxv_row_major/scan"):
        current_row = 0
        acc = semiring.zero
        machine.acquire(1, "row accumulator")
        for entry in reader:
            i, j, a = entry.value
            machine.release(1)  # entry consumed
            while current_row < i:
                writer.push(acc)  # slot transfers to the writer
                machine.acquire(1, "row accumulator")
                acc = semiring.zero
                current_row += 1
            acc = semiring.add(acc, semiring.mul(a, x_cache.get(j, B)))
            machine.touch(2)
        while current_row < N:
            writer.push(acc)
            if current_row < N - 1:
                machine.acquire(1, "row accumulator")
            acc = semiring.zero
            current_row += 1
        writer.close()
    x_cache.close()
    return list(writer.addrs)
