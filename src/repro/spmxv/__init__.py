"""Sparse-matrix dense-vector multiplication in the AEM (Section 5)."""

from .bounds import (
    SpmxvCountingBound,
    SpmxvRoundBound,
    log2_configs_per_round,
    spmxv_counting_general,
    spmxv_lower_shape,
    spmxv_min_rounds,
    spmxv_naive_shape,
    spmxv_sort_shape,
    spmxv_upper_shape,
    tau,
    theorem_5_1_applicable,
    theorem_5_1_exact,
)
from .layouts import (
    load_matrix_row_major,
    row_major_entries,
    spmxv_naive_row_major,
)
from .matrix import (
    Conformation,
    SpmxvVerificationError,
    load_matrix,
    load_vector,
    reference_product,
    verify_spmxv_output,
)
from .naive import spmxv_naive
from .semiring import BOOLEAN, INTEGER, MAX_PLUS, REAL, SEMIRINGS, Semiring
from .sort_based import spmxv_sort_based

__all__ = [
    "BOOLEAN",
    "Conformation",
    "INTEGER",
    "MAX_PLUS",
    "REAL",
    "SEMIRINGS",
    "Semiring",
    "SpmxvCountingBound",
    "SpmxvRoundBound",
    "SpmxvVerificationError",
    "load_matrix",
    "log2_configs_per_round",
    "load_matrix_row_major",
    "load_vector",
    "reference_product",
    "row_major_entries",
    "spmxv_counting_general",
    "spmxv_min_rounds",
    "spmxv_naive_row_major",
    "spmxv_lower_shape",
    "spmxv_naive",
    "spmxv_naive_shape",
    "spmxv_sort_based",
    "spmxv_sort_shape",
    "spmxv_upper_shape",
    "tau",
    "theorem_5_1_applicable",
    "theorem_5_1_exact",
    "verify_spmxv_output",
]
