"""The sorting-based SpMxV algorithm.

Section 5's second upper bound, ``O(omega*h*log_{omega m}(N/max{delta,B})
+ omega*n)``:

1. **Elementary products** — a simultaneous scan of A (column-major, so
   the needed x_j arrive in order) and x, replacing each entry ``a_ij``
   with the product ``a_ij * x_j`` keyed by its row: ``h + n`` reads,
   ``h`` writes.
2. **Meta columns** — the product stream splits into ``delta`` meta
   columns of N entries each (exactly N, since every column holds delta
   entries); each is sorted by row with the Section 3 mergesort.
3. **Combine** — duplicates within a sorted meta column are added in one
   scan, yielding ``delta`` partial vectors sorted by row.
4. **Add up** — the partial vectors are merged-with-addition in a tree of
   fan-in ``~m`` (streaming, one block per input resident); the volume
   shrinks geometrically up the tree.
5. **Densify** — the final combined vector is written as N dense values.

Our base-case runs have length ``omega*M`` (the mergesort base case) rather
than the paper's ``delta`` (pre-sorted columns), which matches the paper's
bound whenever ``delta <= omega*M`` — all experiment regimes — and is
documented in DESIGN.md.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..atoms.atom import Atom
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.phantom import PHANTOM
from ..machine.streams import BlockReader, BlockWriter
from ..sorting.mergesort import sort_run
from ..sorting.runs import Run, run_of_input, split_run
from .matrix import Conformation
from .naive import _BlockCache
from .semiring import REAL, Semiring


class _UidCounter:
    """Fresh uids for atoms created by the semiring program."""

    def __init__(self, start: int):
        self.next = start

    def take(self) -> int:
        u = self.next
        self.next += 1
        return u


def _elementary_products(
    machine: AEMMachine,
    matrix_addrs: Sequence[int],
    x_addrs: Sequence[int],
    params: AEMParams,
    semiring: Semiring,
    uids: _UidCounter,
) -> Run:
    """Scan A and x together; emit product atoms keyed by row."""
    writer = BlockWriter(machine)
    x_cache = _BlockCache(machine, x_addrs)
    reader = BlockReader(machine, matrix_addrs)
    if machine.counting:
        # Entry tokens are ((j, i), p): the column and row are part of the
        # key, so the x-block traffic and the emitted product tokens
        # (i, fresh uid) are fully determined without the values.
        for entry in reader:
            (j, i) = entry[0]
            x_cache.get(j, params.B)
            machine.touch()
            machine.release(1)  # the entry atom is consumed
            writer.push_new((i, uids.take()))
        x_cache.close()
        return Run.of(writer.close(), writer.count)
    for entry in reader:
        i, j, a = entry.value
        xj = x_cache.get(j, params.B)
        machine.touch()
        machine.release(1)  # the entry atom is consumed
        writer.push_new(Atom(i, uids.take(), semiring.mul(a, xj)))
    x_cache.close()
    return Run.of(writer.close(), writer.count)


def _combine_scan(
    machine: AEMMachine, run: Run, semiring: Semiring, uids: _UidCounter
) -> Run:
    """Add adjacent atoms with equal row keys in a sorted run."""
    counting = machine.counting
    writer = BlockWriter(machine)
    reader = BlockReader(machine, run.addrs)
    # Slot discipline: the accumulator inherits the slot of the atom that
    # opened it; atoms merged into it release theirs; emitting transfers
    # the accumulator's slot to the writer. In counting mode atoms are
    # (row, uid) tokens: equal-row detection, uid consumption, and slot
    # movements are identical, only the addition is skipped.
    cur_key = None
    cur_val = None
    for atom in reader:
        machine.touch()
        key = atom[0] if counting else atom.key
        if key == cur_key:
            if not counting:
                cur_val = semiring.add(cur_val, atom.value)
            machine.release(1)
        else:
            if cur_key is not None:
                writer.push(
                    (cur_key, uids.take())
                    if counting
                    else Atom(cur_key, uids.take(), cur_val)
                )
            cur_key = key
            if not counting:
                cur_val = atom.value
    if cur_key is not None:
        writer.push(
            (cur_key, uids.take()) if counting else Atom(cur_key, uids.take(), cur_val)
        )
    return Run.of(writer.close(), writer.count)


def _merge_combine(
    machine: AEMMachine,
    runs: Sequence[Run],
    semiring: Semiring,
    uids: _UidCounter,
) -> Run:
    """Streaming merge of row-sorted partial vectors with addition.

    Holds one block per input run (fan-in is capped at ``m - 1`` by the
    caller), so the footprint is ``O(M)``.
    """
    counting = machine.counting
    readers = [BlockReader(machine, r.addrs) for r in runs]
    writer = BlockWriter(machine)
    heap: list = []
    for t, reader in enumerate(readers):
        atom = reader.peek()
        if atom is not None:
            heap.append((atom[0] if counting else atom.key, t))
    heapq.heapify(heap)
    # Same slot discipline as _combine_scan.
    cur_key = None
    cur_val = None
    while heap:
        key, t = heapq.heappop(heap)
        atom = readers[t].take()
        machine.touch()
        if key == cur_key:
            if not counting:
                cur_val = semiring.add(cur_val, atom.value)
            machine.release(1)
        else:
            if cur_key is not None:
                writer.push(
                    (cur_key, uids.take())
                    if counting
                    else Atom(cur_key, uids.take(), cur_val)
                )
            cur_key = key
            if not counting:
                cur_val = atom.value
        nxt = readers[t].peek()
        if nxt is not None:
            heapq.heappush(heap, (nxt[0] if counting else nxt.key, t))
    if cur_key is not None:
        writer.push(
            (cur_key, uids.take()) if counting else Atom(cur_key, uids.take(), cur_val)
        )
    for reader in readers:
        reader.close()
    return Run.of(writer.close(), writer.count)


def spmxv_sort_based(
    machine: AEMMachine,
    matrix_addrs: Sequence[int],
    x_addrs: Sequence[int],
    conf: Conformation,
    params: AEMParams,
    semiring: Semiring = REAL,
) -> list[int]:
    """Compute y = A x by sorting; returns the output (y) block addresses.

    Cost ``O(omega*h*log_{omega m}(N/max{delta,B}) + omega*n)``.
    """
    B, N, delta = params.B, conf.N, conf.delta
    uids = _UidCounter(conf.H + N)

    with machine.phase("spmxv_sort/products"):
        products = _elementary_products(
            machine, matrix_addrs, x_addrs, params, semiring, uids
        )

    with machine.phase("spmxv_sort/meta-sort"):
        meta_runs = split_run(machine, products, max(1, delta))
        partials: list[Run] = []
        for meta in meta_runs:
            sorted_meta = sort_run(machine, meta, params)
            partials.append(_combine_scan(machine, sorted_meta, semiring, uids))

    with machine.phase("spmxv_sort/add"):
        fan = max(2, params.m - 1)
        while len(partials) > 1:
            grouped: list[Run] = []
            for t in range(0, len(partials), fan):
                group = [r for r in partials[t : t + fan] if not r.is_empty()]
                if not group:
                    continue
                if len(group) == 1:
                    grouped.append(group[0])
                else:
                    grouped.append(_merge_combine(machine, group, semiring, uids))
            partials = grouped or [Run.of((), 0)]

    with machine.phase("spmxv_sort/densify"):
        counting = machine.counting
        out_addrs = machine.allocate((N + B - 1) // B)
        writer = BlockWriter(machine, out_addrs)
        reader = BlockReader(machine, partials[0].addrs)
        pending = reader.peek()
        for i in range(N):
            if pending is not None and (pending[0] if counting else pending.key) == i:
                atom = reader.take()
                machine.touch()
                # Repackage the accumulated value as a plain output value
                # (in counting mode the token stands in; the output vector
                # is never read back on a counting machine).
                writer.push(atom if counting else atom.value)
                pending = reader.peek()
            else:
                writer.push_new(PHANTOM if counting else semiring.zero)
        writer.close()
        reader.close()
    return list(out_addrs)
