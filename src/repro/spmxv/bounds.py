"""SpMxV bounds (Section 5 / Theorem 5.1).

Upper bounds (shapes)::

    direct :       H + omega*n
    sorting-based: omega*h*log_{omega m}(N/max{delta,B}) + omega*n

Lower bound (Theorem 5.1, for semiring programs over column-major
matrices with exactly delta non-zeros per column)::

    Omega( min{ H, omega*h*log_{omega m}(N/max{delta,B}) } )

under the assumptions ``B > 2``, ``M > 4B`` and
``omega*delta*M*B <= N^{1-eps}``.

Note on the denominator: the paper's *abstract* states ``max{delta, M}``
while Section 5 (theorem statement, upper-bound discussion and proof) uses
``max{delta, B}``; we implement Section 5's version and expose the
abstract's through ``denominator="M"``.

Besides the asymptotic shape, :func:`theorem_5_1_exact` evaluates the
proof's final display — the explicit inequality with the paper's
``tau(N, delta, B)`` term — which is a true constant-free lower bound on
any round-based semiring program and is what the soundness experiment
(E11) compares measured costs against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.params import AEMParams


def spmxv_naive_shape(N: int, delta: int, p: AEMParams) -> float:
    """Direct algorithm: ``O(H + omega*n)``."""
    H = delta * N
    return H + p.omega * p.n(N)


def _log_levels(N: int, delta: int, p: AEMParams, denominator: str) -> float:
    if denominator == "B":
        den = max(delta, p.B)
    elif denominator == "M":
        den = max(delta, p.M)
    else:
        raise ValueError("denominator must be 'B' or 'M'")
    base = max(2.0, p.omega * p.m)
    ratio = max(2.0, N / max(1, den))
    return max(1.0, math.log(ratio) / math.log(base))


def spmxv_sort_shape(
    N: int, delta: int, p: AEMParams, *, denominator: str = "B"
) -> float:
    """Sorting-based algorithm:
    ``O(omega*h*log_{omega m}(N/max{delta,B}) + omega*n)``."""
    h = p.n(delta * N)
    return p.omega * h * _log_levels(N, delta, p, denominator) + p.omega * p.n(N)


def spmxv_upper_shape(N: int, delta: int, p: AEMParams) -> float:
    """The better of the two algorithms."""
    return min(spmxv_naive_shape(N, delta, p), spmxv_sort_shape(N, delta, p))


def spmxv_lower_shape(
    N: int, delta: int, p: AEMParams, *, denominator: str = "B"
) -> float:
    """Theorem 5.1's asymptotic shape:
    ``min{H, omega*h*log_{omega m}(N/max{delta,B})}``."""
    H = delta * N
    h = p.n(H)
    return min(float(H), p.omega * h * _log_levels(N, delta, p, denominator))


def theorem_5_1_applicable(
    N: int, delta: int, p: AEMParams, eps: float = 0.05
) -> bool:
    """The theorem's assumptions: ``B > 2``, ``M > 4B``,
    ``omega*delta*M*B <= N^(1-eps)``."""
    return (
        p.B > 2
        and p.M > 4 * p.B
        and p.omega * delta * p.M * p.B <= N ** (1.0 - eps)
    )


def tau(N: int, delta: int, B: int) -> float:
    """log2 of the paper's ``tau(N, delta, B)`` input-reordering slack::

        tau = 3^{delta*N}      if B < delta
              1                if B = delta
              (2eB/delta)^{delta*N}  if B > delta
    """
    H = delta * N
    if B < delta:
        return H * math.log2(3.0)
    if B == delta:
        return 0.0
    return H * math.log2(2.0 * math.e * B / delta)


@dataclass(frozen=True)
class SpmxvCountingBound:
    """The Theorem 5.1 proof's final display, evaluated exactly."""

    N: int
    delta: int
    params: AEMParams
    log2_conformations: float  # log2 C(N, delta)^N — what must be distinguished
    log2_tau: float
    numerator: float
    denominator: float
    cost: float


def theorem_5_1_exact(N: int, delta: int, p: AEMParams) -> SpmxvCountingBound:
    """Evaluate the proof's final lower-bound display::

        Q >= delta*N * log( (N/max{3*delta, 2eB}) * (B/(e*omega*M)) )
             / ( 2*log H + (B/omega)*log(e*omega*M/B) + (B/(omega*M))*log H )

    (logs base 2, clamped at 0). A constant-free lower bound on the cost
    of any round-based semiring program for *some* conformation with
    exactly delta non-zeros per column in column-major layout.
    """
    M, B, w = p.M, p.B, p.omega
    H = max(2, delta * N)
    # What the program must distinguish: C(N, delta)^N conformations,
    # divided by the tau reordering slack.
    log_conf = N * _log2_binom(N, delta)
    log_tau = tau(N, delta, B)

    inner = (N / max(3.0 * delta, 2.0 * math.e * B)) * (B / (math.e * w * M))
    numerator = delta * N * (math.log2(inner) if inner > 1.0 else 0.0)
    denominator = (
        2.0 * math.log2(H)
        + (B / w) * math.log2(math.e * w * M / B)
        + (B / (w * M)) * math.log2(H)
    )
    cost = max(0.0, numerator / denominator) if denominator > 0 else 0.0
    return SpmxvCountingBound(
        N=N,
        delta=delta,
        params=p,
        log2_conformations=log_conf,
        log2_tau=log_tau,
        numerator=numerator,
        denominator=denominator,
        cost=cost,
    )


def _log2_binom(n: int, k: int) -> float:
    if k <= 0 or k >= n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


@dataclass(frozen=True)
class SpmxvRoundBound:
    """The round-count form of the Theorem 5.1 argument."""

    N: int
    delta: int
    params: AEMParams
    rounds: int
    cost: float


def log2_configs_per_round(N: int, delta: int, p: AEMParams, additions: float) -> float:
    """log2 of the number of preceding configurations one round allows.

    The proof's per-round factor ``H^{(omega+1)M/B} * (e*omega*M/B)^{M+s_r}``
    (block-address choices times content choices), plus the ``H`` factor
    for the round's choice of ``s_r`` — ``additions`` is that round's
    ``s_r``, the number of semiring additions it performs.
    """
    M, B, w = p.M, p.B, p.omega
    H = max(2, delta * N)
    return (
        (w + 1) * (M / B) * math.log2(H)
        + (M + additions) * math.log2(math.e * w * M / B)
        + math.log2(H)
    )


def spmxv_min_rounds(N: int, delta: int, p: AEMParams) -> SpmxvRoundBound:
    """Solve the proof's round inequality for the minimum round count.

    Over R rounds with ``sum s_r = (delta - 1) * N`` total additions, the
    distinguishable-configuration inequality

        R*(w+1)*(M/B)*log H + (M*R + (delta-1)*N)*log(e*w*M/B) + R*log H
            >= delta*N*log(N/delta) - log tau

    yields ``R_min``; every non-final round costs at least
    ``omega*(m-1)``, giving the cost bound. This is the exact round-count
    companion of :func:`theorem_5_1_exact` (which divides through and
    simplifies), and the form the round-based soundness tests use.
    """
    M, B, w = p.M, p.B, p.omega
    H = max(2, delta * N)
    if delta >= 1 and N > delta:
        demand = delta * N * math.log2(N / delta) - tau(N, delta, B)
    else:
        demand = 0.0
    demand -= (delta - 1) * N * math.log2(math.e * w * M / B)
    per_round = (
        (w + 1) * (M / B) * math.log2(H)
        + M * math.log2(math.e * w * M / B)
        + math.log2(H)
    )
    rounds = max(0, math.ceil(demand / per_round)) if per_round > 0 else 0
    cost = max(0.0, max(1.0, w * (p.m - 1)) * (rounds - 1))
    return SpmxvRoundBound(N=N, delta=delta, params=p, rounds=rounds, cost=cost)


def spmxv_counting_general(N: int, delta: int, p: AEMParams) -> float:
    """Lower bound for *arbitrary* semiring programs.

    As with permuting (Corollary 4.2): an arbitrary program converts to a
    round-based one on doubled memory at a bounded constant-factor cost,
    so the round-count bound at 2M, divided by the Lemma 4.1 constant,
    bounds every program.
    """
    from ..core.counting import LEMMA_4_1_CONSTANT

    doubled = spmxv_min_rounds(N, delta, p.with_memory(2 * p.M))
    return doubled.cost / LEMMA_4_1_CONSTANT
