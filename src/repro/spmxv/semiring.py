"""Semirings for SpMxV.

The Theorem 5.1 lower bound holds for *semiring programs*: algorithms that
use only addition and multiplication, never subtraction or cancellation
(ruling out Strassen-style tricks). The algorithms here are parameterized
by a :class:`Semiring` so the restriction is structural, not a convention:
there is no subtract operation to call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring (S, add, mul, zero, one)."""

    name: str
    zero: Any
    one: Any
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]

    def sum(self, items) -> Any:
        acc = self.zero
        for it in items:
            acc = self.add(acc, it)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


REAL = Semiring("real(+,*)", 0.0, 1.0, lambda a, b: a + b, lambda a, b: a * b)
INTEGER = Semiring("int(+,*)", 0, 1, lambda a, b: a + b, lambda a, b: a * b)
MAX_PLUS = Semiring(
    "max-plus", float("-inf"), 0.0, max, lambda a, b: a + b
)
BOOLEAN = Semiring("boolean", False, True, lambda a, b: a or b, lambda a, b: a and b)

SEMIRINGS = {s.name: s for s in (REAL, INTEGER, MAX_PLUS, BOOLEAN)}
