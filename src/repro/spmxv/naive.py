"""The direct (naive) SpMxV algorithm: ``O(H + omega*n)``.

Section 5's first upper bound: "For each output element y_i, the program
considers all entries a_ij in the i-th row of A, multiplying it by x_j and
adding the result to y_i." With A in column-major order the row's entries
are scattered, so the direct program pays up to one read per entry (plus
the x accesses, also at most one read each), but writes only the ``n``
output blocks: ``O(H + omega*n)`` total — unbeatable when writes are very
expensive or the matrix is very sparse.

Which blocks hold which entries is derived from the conformation: the
paper's programs are conformation-specific, so the access plan is part of
the program, not data to be discovered.
"""

from __future__ import annotations

from typing import Sequence

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.phantom import PhantomBlock
from .matrix import Conformation
from .semiring import REAL, Semiring


class _BlockCache:
    """A one-block read cache with honest cost/slot accounting."""

    def __init__(self, machine: AEMMachine, addrs: Sequence[int]):
        self.machine = machine
        self.addrs = addrs
        self.idx = -1
        self.blk: list = []

    def get(self, pos: int, B: int):
        bidx = pos // B
        if bidx != self.idx:
            if self.idx >= 0:
                self.machine.release(len(self.blk))
            self.blk = self.machine.read(self.addrs[bidx])
            self.idx = bidx
        return self.blk[pos % B]

    def close(self) -> None:
        if self.idx >= 0:
            self.machine.release(len(self.blk))
            self.idx = -1
            self.blk = []


def spmxv_naive(
    machine: AEMMachine,
    matrix_addrs: Sequence[int],
    x_addrs: Sequence[int],
    conf: Conformation,
    params: AEMParams,
    semiring: Semiring = REAL,
) -> list[int]:
    """Compute y = A x directly; returns the output (y) block addresses.

    Cost at most ``2H`` reads + ``n`` writes = ``O(H + omega*n)``.
    """
    B = params.B
    N = conf.N
    by_row = conf.positions_by_row()
    out_addrs = machine.allocate((N + B - 1) // B)

    counting = machine.counting
    mat_cache = _BlockCache(machine, matrix_addrs)
    x_cache = _BlockCache(machine, x_addrs)
    with machine.phase("spmxv_naive/rows"):
        for t, out_addr in enumerate(out_addrs):
            lo, hi = t * B, min((t + 1) * B, N)
            machine.acquire(hi - lo, "output accumulators")
            if counting:
                # The access plan is pure conformation metadata, so the
                # cache traffic (and with it every read) is content-free;
                # only the arithmetic is skipped, and the output block is
                # written as a sized phantom payload.
                for i in range(lo, hi):
                    for pos, j in by_row[i]:
                        mat_cache.get(pos, B)
                        x_cache.get(j, B)
                        machine.touch(2)
                machine.write(out_addr, PhantomBlock(hi - lo))
                continue
            acc = []
            for i in range(lo, hi):
                y_i = semiring.zero
                for pos, j in by_row[i]:
                    entry = mat_cache.get(pos, B)
                    _, _, a = entry.value
                    xj = x_cache.get(j, B)
                    y_i = semiring.add(y_i, semiring.mul(a, xj))
                    machine.touch(2)
                acc.append(y_i)
            machine.write(out_addr, acc)
    mat_cache.close()
    x_cache.close()
    return list(out_addrs)
