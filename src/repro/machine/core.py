"""The shared machine substrate: storage, ledger, and the event bus.

Every memory-model machine in this repository — the (M, B, omega)-AEM and
its EM/ARAM special cases, and the unit-cost flash model — is the same
three ingredients with different cost semantics on top:

* a :class:`~repro.machine.blockstore.BlockStore` (unbounded block-addressed
  external memory),
* an :class:`~repro.machine.internal.InternalMemory` ledger (the capacity
  ``M``), and
* a stream of *machine events* consumed by attached
  :class:`~repro.observe.MachineObserver` instances (cost accounting,
  trace recording, wear profiling, progress display, ...).

:class:`MachineCore` packages the three. The concrete machines own a core,
translate their model's operations into core calls, and supply the
per-I/O ``cost`` their model charges (``1``/``omega`` for the AEM, the
transferred volume for the flash model), so every consumer downstream sees
one uniform event stream regardless of which model produced it.

Dispatch comes in two modes (``dispatch=`` / the ``REPRO_DISPATCH``
environment variable):

``"batched"`` (the default)
    Batchable events (read/write/acquire/release/touch) accumulate into
    one reused :class:`~repro.observe.batch.EventBatch` of columnar
    parallel arrays and are *flushed* to consumers at phase enter/exit,
    round boundaries, attach/detach, every ``flush_every`` events, and on
    explicit :meth:`flush_events` calls. Observers overriding
    ``on_batch`` consume whole batches; observers declaring
    ``needs_events``/``needs_payloads`` keep exact synchronous per-event
    delivery (real payloads included); everything else is replayed
    event-by-event at flush time, in order, from the columns. Phase and
    round events are never buffered — they are the flush boundaries, so
    per-phase attribution and round-form checks see complete, correctly
    segmented streams.

``"events"``
    The classic fully synchronous bus: at attach time the core inspects
    which handlers the observer actually *overrides* and adds only those
    to per-event callback lists. This is the reference semantics that the
    batched mode must reproduce bit-identically (see the dispatch parity
    suite), and the A/B baseline for the dispatch microbenchmarks.

In both modes, emitting an event that nobody listens to is one truthiness
check on an empty list, and batching at the semantic level still applies —
``touch(k)`` reports ``k`` internal operations in one event, and block
transfers are one event per I/O, never per atom.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence

from ..observe.base import EVENTS, MachineObserver
from ..observe.batch import (
    BATCHED_EVENTS,
    KIND_ACQUIRE,
    KIND_READ,
    KIND_RELEASE,
    KIND_TOUCH,
    KIND_WRITE,
    EventBatch,
)
from .blockstore import BlockStore
from .internal import InternalMemory

#: Lifecycle hooks, called at attach/detach rather than dispatched.
_LIFECYCLE = ("on_attach", "on_detach")

#: The dispatch-mode switch read when ``dispatch=None`` (one of
#: :data:`DISPATCH_MODES`); lets CI and the parity suite flip a whole run
#: to the per-event reference bus without threading a parameter through.
DISPATCH_ENV = "REPRO_DISPATCH"
DISPATCH_MODES = ("batched", "events")

#: Buffered events between forced flushes in batched mode. Large enough
#: to amortize dispatch, small enough that replayed consumers never sit
#: on an unbounded buffer.
DEFAULT_FLUSH_EVERY = 512

_BATCHED_SET = frozenset(BATCHED_EVENTS)

#: Installed by :mod:`repro.telemetry.spans`: a zero-argument callable
#: returning an observer to auto-attach to every new core (or ``None``
#: when no trace is active). The machine layer stays import-free of
#: telemetry; the factory is the one seam between them.
_SPAN_OBSERVER_FACTORY = None


def install_span_observer_factory(factory) -> None:
    """Register the ambient span-recorder factory (telemetry's hook).

    ``factory()`` is called once per :class:`MachineCore` construction
    and must be cheap when no trace is active (return ``None``); a
    non-``None`` return value is attached like any other observer.
    """
    global _SPAN_OBSERVER_FACTORY
    _SPAN_OBSERVER_FACTORY = factory


def default_dispatch() -> str:
    """The dispatch mode used when machines don't pass one explicitly."""
    mode = os.environ.get(DISPATCH_ENV) or "batched"
    if mode not in DISPATCH_MODES:
        raise ValueError(
            f"{DISPATCH_ENV}={mode!r} is not a dispatch mode; "
            f"choose one of {DISPATCH_MODES}"
        )
    return mode


def _validate_handler_names(observer: MachineObserver) -> None:
    """Reject ``on_*`` methods that match no machine event.

    Overriding is opt-in by name, so a typo'd handler (``on_raed``)
    would otherwise just never fire. Every class in the observer's MRO
    below :class:`MachineObserver` is checked, so typos in mixins and
    base classes surface too.
    """
    allowed = set(EVENTS) | set(_LIFECYCLE) | {"on_batch"}
    for klass in type(observer).__mro__:
        if klass in (MachineObserver, object):
            continue
        for name, value in vars(klass).items():
            if name.startswith("on_") and callable(value) and name not in allowed:
                raise ValueError(
                    f"{klass.__name__}.{name} matches no machine event; "
                    f"known events are {EVENTS} (plus on_batch and "
                    f"lifecycle {_LIFECYCLE})"
                )


class MachineCore:
    """Block storage + capacity ledger + observer event bus."""

    def __init__(
        self,
        disk: BlockStore,
        mem: InternalMemory,
        observers: Sequence[MachineObserver] = (),
        *,
        dispatch: str | None = None,
        flush_every: int | None = None,
    ):
        self.disk = disk
        self.mem = mem
        # Counting-mode cores sit on a PhantomBlockStore and carry no atom
        # payloads; observers that need contents are rejected at attach.
        self.payloads = not getattr(disk, "phantom", False)
        if dispatch is None:
            dispatch = default_dispatch()
        elif dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch={dispatch!r} is not a dispatch mode; "
                f"choose one of {DISPATCH_MODES}"
            )
        self.dispatch = dispatch
        self.flush_every = (
            DEFAULT_FLUSH_EVERY if flush_every is None else int(flush_every)
        )
        if self.flush_every < 1:
            raise ValueError("flush_every must be a positive event count")
        self.io_count = 0  # total I/O events emitted (reads + writes)
        self.last_drained = 0  # slots drained by the most recent round boundary
        self.observers: list[MachineObserver] = []
        self.batch = EventBatch()
        self._flushing = False
        self._on_batch: list = []  # bound on_batch methods, attach order
        self._replay: list = []  # legacy observers replayed at flush
        self._buffering = False  # batched mode AND someone consumes batches
        self._record_columns = False  # some consumer needs the columns
        for name in EVENTS:
            setattr(self, "_" + name, [])
        for obs in observers:
            self.attach(obs)
        if _SPAN_OBSERVER_FACTORY is not None:
            span_observer = _SPAN_OBSERVER_FACTORY()
            if span_observer is not None:
                self.attach(span_observer)

    # ------------------------------------------------------------------
    # Observer management.
    # ------------------------------------------------------------------
    def attach(self, observer: MachineObserver) -> MachineObserver:
        """Attach ``observer``; only its overridden handlers are dispatched.

        Handler names are validated against the event vocabulary: an
        ``on_``-prefixed method that matches no known event (``on_raed``)
        raises :class:`ValueError` here, at attach time, instead of
        silently never firing. Any buffered events are flushed first, so
        the new observer sees nothing that happened before it attached.
        """
        if observer in self.observers:
            raise ValueError(f"observer {observer!r} is already attached")
        if getattr(observer, "needs_payloads", False) and not self.payloads:
            raise ValueError(
                f"{type(observer).__name__} declares needs_payloads=True "
                "(it reads atom contents), but this machine runs in counting "
                "mode and its event stream carries block sizes only; attach "
                "it to a full (counting=False) machine instead"
            )
        _validate_handler_names(observer)
        self.flush_events()
        self.observers.append(observer)
        self._rebuild_dispatch()
        hook = getattr(observer, "on_attach", None)
        if hook is not None:
            hook(self)
        return observer

    def detach(self, observer: MachineObserver) -> None:
        """Detach ``observer`` (buffered events are delivered to it first)."""
        self.flush_events()
        self.observers.remove(observer)
        self._rebuild_dispatch()
        hook = getattr(observer, "on_detach", None)
        if hook is not None:
            hook(self)

    def _rebuild_dispatch(self) -> None:
        """Recompute every dispatch list from ``self.observers``.

        Observers sort into three tiers (batched mode):

        * *synchronous* — ``needs_events``/``needs_payloads`` observers,
          whose overridden handlers go into the per-event lists exactly as
          in events mode (they see real payloads, in real time);
        * *batch consumers* — observers overriding ``on_batch``;
        * *replayed* — observers overriding a batchable handler but not
          ``on_batch``; the buffered events are replayed to them at each
          flush, in order, with placeholder payloads.

        Phase/round handlers are always dispatched synchronously (those
        events are flush points, fired after the flush). The columnar
        arrays are only recorded when some attached consumer needs them:
        a replayed observer, or a batch consumer with
        ``batch_columns = True``. Aggregate-only consumers (the cost
        ledger) leave the columns off, which is the machine's per-I/O
        fast path.
        """
        base = MachineObserver
        base_batch = getattr(base, "on_batch", None)
        for name in EVENTS:
            getattr(self, "_" + name).clear()
        self._on_batch.clear()
        self._replay.clear()
        batched = self.dispatch == "batched"
        needs_columns = False
        for obs in self.observers:
            cls = type(obs)
            synchronous = (
                not batched
                or getattr(obs, "needs_events", False)
                or getattr(obs, "needs_payloads", False)
            )
            has_batch = (
                not synchronous
                and getattr(cls, "on_batch", base_batch) is not base_batch
            )
            replayed = False
            for name in EVENTS:
                handler = getattr(cls, name, None)
                if handler is None or handler is getattr(base, name):
                    continue
                if synchronous or name not in _BATCHED_SET:
                    getattr(self, "_" + name).append(getattr(obs, name))
                elif not has_batch:
                    replayed = True
            if has_batch:
                self._on_batch.append(obs.on_batch)
                if getattr(obs, "batch_columns", True):
                    needs_columns = True
            if replayed:
                self._replay.append(obs)
                needs_columns = True
        self._record_columns = needs_columns
        self._buffering = batched and bool(self._on_batch or self._replay)

    def find(self, kind: type) -> list:
        """All attached observers that are instances of ``kind``."""
        return [obs for obs in self.observers if isinstance(obs, kind)]

    # ------------------------------------------------------------------
    # Batch flushing.
    # ------------------------------------------------------------------
    def flush_events(self) -> None:
        """Deliver all buffered events to batch/replayed consumers.

        Safe to call at any time (no-op when the buffer is empty or when
        already mid-flush); readout paths on observers call this so that
        totals read back exact regardless of buffer state.
        """
        batch = self.batch
        if not batch.n or self._flushing:
            return
        self._flushing = True
        try:
            for cb in self._on_batch:
                cb(batch)
            for obs in self._replay:
                batch.replay(obs)
        finally:
            batch.clear()
            self._flushing = False

    # ------------------------------------------------------------------
    # Raw event emission (machines with bespoke transfer shapes, e.g. the
    # flash model's sub-block reads, charge the store themselves and emit).
    # ------------------------------------------------------------------
    def emit_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.io_count += 1
        if self._on_read:
            for cb in self._on_read:
                cb(addr, items, cost)
        if self._buffering:
            batch = self.batch
            batch.n += 1
            batch.reads += 1
            batch.read_cost += cost
            if self._record_columns:
                batch.kinds.append(KIND_READ)
                batch.addrs.append(addr)
                batch.lengths.append(len(items))
                batch.costs.append(cost)
                batch.occs.append(self.mem.occupancy)
            if batch.n >= self.flush_every:
                self.flush_events()

    def emit_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.io_count += 1
        if self._on_write:
            for cb in self._on_write:
                cb(addr, items, cost)
        if self._buffering:
            batch = self.batch
            batch.n += 1
            batch.writes += 1
            batch.write_cost += cost
            if self._record_columns:
                batch.kinds.append(KIND_WRITE)
                batch.addrs.append(addr)
                batch.lengths.append(len(items))
                batch.costs.append(cost)
                batch.occs.append(self.mem.occupancy)
            if batch.n >= self.flush_every:
                self.flush_events()

    # ------------------------------------------------------------------
    # Ledger-coupled block transfers (the AEM semantics).
    # ------------------------------------------------------------------
    def read_block(self, addr: int, cost: float, *, keep: bool = True, items=None) -> list:
        """Read a whole block; its atoms become (or must fit as) resident.

        With ``keep=True`` the atoms are acquired in the ledger (the
        caller now owns their slots); with ``keep=False`` the ledger only
        checks they *would* fit (peek semantics). Counting-mode machines
        pass ``items`` explicitly (their stashed scheduling tokens, or
        nothing — the phantom block then stands in); the cost, address and
        length of the event are identical either way.
        """
        if items is None:
            blk = self.disk.get(addr)
            # Full stores hand out a defensive copy (algorithms mutate the
            # lists they hold); phantom blocks are immutable and sized, so
            # the copy would be pure waste.
            items = list(blk) if self.payloads else blk
        mem = self.mem
        k = len(items)
        if keep:
            # mem.acquire(k), inlined for the per-I/O hot path; the
            # overflow case falls back to the real method so the
            # CapacityError (message, fields) stays exactly the ledger's.
            occ = mem.occupancy + k
            if mem.enforce and occ > mem.capacity:
                mem.acquire(k)
            else:
                mem.occupancy = occ
                if occ > mem.peak:
                    mem.peak = occ
        else:
            mem.require(k)
        self.emit_read(addr, items, cost)
        return items

    def write_block(
        self, addr: int, items: Sequence, cost: float, *, release: bool = True
    ) -> None:
        """Write a block; with ``release=True`` its atoms leave the ledger."""
        self.disk.set(addr, items)
        if release:
            # mem.release(len(items)), inlined (see read_block); the
            # underflow case falls back for the exact ReleaseError.
            mem = self.mem
            occ = mem.occupancy - len(items)
            if occ < 0:
                mem.release(len(items))
            else:
                mem.occupancy = occ
        # Full stores emit the canonical stored tuple (immutable even if the
        # caller mutates its list afterwards); phantom stores hold sizes
        # only, and observers on a payload-free core use len(items) alone,
        # so re-fetching would just build a throwaway PhantomBlock.
        stored = self.disk.get(addr) if self.payloads else items
        self.emit_write(addr, stored, cost)

    # ------------------------------------------------------------------
    # Ledger movements initiated by the program (atom creation/destruction
    # inside internal memory).
    # ------------------------------------------------------------------
    def acquire(self, k: int, what: str = "atoms") -> None:
        self.mem.acquire(k, what)
        for cb in self._on_acquire:
            cb(k, what)
        if self._buffering:
            batch = self.batch
            batch.n += 1
            if self._record_columns:
                batch.kinds.append(KIND_ACQUIRE)
                batch.addrs.append(-1)
                batch.lengths.append(k)
                batch.costs.append(0)
                batch.occs.append(self.mem.occupancy)
                batch.whats.append(what)
            if batch.n >= self.flush_every:
                self.flush_events()

    def release(self, k: int) -> None:
        self.mem.release(k)
        for cb in self._on_release:
            cb(k)
        if self._buffering:
            batch = self.batch
            batch.n += 1
            if self._record_columns:
                batch.kinds.append(KIND_RELEASE)
                batch.addrs.append(-1)
                batch.lengths.append(k)
                batch.costs.append(0)
                batch.occs.append(self.mem.occupancy)
            if batch.n >= self.flush_every:
                self.flush_events()

    # ------------------------------------------------------------------
    # Time, phases, rounds.
    # ------------------------------------------------------------------
    def touch(self, k: int = 1) -> None:
        if k < 0:
            raise ValueError("cannot record a negative number of touches")
        for cb in self._on_touch:
            cb(k)
        if self._buffering:
            batch = self.batch
            batch.n += 1
            batch.touches += k
            batch.touch_events += 1
            if self._record_columns:
                batch.kinds.append(KIND_TOUCH)
                batch.addrs.append(-1)
                batch.lengths.append(k)
                batch.costs.append(0)
                batch.occs.append(self.mem.occupancy)
            if batch.n >= self.flush_every:
                self.flush_events()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        # Phase boundaries are exact flush points: everything buffered
        # belongs to the enclosing phase and is delivered before the
        # enter/exit callbacks fire, so per-phase attribution in batch
        # consumers (which charge a whole batch to the innermost phase)
        # matches synchronous dispatch bit-for-bit.
        self.flush_events()
        for cb in self._on_phase_enter:
            cb(name)
        try:
            yield
        finally:
            self.flush_events()
            for cb in self._on_phase_exit:
                cb(name)

    def round_boundary(self) -> int:
        """Declare a round boundary: drain internal memory, notify.

        Returns the number of slots that were drained. Round-based
        programs (Section 4) have empty internal memory between rounds;
        the declared boundaries flow into recorded programs'
        ``round_boundaries``. Like phase boundaries, this is an exact
        flush point: buffered events land before ``on_round_boundary``
        fires, so per-round accounting (the round-form sanitizer) sees
        the complete round.
        """
        held = self.mem.drain()
        # Recorded before the callbacks run: observers fired by this
        # boundary (e.g. the round-form sanitizer) can see how many slots
        # were still occupied when the round ended.
        self.last_drained = held
        self.flush_events()
        for cb in self._on_round_boundary:
            cb(self.io_count)
        return held

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineCore({len(self.disk)} blocks, {self.mem!r}, "
            f"{len(self.observers)} observers, dispatch={self.dispatch!r})"
        )
