"""The shared machine substrate: storage, ledger, and the event bus.

Every memory-model machine in this repository — the (M, B, omega)-AEM and
its EM/ARAM special cases, and the unit-cost flash model — is the same
three ingredients with different cost semantics on top:

* a :class:`~repro.machine.blockstore.BlockStore` (unbounded block-addressed
  external memory),
* an :class:`~repro.machine.internal.InternalMemory` ledger (the capacity
  ``M``), and
* a stream of *machine events* consumed by attached
  :class:`~repro.observe.MachineObserver` instances (cost accounting,
  trace recording, wear profiling, progress display, ...).

:class:`MachineCore` packages the three. The concrete machines own a core,
translate their model's operations into core calls, and supply the
per-I/O ``cost`` their model charges (``1``/``omega`` for the AEM, the
transferred volume for the flash model), so every consumer downstream sees
one uniform event stream regardless of which model produced it.

Dispatch discipline (the no-observer fast path): at attach time the core
inspects which event handlers the observer actually *overrides* and adds
only those to per-event callback lists. Emitting an event that nobody
listens to is one truthiness check on an empty list; emitting to ``k``
listeners is ``k`` bound-method calls with no intermediate event objects.
Batching happens at the semantic level — ``touch(k)`` reports ``k``
internal operations in one event, and block transfers are one event per
I/O, never per atom.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from ..observe.base import EVENTS, MachineObserver
from .blockstore import BlockStore
from .internal import InternalMemory

#: Lifecycle hooks, called at attach/detach rather than dispatched.
_LIFECYCLE = ("on_attach", "on_detach")


def _validate_handler_names(observer: MachineObserver) -> None:
    """Reject ``on_*`` methods that match no machine event.

    Overriding is opt-in by name, so a typo'd handler (``on_raed``)
    would otherwise just never fire. Every class in the observer's MRO
    below :class:`MachineObserver` is checked, so typos in mixins and
    base classes surface too.
    """
    allowed = set(EVENTS) | set(_LIFECYCLE)
    for klass in type(observer).__mro__:
        if klass in (MachineObserver, object):
            continue
        for name, value in vars(klass).items():
            if name.startswith("on_") and callable(value) and name not in allowed:
                raise ValueError(
                    f"{klass.__name__}.{name} matches no machine event; "
                    f"known events are {EVENTS} (plus lifecycle {_LIFECYCLE})"
                )


class MachineCore:
    """Block storage + capacity ledger + observer event bus."""

    def __init__(
        self,
        disk: BlockStore,
        mem: InternalMemory,
        observers: Sequence[MachineObserver] = (),
    ):
        self.disk = disk
        self.mem = mem
        # Counting-mode cores sit on a PhantomBlockStore and carry no atom
        # payloads; observers that need contents are rejected at attach.
        self.payloads = not getattr(disk, "phantom", False)
        self.io_count = 0  # total I/O events emitted (reads + writes)
        self.last_drained = 0  # slots drained by the most recent round boundary
        self.observers: list[MachineObserver] = []
        for name in EVENTS:
            setattr(self, "_" + name, [])
        for obs in observers:
            self.attach(obs)

    # ------------------------------------------------------------------
    # Observer management.
    # ------------------------------------------------------------------
    def attach(self, observer: MachineObserver) -> MachineObserver:
        """Attach ``observer``; only its overridden handlers are dispatched.

        Handler names are validated against the event vocabulary: an
        ``on_``-prefixed method that matches no known event (``on_raed``)
        raises :class:`ValueError` here, at attach time, instead of
        silently never firing.
        """
        if observer in self.observers:
            raise ValueError(f"observer {observer!r} is already attached")
        if getattr(observer, "needs_payloads", False) and not self.payloads:
            raise ValueError(
                f"{type(observer).__name__} declares needs_payloads=True "
                "(it reads atom contents), but this machine runs in counting "
                "mode and its event stream carries block sizes only; attach "
                "it to a full (counting=False) machine instead"
            )
        _validate_handler_names(observer)
        self.observers.append(observer)
        cls = type(observer)
        for name in EVENTS:
            handler = getattr(cls, name, None)
            if handler is not None and handler is not getattr(MachineObserver, name):
                getattr(self, "_" + name).append(getattr(observer, name))
        hook = getattr(observer, "on_attach", None)
        if hook is not None:
            hook(self)
        return observer

    def detach(self, observer: MachineObserver) -> None:
        self.observers.remove(observer)
        for name in EVENTS:
            callbacks = getattr(self, "_" + name)
            bound = getattr(observer, name, None)
            if bound in callbacks:
                callbacks.remove(bound)
        hook = getattr(observer, "on_detach", None)
        if hook is not None:
            hook(self)

    def find(self, kind: type) -> list:
        """All attached observers that are instances of ``kind``."""
        return [obs for obs in self.observers if isinstance(obs, kind)]

    # ------------------------------------------------------------------
    # Raw event emission (machines with bespoke transfer shapes, e.g. the
    # flash model's sub-block reads, charge the store themselves and emit).
    # ------------------------------------------------------------------
    def emit_read(self, addr: int, items: Sequence, cost: float) -> None:
        self.io_count += 1
        for cb in self._on_read:
            cb(addr, items, cost)

    def emit_write(self, addr: int, items: Sequence, cost: float) -> None:
        self.io_count += 1
        for cb in self._on_write:
            cb(addr, items, cost)

    # ------------------------------------------------------------------
    # Ledger-coupled block transfers (the AEM semantics).
    # ------------------------------------------------------------------
    def read_block(self, addr: int, cost: float, *, keep: bool = True, items=None) -> list:
        """Read a whole block; its atoms become (or must fit as) resident.

        With ``keep=True`` the atoms are acquired in the ledger (the
        caller now owns their slots); with ``keep=False`` the ledger only
        checks they *would* fit (peek semantics). Counting-mode machines
        pass ``items`` explicitly (their stashed scheduling tokens, or
        nothing — the phantom block then stands in); the cost, address and
        length of the event are identical either way.
        """
        if items is None:
            blk = self.disk.get(addr)
            # Full stores hand out a defensive copy (algorithms mutate the
            # lists they hold); phantom blocks are immutable and sized, so
            # the copy would be pure waste.
            items = list(blk) if self.payloads else blk
        if keep:
            self.mem.acquire(len(items))
        else:
            self.mem.require(len(items))
        self.emit_read(addr, items, cost)
        return items

    def write_block(
        self, addr: int, items: Sequence, cost: float, *, release: bool = True
    ) -> None:
        """Write a block; with ``release=True`` its atoms leave the ledger."""
        self.disk.set(addr, items)
        if release:
            self.mem.release(len(items))
        # Full stores emit the canonical stored tuple (immutable even if the
        # caller mutates its list afterwards); phantom stores hold sizes
        # only, and observers on a payload-free core use len(items) alone,
        # so re-fetching would just build a throwaway PhantomBlock.
        stored = self.disk.get(addr) if self.payloads else items
        self.emit_write(addr, stored, cost)

    # ------------------------------------------------------------------
    # Ledger movements initiated by the program (atom creation/destruction
    # inside internal memory).
    # ------------------------------------------------------------------
    def acquire(self, k: int, what: str = "atoms") -> None:
        self.mem.acquire(k, what)
        for cb in self._on_acquire:
            cb(k, what)

    def release(self, k: int) -> None:
        self.mem.release(k)
        for cb in self._on_release:
            cb(k)

    # ------------------------------------------------------------------
    # Time, phases, rounds.
    # ------------------------------------------------------------------
    def touch(self, k: int = 1) -> None:
        if k < 0:
            raise ValueError("cannot record a negative number of touches")
        for cb in self._on_touch:
            cb(k)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        for cb in self._on_phase_enter:
            cb(name)
        try:
            yield
        finally:
            for cb in self._on_phase_exit:
                cb(name)

    def round_boundary(self) -> int:
        """Declare a round boundary: drain internal memory, notify.

        Returns the number of slots that were drained. Round-based
        programs (Section 4) have empty internal memory between rounds;
        the declared boundaries flow into recorded programs'
        ``round_boundaries``.
        """
        held = self.mem.drain()
        # Recorded before the callbacks run: observers fired by this
        # boundary (e.g. the round-form sanitizer) can see how many slots
        # were still occupied when the round ended.
        self.last_drained = held
        for cb in self._on_round_boundary:
            cb(self.io_count)
        return held

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineCore({len(self.disk)} blocks, {self.mem!r}, "
            f"{len(self.observers)} observers)"
        )
