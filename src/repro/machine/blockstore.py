"""Block-addressed external memory.

External memory in the AEM model is an unbounded sequence of blocks, each
holding up to ``B`` atoms. :class:`BlockStore` provides the raw storage;
it charges *no* costs — all cost accounting happens in the machines that
wrap it (:mod:`repro.machine.aem`, :mod:`repro.machine.flash`).

Blocks are identified by integer addresses handed out by :meth:`allocate`.
Contents are stored as immutable tuples so that a block can be aliased
safely by traces and replays. An address can be :meth:`free`-d, after which
reads of it fail — this models the "destroyed atoms" semantics used by the
Section 4.2 counting argument, and catches use-after-free bugs in
algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from .errors import AddressError, BlockSizeError


@dataclass(frozen=True)
class WearStats:
    """Write-endurance summary of a block store.

    ``max_writes`` on the ``hottest`` block is the quantity NVM endurance
    budgets bound; algorithms that allocate fresh output regions (as all of
    ours do) keep it at 1–2, while in-place algorithms concentrate wear.
    """

    total_writes: int
    blocks_written: int
    max_writes: int
    hottest: Optional[int]

    @property
    def mean_writes(self) -> float:
        if self.blocks_written == 0:
            return 0.0
        return self.total_writes / self.blocks_written


class BlockStore:
    """Unbounded external memory of blocks holding up to ``B`` atoms each."""

    def __init__(self, B: int):
        if B < 1:
            raise ValueError(f"block size must be positive, got {B}")
        self.B = B
        self._blocks: Dict[int, Tuple] = {}
        self._next_addr = 0
        # Per-address write counts. On real NVM this is *endurance*: cells
        # wear out after a bounded number of writes, which is the paper's
        # second motivation (besides latency/energy) for write-avoidance.
        self.write_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> list[int]:
        """Reserve ``count`` fresh empty block addresses."""
        if count < 0:
            raise ValueError("cannot allocate a negative number of blocks")
        addrs = list(range(self._next_addr, self._next_addr + count))
        self._next_addr += count
        for a in addrs:
            self._blocks[a] = ()
        return addrs

    def allocate_one(self) -> int:
        # Inlined single-address allocate: this sits on the write_fresh
        # hot path (one call per streamed output block), where the
        # list/range machinery of allocate() is measurable.
        addr = self._next_addr
        self._next_addr = addr + 1
        self._blocks[addr] = ()
        return addr

    def free(self, addr: int) -> None:
        """Discard a block. Subsequent access raises :class:`AddressError`.

        The address *deliberately* stays in ``write_counts``: wear is a
        physical property of the cells, and on real NVM freeing a region
        does not un-wear it. Algorithms that write scratch blocks and free
        them (the merge's pointer blocks, for instance) therefore still
        show up in :meth:`wear` — that is the endurance bill the device
        actually paid. Addresses are never reused (``_next_addr`` is
        monotonic), so a freed address can never alias a later block's
        counts.
        """
        if addr not in self._blocks:
            raise AddressError(f"free of unallocated block {addr}")
        del self._blocks[addr]

    # ------------------------------------------------------------------
    # Access (cost-free; machines charge).
    # ------------------------------------------------------------------
    def get(self, addr: int) -> Tuple:
        try:
            return self._blocks[addr]
        except KeyError:
            raise AddressError(f"read of unallocated block {addr}") from None

    def set(self, addr: int, items: Sequence) -> None:
        if addr not in self._blocks:
            raise AddressError(f"write to unallocated block {addr}")
        if len(items) > self.B:
            raise BlockSizeError(
                f"block {addr}: {len(items)} atoms exceed block size B={self.B}"
            )
        self._blocks[addr] = tuple(items)
        self.write_counts[addr] = self.write_counts.get(addr, 0) + 1

    def wear(self) -> "WearStats":
        """Endurance summary over every address ever written."""
        counts = self.write_counts
        if not counts:
            return WearStats(total_writes=0, blocks_written=0, max_writes=0, hottest=None)
        hottest = max(counts, key=counts.get)  # type: ignore[arg-type]
        return WearStats(
            total_writes=sum(counts.values()),
            blocks_written=len(counts),
            max_writes=counts[hottest],
            hottest=hottest,
        )

    def __contains__(self, addr: int) -> bool:
        return addr in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def addresses(self) -> Iterator[int]:
        return iter(self._blocks)

    # ------------------------------------------------------------------
    # Bulk helpers (used by workload generators and verifiers; cost-free
    # by design: they represent the problem statement, not the program).
    # ------------------------------------------------------------------
    def load_items(self, items: Iterable) -> list[int]:
        """Lay out ``items`` contiguously in fresh blocks of ``B``.

        Returns the list of block addresses. This is how problem inputs are
        placed into external memory before a program starts; it charges no
        I/O cost (the input "is already there").
        """
        items = list(items)
        nblocks = max(1, -(-len(items) // self.B)) if items else 0
        addrs = self.allocate(nblocks)
        for i, addr in enumerate(addrs):
            self._blocks[addr] = tuple(items[i * self.B : (i + 1) * self.B])
        return addrs

    def dump_items(self, addrs: Iterable[int]) -> list:
        """Concatenate the contents of ``addrs`` (for verification only)."""
        out: list = []
        for addr in addrs:
            out.extend(self.get(addr))
        return out

    def snapshot(self) -> "StoreSnapshot":
        """A shallow copy of the whole store (used by trace replays).

        The snapshot is a plain ``{addr: contents}`` dict (existing callers
        index it directly) that additionally carries the wear epoch — a copy
        of ``write_counts`` — so :meth:`restore` can rewind endurance
        accounting along with the contents.
        """
        snap = StoreSnapshot(self._blocks)
        snap.write_counts = dict(self.write_counts)
        return snap

    def restore(self, snap: Dict[int, Tuple]) -> None:
        """Reset the store to ``snap``'s contents *and* its wear epoch.

        Restoring means "pretend the writes since the snapshot never
        happened", and that must include their endurance charges: a trace
        replayed three times would otherwise report triple wear. Snapshots
        taken via :meth:`snapshot` carry their epoch; a plain dict (the
        historical calling convention, used to seed replay stores) has
        epoch zero — the store is as unworn as its freshly-placed contents.
        """
        self._blocks = dict(snap)
        self.write_counts = dict(getattr(snap, "write_counts", {}))
        if snap:
            self._next_addr = max(self._next_addr, max(snap) + 1)


class StoreSnapshot(dict):
    """A block-store snapshot: the contents dict plus the wear epoch."""

    write_counts: Dict[int, int]

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_counts = {}

    def __reduce__(self):
        # Preserve the epoch across pickling (dict.__reduce_ex__ drops
        # instance attributes of dict subclasses).
        return (_rebuild_snapshot, (dict(self), self.write_counts))


def _rebuild_snapshot(blocks: Dict, write_counts: Dict) -> "StoreSnapshot":
    snap = StoreSnapshot(blocks)
    snap.write_counts = dict(write_counts)
    return snap
