"""The symmetric External Memory model of Aggarwal & Vitter.

The (M, B)-EM model is exactly the (M, B, 1)-AEM: reads and writes both
cost one I/O. :func:`em_machine` is a thin constructor so that baseline
algorithms (e.g. the classic m-way mergesort) can be expressed and costed
in the model they were designed for, while still running on the same
simulator — and the same :class:`~repro.machine.core.MachineCore` event
bus, so observers (``observers=[...]``) work identically — and being
comparable I/O-for-I/O with the AEM algorithms.
"""

from __future__ import annotations

from ..core.params import AEMParams
from .aem import AEMMachine


def em_params(M: int, B: int) -> AEMParams:
    """Parameters of the symmetric (M, B)-EM model (``omega = 1``)."""
    return AEMParams.em(M, B)


def em_machine(M: int, B: int, **kwargs) -> AEMMachine:
    """A symmetric EM machine: an AEM machine with ``omega = 1``.

    Keyword arguments (``enforce_capacity``, ``record``, ``observers``,
    ``counting``, ``dispatch``, ``flush_every``) pass through to
    :class:`~repro.machine.aem.AEMMachine` — in particular the counting
    fast path and the batched event bus are available here too, and the
    machine's own :class:`~repro.observe.CostObserver` is detach-guarded
    exactly as on the AEM.
    """
    return AEMMachine(em_params(M, B), **kwargs)
