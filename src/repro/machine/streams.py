"""Sequential block streams over an :class:`~repro.machine.aem.AEMMachine`.

Nearly every external-memory algorithm is built from two motifs:

* *scanning* a run of blocks, consuming the atoms in order, and
* *emitting* a stream of atoms into freshly written blocks.

:class:`BlockReader` and :class:`BlockWriter` implement these motifs with
honest cost and capacity accounting, so the algorithms read like their
pseudo-code. A reader holds at most one block (``B`` atoms) resident; a
writer buffers at most one block before flushing. Both therefore add only
``O(B)`` to an algorithm's internal footprint.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from .aem import AEMMachine


class BlockReader:
    """Consume the atoms stored in a sequence of blocks, one block resident.

    The reader ``read``-s a block (acquiring its atoms) and hands them out
    via :meth:`take` / :meth:`peek` / iteration. A taken atom *stays
    resident*: its slot transfers to the caller, who releases it either by
    writing it out (``machine.write`` / ``BlockWriter.push`` + flush) or by
    discarding it (``machine.release(1)`` / :meth:`drop`). This keeps the
    ledger exact across the ubiquitous read-transform-write pipelines.
    """

    def __init__(self, machine: AEMMachine, addrs: Sequence[int]):
        self.machine = machine
        self.addrs = list(addrs)
        self._next_block = 0
        self._buf: list = []
        self._pos = 0

    def _fill(self) -> bool:
        """Load the next non-empty block; False when the run is exhausted."""
        while self._pos >= len(self._buf):
            if self._buf:
                # Release atoms of the exhausted block that were never taken
                # (all were taken: _pos >= len) — nothing held; reset buffer.
                self._buf = []
                self._pos = 0
            if self._next_block >= len(self.addrs):
                return False
            addr = self.addrs[self._next_block]
            self._next_block += 1
            # read() acquires the block's atoms; they remain counted until a
            # caller takes (and later releases/writes) them or close() runs.
            self._buf = self.machine.read(addr)
            self._pos = 0
        return True

    def exhausted(self) -> bool:
        return self._pos >= len(self._buf) and self._next_block >= len(self.addrs)

    def peek(self):
        """The next atom without consuming it, or None when exhausted."""
        if not self._fill():
            return None
        return self._buf[self._pos]

    def take(self):
        """Consume and return the next atom; its slot transfers to the caller.

        Raises StopIteration when the run is exhausted.
        """
        if not self._fill():
            raise StopIteration("block run exhausted")
        item = self._buf[self._pos]
        self._pos += 1
        return item

    def drop(self):
        """Consume the next atom and immediately release its slot."""
        item = self.take()
        self.machine.release(1)
        return item

    def __iter__(self) -> Iterator:
        while True:
            if not self._fill():
                return
            yield self.take()

    def close(self) -> None:
        """Release any atoms still staged in the current block."""
        remaining = len(self._buf) - self._pos
        if remaining > 0:
            self.machine.release(remaining)
        self._buf = []
        self._pos = 0
        self._next_block = len(self.addrs)


class BlockWriter:
    """Buffer atoms and flush full blocks to freshly allocated addresses.

    ``push`` takes ownership of an atom that the caller already holds in
    internal memory (no extra acquire: the slot simply transfers). ``flush``
    writes the buffer out, releasing the slots. The writer's buffer is part
    of the algorithm's internal footprint; it never exceeds ``B`` atoms.
    """

    def __init__(self, machine: AEMMachine, addrs: Optional[Iterable[int]] = None):
        self.machine = machine
        self._buf: list = []
        self._preallocated: list[int] = list(addrs) if addrs is not None else []
        self._prealloc_pos = 0
        self.addrs: list[int] = []
        self.count = 0

    def _next_addr(self) -> int:
        if self._prealloc_pos < len(self._preallocated):
            addr = self._preallocated[self._prealloc_pos]
            self._prealloc_pos += 1
            return addr
        return self.machine.allocate_one()

    def push(self, item) -> None:
        """Append one atom (already resident) to the output stream."""
        self._buf.append(item)
        self.count += 1
        if len(self._buf) == self.machine.params.B:
            self._flush_block()

    def push_new(self, item) -> None:
        """Append an atom created in internal memory (acquires its slot)."""
        self.machine.acquire(1)
        self.push(item)

    def extend(self, items: Iterable) -> None:
        for it in items:
            self.push(it)

    def _flush_block(self) -> None:
        addr = self._next_addr()
        self.machine.write(addr, self._buf)
        self.addrs.append(addr)
        self._buf = []

    def close(self) -> list[int]:
        """Flush any partial final block; returns all written addresses."""
        if self._buf:
            self._flush_block()
        return self.addrs

    @property
    def buffered(self) -> int:
        return len(self._buf)


def scan_copy(machine: AEMMachine, addrs: Sequence[int]) -> list[int]:
    """Copy a run of blocks (one read + one write each); returns new run.

    The canonical "read and write scan over the input" used e.g. to
    normalize programs in Lemma 4.3, with cost ``n`` reads + ``n`` writes.
    """
    if machine.counting:
        # Whole-block fast path with the event stream of the per-atom loop:
        # the reader reads each input block exactly when its buffer runs
        # dry, and the writer flushes mid-block whenever B atoms are
        # pending — since every input block adds <= B atoms, at most one
        # flush falls between consecutive reads, which is exactly what the
        # chunking below produces (then one final partial flush).
        pending: list = []
        out_addrs: list[int] = []
        B = machine.params.B
        for addr in addrs:
            items = machine.read(addr)
            if not pending and len(items) == B:
                # Aligned case (every full input block while no partial
                # carry is pending): the read IS the chunk — the write
                # lands at the same point in the event stream the
                # buffered path would produce, without the buffer churn.
                out_addrs.append(machine.write_fresh(items))
                continue
            pending.extend(items)
            while len(pending) >= B:
                chunk = pending[:B]
                del pending[:B]
                out_addrs.append(machine.write_fresh(chunk))
        if pending:
            out_addrs.append(machine.write_fresh(pending))
        return out_addrs
    reader = BlockReader(machine, addrs)
    writer = BlockWriter(machine)
    for item in reader:
        writer.push(item)
    return writer.close()
