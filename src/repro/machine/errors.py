"""Exception types raised by the memory-model machines."""

from __future__ import annotations


class MachineError(Exception):
    """Base class for all machine-level errors."""


class CapacityError(MachineError):
    """Internal memory capacity ``M`` would be exceeded.

    This is the error that demonstrates the paper's Section 3 point: a
    mergesort that keeps one pointer per run *in internal memory* cannot run
    a ``omega*m``-way merge once ``omega`` exceeds roughly ``B``, because the
    pointers alone no longer fit.
    """

    def __init__(self, requested: int, occupancy: int, capacity: int, what: str = "atoms"):
        self.requested = requested
        self.occupancy = occupancy
        self.capacity = capacity
        self.what = what
        super().__init__(
            f"internal memory overflow: need {requested} more {what} "
            f"on top of {occupancy}, but capacity is {capacity}"
        )

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with the single
        # formatted message, which does not match this signature — the
        # unpickle inside a worker-pool round-trip then raises TypeError
        # and the pool reports a useless BrokenProcessPool instead of the
        # real overflow. Rebuild from the original arguments.
        return (type(self), (self.requested, self.occupancy, self.capacity, self.what))


class BlockSizeError(MachineError):
    """A block transfer exceeded ``B`` atoms."""


class AddressError(MachineError):
    """Access to an unallocated or freed external-memory block."""


class ReleaseError(MachineError):
    """Released more atoms from internal memory than are held."""


class TraceError(MachineError):
    """A recorded program trace is malformed or fails verification."""


class PhaseError(MachineError):
    """Phase enter/exit calls are unbalanced or mismatched.

    Phase attribution is a stack discipline; exiting a phase that is not
    the innermost one (or exiting with none active) would silently corrupt
    the attribution of every I/O that follows, so it fails loudly instead.
    """


class ModelViolationError(MachineError):
    """An operation is not expressible in the model being simulated.

    For example, the Lemma 4.3 flash reduction requires ``B > omega`` and
    ``B`` a multiple of ``omega``.
    """
