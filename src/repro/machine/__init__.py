"""Memory-model machines: AEM, EM, ARAM and the unit-cost flash model.

The central class is :class:`~repro.machine.aem.AEMMachine` — an
(M, B, omega)-Asymmetric External Memory simulator with exact I/O cost
counters, capacity-enforced internal memory, and a machine-event bus
(:mod:`repro.observe`) for trace recording, wear profiling, and any other
per-I/O instrumentation. The symmetric EM model (omega = 1) and the ARAM
(B = 1) are special cases; the unit-cost flash model is a separate machine
used by the Lemma 4.3 reduction, built on the same
:class:`~repro.machine.core.MachineCore` and emitting the same events.
"""

from .aem import AEMMachine
from .aram import aram_machine, aram_params
from .blockstore import BlockStore, WearStats
from .core import MachineCore
from .cost import CostCounter, CostSnapshot
from .em import em_machine, em_params
from .errors import (
    AddressError,
    BlockSizeError,
    CapacityError,
    MachineError,
    ModelViolationError,
    PhaseError,
    ReleaseError,
    TraceError,
)
from .flash import FlashMachine
from .internal import InternalMemory
from .streams import BlockReader, BlockWriter, scan_copy

__all__ = [
    "AEMMachine",
    "AddressError",
    "BlockReader",
    "BlockSizeError",
    "BlockStore",
    "BlockWriter",
    "CapacityError",
    "CostCounter",
    "CostSnapshot",
    "FlashMachine",
    "InternalMemory",
    "MachineCore",
    "MachineError",
    "ModelViolationError",
    "PhaseError",
    "ReleaseError",
    "TraceError",
    "WearStats",
    "aram_machine",
    "aram_params",
    "em_machine",
    "em_params",
    "scan_copy",
]
