"""I/O cost accounting for the AEM model.

The cost of a program that performs ``Qr`` read I/Os and ``Qw`` write I/Os is

    Q = Qr + omega * Qw

(the definition of the (M, B, omega)-AEM in the paper's introduction). The
model additionally defines a *time* ``T`` equal to the number of internal
memory accesses; we expose it as an optional counter (``touch``) that the
algorithms increment for element-level internal work such as comparisons and
moves. ``T`` plays no role in the lower bounds but is useful for sanity
checks (e.g. mergesort performs ``Theta(N log N)`` comparisons).

:class:`CostCounter` also supports *phases*: nested, named sub-counters that
attribute I/Os to parts of an algorithm (e.g. ``"merge/pointer-maintenance"``),
which the experiment tables use to show where reads and writes go.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterator

from .errors import PhaseError


@dataclass(frozen=True)
class CostSnapshot:
    """An immutable point-in-time view of a :class:`CostCounter`.

    Arithmetic on snapshots (subtraction) yields the cost of a region of a
    program, which is how phase-free code measures sub-steps.
    """

    reads: int
    writes: int
    touches: int
    omega: float

    @property
    def Q(self) -> float:
        """Total asymmetric cost ``Qr + omega * Qw``."""
        return self.reads + self.omega * self.writes

    @property
    def io(self) -> int:
        """Unweighted I/O count ``Qr + Qw`` (the symmetric EM cost)."""
        return self.reads + self.writes

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        if self.omega != other.omega:
            raise ValueError("cannot subtract snapshots with different omega")
        return CostSnapshot(
            reads=self.reads - other.reads,
            writes=self.writes - other.writes,
            touches=self.touches - other.touches,
            omega=self.omega,
        )

    def describe(self) -> str:
        return (
            f"Qr={self.reads} Qw={self.writes} Q={self.Q:g} "
            f"(T={self.touches}, omega={self.omega:g})"
        )


@dataclass(frozen=True)
class CostRecord:
    """The typed result of one verified measurement run.

    The measurement helpers (``measure_sort`` and friends) return one of
    these instead of an ad-hoc dict. It is both a dataclass (``rec.Q``,
    equality, pickling across sweep-engine workers) and a read-only mapping
    (``rec["Q"]``, ``{**rec}``, ``set(rec)``), so sweep records and the
    JSON/CLI paths keep working unchanged.
    """

    Q: float
    Qr: int
    Qw: int
    T: int
    peak_mem: int

    @classmethod
    def from_snapshot(cls, snap: CostSnapshot, *, peak: int) -> "CostRecord":
        return cls(
            Q=snap.Q,
            Qr=snap.reads,
            Qw=snap.writes,
            T=snap.touches,
            peak_mem=peak,
        )

    def as_dict(self) -> dict:
        """Flat dict form, the shape sweep records are built from."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # Read-only mapping surface -----------------------------------------
    def keys(self):
        return self.as_dict().keys()

    def __getitem__(self, key: str):
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __iter__(self):
        return iter(self.as_dict())

    def __len__(self) -> int:
        return len(fields(self))

    def __contains__(self, key: object) -> bool:
        return any(f.name == key for f in fields(self))


class CostCounter:
    """Mutable read/write/touch counters with named phase attribution."""

    def __init__(self, omega: float = 1.0):
        if omega < 1:
            raise ValueError(f"omega must be >= 1, got {omega}")
        self.omega = float(omega)
        self.reads = 0
        self.writes = 0
        self.touches = 0
        self._phase_stack: list[str] = []
        # phase name -> [reads, writes, touches]
        self._phases: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def add_read(self, k: int = 1) -> None:
        """Record ``k`` read I/Os (cost ``k``)."""
        if k < 0:
            raise ValueError("cannot record a negative number of reads")
        self.reads += k
        self._attribute(0, k)

    def add_write(self, k: int = 1) -> None:
        """Record ``k`` write I/Os (cost ``k * omega``)."""
        if k < 0:
            raise ValueError("cannot record a negative number of writes")
        self.writes += k
        self._attribute(1, k)

    def touch(self, k: int = 1) -> None:
        """Record ``k`` internal-memory operations (the model's time ``T``)."""
        if k < 0:
            raise ValueError("cannot record a negative number of touches")
        self.touches += k
        self._attribute(2, k)

    def _attribute(self, slot: int, k: int) -> None:
        if self._phase_stack:
            self._phases[self._phase_stack[-1]][slot] += k

    # ------------------------------------------------------------------
    # Phases.
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute I/Os recorded inside the ``with`` block to ``name``.

        Phases nest lexically; a nested phase's costs are attributed to the
        innermost name only (joined names like ``"merge/init"`` can be used
        by callers who want hierarchy).
        """
        self.enter_phase(name)
        try:
            yield
        finally:
            self.exit_phase(name)

    def enter_phase(self, name: str) -> None:
        """Push ``name``; subsequent costs are attributed to it."""
        self._phase_stack.append(name)
        self._phases.setdefault(name, [0, 0, 0])

    def exit_phase(self, name: str | None = None) -> None:
        """Pop the innermost phase, verifying it is ``name`` when given.

        Raises :class:`~repro.machine.errors.PhaseError` on an exit with no
        phase active or with a name that is not the innermost phase —
        an unbalanced pop would silently misattribute everything after it.
        """
        if not self._phase_stack:
            raise PhaseError(
                f"exit_phase({name!r}) with no phase active"
                if name is not None
                else "exit_phase() with no phase active"
            )
        innermost = self._phase_stack[-1]
        if name is not None and innermost != name:
            raise PhaseError(
                f"exit_phase({name!r}) but the innermost phase is "
                f"{innermost!r}; phase enter/exit must nest"
            )
        self._phase_stack.pop()

    def phase_snapshot(self, name: str) -> CostSnapshot:
        r, w, t = self._phases.get(name, [0, 0, 0])
        return CostSnapshot(reads=r, writes=w, touches=t, omega=self.omega)

    @property
    def phases(self) -> Dict[str, CostSnapshot]:
        return {name: self.phase_snapshot(name) for name in self._phases}

    # ------------------------------------------------------------------
    # Reading out.
    # ------------------------------------------------------------------
    @property
    def Q(self) -> float:
        """Total asymmetric cost ``Qr + omega * Qw``."""
        return self.reads + self.omega * self.writes

    @property
    def io(self) -> int:
        """Unweighted I/O count ``Qr + Qw``."""
        return self.reads + self.writes

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            reads=self.reads,
            writes=self.writes,
            touches=self.touches,
            omega=self.omega,
        )

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.touches = 0
        self._phases.clear()

    def describe(self) -> str:
        return self.snapshot().describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostCounter({self.describe()})"
