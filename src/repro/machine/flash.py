"""The unit-cost flash memory model of Ajwani, Beckmann, Jacob, Meyer & Moruz.

Section 4.1 of the paper reduces AEM permutation programs to this model.
Its defining features (as used by the paper):

* external memory is written in *write blocks* of ``Bw`` elements,
* each write block consists of ``Bw / Br`` *read blocks* of ``Br`` elements
  that can be read independently,
* the cost of an I/O is proportional to the number of elements transferred
  (the *I/O volume*): a read of a read block costs ``Br`` and a write of a
  write block costs ``Bw``, i.e. cost per element is symmetric.

For the Lemma 4.3 reduction the paper instantiates ``Bw = B`` (the AEM
block size) and ``Br = B / omega``, which requires ``B > omega`` and ``B``
a multiple of ``omega``.

Addresses: a write block has an integer address (as in
:class:`~repro.machine.blockstore.BlockStore`); its read blocks are
addressed as ``(addr, j)`` for ``j in range(Bw // Br)``, covering elements
``[j*Br, (j+1)*Br)`` of the write block — read blocks are *contiguous*
sub-intervals, which is exactly the constraint that makes the reduction
non-trivial (an AEM read may use an arbitrary subset of a block; a flash
read may not).

Like the AEM machine, :class:`FlashMachine` sits on a
:class:`~repro.machine.core.MachineCore` and emits the uniform machine
events of :mod:`repro.observe` — with *volume-based* costs (``Br`` per
small read, ``Bw`` per write) — so the Lemma 4.3 reduction and experiments
E8/E9 consume the same event stream for both models, and any observer
(trace recorder, wear map, progress readout) works here unchanged. Its
volume accounting is a :class:`~repro.observe.CostObserver` on that bus.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..observe.base import MachineObserver
from ..observe.cost import CostObserver
from .blockstore import BlockStore
from .core import MachineCore
from .errors import AddressError, BlockSizeError, ModelViolationError
from .internal import InternalMemory
from .phantom import PhantomBlockStore, freeze_tokens, is_phantom_payload, token_of


class FlashMachine:
    """Unit-cost flash model machine with volume-based cost accounting.

    Parameters
    ----------
    M:
        Internal memory capacity in elements (tracked but, as in the
        reduction, not the focus — the reduction preserves the AEM
        program's memory discipline).
    Br:
        Read block size in elements.
    Bw:
        Write block size in elements; must be a positive multiple of ``Br``.
    observers:
        :class:`~repro.observe.MachineObserver` instances to attach at
        construction; they see reads of cost ``Br`` and writes of cost
        ``Bw``.
    counting:
        Payload-free fast path, mirroring
        :class:`~repro.machine.aem.AEMMachine`'s: the store tracks only
        occupancies, writes stash scheduling tokens, and the event stream
        (addresses, lengths, volumes) is identical to a full run. Note the
        Section 4 trace passes (round conversion, flash reduction) replay
        *recorded* programs and therefore need payloads; counting flash
        machines serve direct simulations and microbenchmarks.
    """

    def __init__(
        self,
        M: int,
        Br: int,
        Bw: int,
        *,
        observers: Sequence[MachineObserver] = (),
        counting: bool = False,
        dispatch: Optional[str] = None,
        flush_every: Optional[int] = None,
    ):
        if Br < 1 or Bw < 1:
            raise ValueError("block sizes must be positive")
        if Bw % Br != 0:
            raise ModelViolationError(
                f"write block size {Bw} must be a multiple of read block size {Br}"
            )
        if M < Bw:
            raise ValueError(f"internal memory M={M} must hold a write block Bw={Bw}")
        self.M = M
        self.Br = Br
        self.Bw = Bw
        self.counting = counting
        #: Converted token stash / raw write snapshots, exactly as on
        #: :class:`~repro.machine.aem.AEMMachine` (see its field docs):
        #: raw snapshots are immutable tuples so GC untracks them.
        self._tokens: dict[int, tuple] = {}
        self._raw: dict[int, tuple] = {}
        self.core = MachineCore(
            PhantomBlockStore(Bw) if counting else BlockStore(Bw),
            # The model does not enforce a capacity discipline of its own;
            # the ledger exists so shared observers see a complete core.
            InternalMemory(M, enforce=False),
            dispatch=dispatch,
            flush_every=flush_every,
        )
        self.disk = self.core.disk
        self._cost = self.core.attach(CostObserver(omega=1.0))
        for obs in observers:
            self.core.attach(obs)

    @classmethod
    def for_aem_reduction(cls, M: int, B: int, omega: int, **kwargs) -> "FlashMachine":
        """The instantiation used by Lemma 4.3: ``Bw = B``, ``Br = B/omega``.

        Requires ``B > omega`` and ``omega | B`` as in the lemma statement.
        """
        if not isinstance(omega, int) or omega < 1:
            raise ModelViolationError(
                f"the reduction needs integer omega >= 1, got {omega!r}"
            )
        if B <= omega:
            raise ModelViolationError(
                f"Lemma 4.3 requires B > omega (got B={B}, omega={omega})"
            )
        if B % omega != 0:
            raise ModelViolationError(
                f"Lemma 4.3 requires omega | B (got B={B}, omega={omega})"
            )
        return cls(M=M, Br=B // omega, Bw=B, **kwargs)

    # ------------------------------------------------------------------
    # Instrumentation.
    # ------------------------------------------------------------------
    def attach(self, observer: MachineObserver) -> MachineObserver:
        return self.core.attach(observer)

    def detach(self, observer: MachineObserver) -> None:
        if observer is self._cost:
            # Same guard as AEMMachine.detach: the volume/ops readouts
            # live in this observer and would silently freeze.
            raise ValueError(
                "cannot detach the machine's own CostObserver; "
                ".volume/.read_ops/.write_ops would silently stop counting"
            )
        self.core.detach(observer)

    def flush(self) -> None:
        """Flush buffered batch events to observers (see MachineCore)."""
        self.core.flush_events()

    @property
    def observers(self) -> list[MachineObserver]:
        return list(self.core.observers)

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def reads_per_write_block(self) -> int:
        return self.Bw // self.Br

    @property
    def volume(self) -> int:
        """Total I/O volume (elements transferred), the model's cost."""
        return self.read_volume + self.write_volume

    # The accounting lives in the attached CostObserver; these properties
    # keep the historical readout (and the tests' ability to zero it).
    @property
    def read_volume(self) -> int:
        return self._cost.read_cost

    @read_volume.setter
    def read_volume(self, value: int) -> None:
        self._cost.read_cost = value

    @property
    def write_volume(self) -> int:
        return self._cost.write_cost

    @write_volume.setter
    def write_volume(self, value: int) -> None:
        self._cost.write_cost = value

    @property
    def read_ops(self) -> int:
        return self._cost.reads

    @read_ops.setter
    def read_ops(self, value: int) -> None:
        self._cost.counter.reads = value

    @property
    def write_ops(self) -> int:
        return self._cost.writes

    @write_ops.setter
    def write_ops(self, value: int) -> None:
        self._cost.counter.writes = value

    # ------------------------------------------------------------------
    # I/O operations.
    # ------------------------------------------------------------------
    def write_block(self, addr: int, items: Sequence) -> None:
        """Write one write block (cost = ``Bw`` volume)."""
        if len(items) > self.Bw:
            raise BlockSizeError(
                f"write of {len(items)} elements exceeds write block size {self.Bw}"
            )
        if self.counting:
            if is_phantom_payload(items):
                self._tokens.pop(addr, None)
                self._raw.pop(addr, None)
            else:
                # Raw snapshot; tokenized lazily on first read_small (see
                # AEMMachine.write / phantom.freeze_tokens).
                self._raw[addr] = tuple(items)
                if addr in self._tokens:
                    del self._tokens[addr]
        self.disk.set(addr, items)
        self.core.emit_write(addr, self.disk.get(addr), self.Bw)

    def write_fresh(self, items: Sequence) -> int:
        addr = self.disk.allocate_one()
        self.write_block(addr, items)
        return addr

    def read_small(self, addr: int, j: int) -> Tuple:
        """Read the ``j``-th read block of write block ``addr``.

        Returns the elements in positions ``[j*Br, (j+1)*Br)`` of the write
        block (possibly fewer at the ragged end). Cost = ``Br`` volume.
        """
        if j < 0 or j >= self.reads_per_write_block:
            raise ModelViolationError(
                f"read block index {j} out of range for Bw/Br={self.reads_per_write_block}"
            )
        items = None
        if self.counting:
            items = self._tokens.get(addr)
            if items is None:
                raw = self._raw.pop(addr, None)
                if raw is not None:
                    items = freeze_tokens(raw)
                    self._tokens[addr] = items
        if items is None:
            # On a counting machine without stashed tokens this is a
            # PhantomBlock, whose slices are (sized) phantom blocks too.
            items = self.disk.get(addr)
        lo, hi = j * self.Br, (j + 1) * self.Br
        segment = items[lo:hi]
        self.core.emit_read(addr, segment, self.Br)
        return segment

    def read_covering(self, addr: int, lo: int, hi: int) -> Tuple:
        """Read the minimal set of read blocks covering interval [lo, hi).

        Returns the concatenated contents of those read blocks (a superset
        of the requested interval). Used by the Lemma 4.3 simulation, where
        an AEM read that removes a contiguous interval of atoms from a
        normalized block induces "just enough" small reads to cover it —
        at most two of which are not full.
        """
        if lo < 0 or hi > self.Bw or lo > hi:
            raise ModelViolationError(f"bad interval [{lo}, {hi}) for Bw={self.Bw}")
        if lo == hi:
            return ()
        j_lo = lo // self.Br
        j_hi = -(-hi // self.Br)  # ceil
        out: list = []
        for j in range(j_lo, j_hi):
            out.extend(self.read_small(addr, j))
        return tuple(out)

    def block_len(self, addr: int) -> int:
        """Number of elements stored in write block ``addr`` (cost-free
        metadata, see :meth:`repro.machine.aem.AEMMachine.block_len`)."""
        return len(self.disk.get(addr))

    # ------------------------------------------------------------------
    # Problem placement (cost-free).
    # ------------------------------------------------------------------
    def load_input(self, items: Sequence) -> list[int]:
        if not self.counting:
            return self.disk.load_items(items)
        items = list(items)
        addrs = self.disk.load_items(items)
        for i, addr in enumerate(addrs):
            self._tokens[addr] = tuple(
                token_of(it) for it in items[i * self.Bw : (i + 1) * self.Bw]
            )
        return addrs

    def collect_output(self, addrs: Sequence[int]) -> list:
        if self.counting:
            raise AddressError(
                "collect_output needs payloads; use a full (counting=False) machine"
            )
        return self.disk.dump_items(addrs)

    def describe(self) -> str:
        return (
            f"flash(M={self.M}, Br={self.Br}, Bw={self.Bw}): "
            f"volume={self.volume} (read {self.read_volume} + write {self.write_volume})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlashMachine({self.describe()})"
