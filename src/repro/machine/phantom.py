"""Payload-free external memory for counting-mode machines.

The cost results this repository reproduces — Theorem 3.2's mergesort
bound, the Section 4 permuting crossover, Section 5's SpMxV bounds — are
statements about *counts*: how many blocks move, at what cost, never what
the atoms inside them are. Simulating those counts does not require
materializing atom tuples at all, and for large instances the tuple
copies are most of the simulator's wall time.

:class:`PhantomBlockStore` is the storage half of the counting fast path:
a drop-in :class:`~repro.machine.blockstore.BlockStore` that tracks only
per-block *occupancy*. Allocation, freeing, block-size enforcement, wear
accounting, and snapshot/restore behave exactly like the full store; only
the contents are gone. Reads hand out :class:`PhantomBlock` — a sized,
immutable sequence whose elements are all the :data:`PHANTOM` sentinel —
so any consumer that needs only ``len(items)`` (the cost observers, the
capacity/cost sanitizers, wear maps, metrics) works unchanged, and any
consumer that actually looks at an atom sees an unmistakable placeholder
instead of silently wrong data.

Machines built with ``counting=True`` own one of these stores; see
:class:`~repro.machine.aem.AEMMachine` for the token-stash mechanism that
lets data-driven schedules (the Section 3.1 merge reads blocks in an
order decided by their contents) still make bit-identical decisions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Tuple

from .blockstore import BlockStore
from .errors import AddressError, BlockSizeError


class _Phantom:
    """The placeholder standing in for every atom of a phantom block."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PHANTOM"

    def __reduce__(self):
        return (_Phantom, ())


#: The one placeholder value a :class:`PhantomBlock` yields for any index.
PHANTOM = _Phantom()


class PhantomBlock(Sequence):
    """An immutable block of ``n`` phantom atoms (size without substance).

    Supports exactly the sequence surface the machines and observers use:
    ``len``, indexing (always :data:`PHANTOM`), slicing (another phantom
    block), iteration, and truthiness.
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"phantom block size must be >= 0, got {n}")
        self.n = n

    def __len__(self) -> int:
        return self.n

    def __bool__(self) -> bool:
        return self.n > 0

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PhantomBlock(len(range(*index.indices(self.n))))
        if -self.n <= index < self.n:
            return PHANTOM
        raise IndexError(f"phantom block index {index} out of range for n={self.n}")

    def __iter__(self) -> Iterator:
        return iter([PHANTOM] * self.n)

    def __repr__(self) -> str:
        return f"PhantomBlock({self.n})"

    def __eq__(self, other) -> bool:
        if isinstance(other, PhantomBlock):
            return self.n == other.n
        return NotImplemented

    def __hash__(self) -> int:
        return hash((PhantomBlock, self.n))


def is_phantom_payload(items) -> bool:
    """True when ``items`` carries no real contents (only a size).

    The exact-type test short-circuits the common case: PhantomBlock is a
    :class:`Sequence`, so a plain ``isinstance`` goes through the abc
    machinery on *every* write of real items — measurable on the
    streaming hot path.
    """
    return type(items) is PhantomBlock or isinstance(items, PhantomBlock)


#: Types that are their own scheduling token. Checked before the
#: ``sort_token`` probe because most counting-mode writes carry items that
#: are *already* tokens (pointer words, numbers, tuples from an earlier
#: read), and the isinstance test is several times cheaper than a failed
#: attribute lookup on every one of them.
_SELF_TOKEN_TYPES = (tuple, int, float, str, bool)

#: The same types as an exact-type set, for per-item fast paths where even
#: the isinstance call is measurable (a subclass just falls through to
#: :func:`token_of`, which handles it correctly).
SELF_TOKEN_TYPES = frozenset(_SELF_TOKEN_TYPES)


def token_of(item):
    """The scheduling token of one stored item.

    Atoms collapse to their strict sort token ``(key, uid)``; identity-less
    payloads (pointer words, vector entries, already-tokenized tuples) are
    their own token. This is the value counting-mode algorithms make their
    data-driven decisions on — it orders exactly like the atom it stands
    for, so the decisions are bit-identical to a full-mode run.
    """
    if isinstance(item, _SELF_TOKEN_TYPES):
        return item
    st = getattr(item, "sort_token", None)
    return st() if callable(st) else item


def freeze_tokens(items) -> tuple:
    """Tokenize a whole written payload into an immutable stash entry.

    The machines' token stashes store either this converted tuple or a
    raw ``list`` snapshot of the written items; the list form defers this
    O(B) per-item conversion until the block is first *read*, so blocks
    that are written and never read back (most of a streaming workload's
    output) never pay it. Deferral is exact because scheduling tokens are
    immutable values derived from immutable atom identity — converting at
    read time yields the same tuple a write-time conversion would have.
    """
    return tuple(
        it if type(it) in SELF_TOKEN_TYPES else token_of(it) for it in items
    )


class PhantomBlockStore(BlockStore):
    """A block store that tracks per-block occupancy only.

    The interface is the full store's; the difference is representational:
    ``_blocks[addr]`` holds an ``int`` occupancy instead of an atom tuple,
    ``get`` returns a :class:`PhantomBlock`, and the bulk verification
    helper ``dump_items`` refuses to run (there is nothing to dump).
    """

    #: Machines and the core use this to pick payload-free code paths.
    phantom = True

    @staticmethod
    def _occupancy(entry) -> int:
        # Freshly allocated blocks are seeded with ``()`` by the base
        # class; everything written through this store is an int.
        return entry if isinstance(entry, int) else len(entry)

    def get(self, addr: int) -> PhantomBlock:
        try:
            return PhantomBlock(self._occupancy(self._blocks[addr]))
        except KeyError:
            raise AddressError(f"read of unallocated block {addr}") from None

    def set(self, addr: int, items) -> None:
        blocks = self._blocks
        if addr not in blocks:
            raise AddressError(f"write to unallocated block {addr}")
        n = len(items)
        if n > self.B:
            raise BlockSizeError(
                f"block {addr}: {n} atoms exceed block size B={self.B}"
            )
        blocks[addr] = n
        counts = self.write_counts
        counts[addr] = counts.get(addr, 0) + 1

    def load_items(self, items: Iterable) -> list[int]:
        items = list(items)
        nblocks = max(1, -(-len(items) // self.B)) if items else 0
        addrs = self.allocate(nblocks)
        for i, addr in enumerate(addrs):
            self._blocks[addr] = min(self.B, len(items) - i * self.B)
        return addrs

    def dump_items(self, addrs: Iterable[int]) -> list:
        raise AddressError(
            "a PhantomBlockStore holds occupancies, not contents; "
            "output collection/verification needs a full (counting=False) machine"
        )

    def snapshot(self) -> Dict[int, Tuple]:
        # Inherited behavior is already correct (occupancies copy shallowly
        # like tuples); this override exists only for the docstring.
        """A copy of the occupancy table (plus the wear epoch; see base)."""
        return super().snapshot()
