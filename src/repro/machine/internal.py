"""Internal (symmetric) memory with capacity enforcement.

The AEM model allows at most ``M`` atoms in internal memory at any time.
Algorithms in this code base account for their internal footprint through
:class:`InternalMemory`: reading a block *acquires* slots for its atoms,
discarding atoms *releases* slots, and writing a block releases the written
atoms (they move to external memory).

The ledger is a plain slot counter rather than an object registry: the
algorithms manipulate ordinary Python lists for speed (per the HPC guides,
the simulator itself should be cheap), while the counter guarantees the
*model's* constraint. Auxiliary in-memory words that the paper charges
against ``M`` — run pointers, counters, heap indices — are acquired
explicitly by the algorithms that use them, so that e.g. the
pointer-in-memory mergesort genuinely overflows when ``omega*m`` pointers no
longer fit (Section 3's motivation).

``peak`` records the high-water mark, which the tests compare against the
paper's space claims (e.g. Lemma 3.1 implies the Section 3.1 merge needs
only ``O(M)`` atoms resident).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .errors import CapacityError, ReleaseError


class InternalMemory:
    """A capacity-checked slot ledger for the internal memory."""

    def __init__(self, capacity: int, *, enforce: bool = True):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enforce = enforce
        self.occupancy = 0
        self.peak = 0

    def acquire(self, k: int = 1, what: str = "atoms") -> None:
        """Claim ``k`` slots; raises :class:`CapacityError` on overflow."""
        if k < 0:
            raise ValueError("cannot acquire a negative number of slots")
        if self.enforce and self.occupancy + k > self.capacity:
            raise CapacityError(k, self.occupancy, self.capacity, what)
        self.occupancy += k
        if self.occupancy > self.peak:
            self.peak = self.occupancy

    def release(self, k: int = 1) -> None:
        """Return ``k`` slots to the pool."""
        if k < 0:
            raise ValueError("cannot release a negative number of slots")
        if k > self.occupancy:
            raise ReleaseError(
                f"releasing {k} slots but only {self.occupancy} are held"
            )
        self.occupancy -= k

    @property
    def free(self) -> int:
        return self.capacity - self.occupancy

    def require(self, k: int) -> None:
        """Assert that ``k`` more slots *would* fit, without claiming them."""
        if self.enforce and self.occupancy + k > self.capacity:
            raise CapacityError(k, self.occupancy, self.capacity)

    @contextmanager
    def held(self, k: int, what: str = "atoms") -> Iterator[None]:
        """Hold ``k`` slots for the duration of a ``with`` block."""
        self.acquire(k, what)
        try:
            yield
        finally:
            self.release(k)

    def drain(self) -> int:
        """Release everything held; returns how many slots were held.

        Used at round boundaries by round-based programs, whose internal
        memory must be empty between rounds (Section 4).
        """
        held = self.occupancy
        self.occupancy = 0
        return held

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InternalMemory({self.occupancy}/{self.capacity} held, "
            f"peak {self.peak}, enforce={self.enforce})"
        )
