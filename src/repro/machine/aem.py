"""The (M, B, omega)-Asymmetric External Memory machine.

:class:`AEMMachine` is the substrate every algorithm in this repository runs
on. It combines

* a :class:`~repro.machine.blockstore.BlockStore` (unbounded external
  memory in blocks of ``B`` atoms),
* an :class:`~repro.machine.internal.InternalMemory` ledger enforcing the
  capacity ``M``,
* a :class:`~repro.machine.cost.CostCounter` charging ``1`` per read I/O and
  ``omega`` per write I/O, and
* optional trace recording, producing the straight-line *programs* that the
  paper's lower-bound machinery (Sections 4 and 5) operates on.

Model semantics implemented here:

* ``read(addr)`` transfers one block into internal memory. All atoms of the
  block are staged internally and count against ``M`` until the caller
  ``release``-s them or ``write``-s them back out. Reading is a *copy*: the
  external block keeps its contents (programs that need the §4.2 move
  semantics are analysed at the trace level, where the usefulness back-pass
  decides which copy of each atom is the live one).
* ``write(addr, items)`` transfers up to ``B`` atoms from internal memory to
  the external block ``addr``, releasing their slots.
* Atoms created *inside* internal memory (e.g. SpMxV partial sums) must be
  ``acquire``-d, and atoms destroyed there (e.g. two partial sums combined
  into one) ``release``-d, so the ledger stays truthful.

Capacity enforcement can be disabled (``enforce_capacity=False``) for
exploratory runs, but every algorithm shipped here passes with enforcement
on; the tests pin their peak occupancy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..core.params import AEMParams
from .blockstore import BlockStore
from .cost import CostCounter, CostSnapshot
from .errors import BlockSizeError
from .internal import InternalMemory
from ..trace.ops import Op, ReadOp, WriteOp


def _uids_of(items: Sequence) -> Tuple[Optional[int], ...]:
    """Atom identities of a block's payload (None for identity-less data)."""
    return tuple(getattr(it, "uid", None) for it in items)


class AEMMachine:
    """An (M, B, omega)-AEM with exact cost accounting and tracing.

    Parameters
    ----------
    params:
        The model parameters. ``params.M`` is the capacity charged against;
        algorithms that follow the paper's "constant fraction of memory"
        convention should construct the machine from their *physical*
        memory and size their logical buffers accordingly (see
        :meth:`for_algorithm`).
    enforce_capacity:
        If true (default), exceeding ``M`` resident atoms raises
        :class:`~repro.machine.errors.CapacityError`.
    record:
        If true, every I/O is appended to :attr:`trace` as a
        :class:`~repro.trace.ops.ReadOp` / :class:`~repro.trace.ops.WriteOp`.
    """

    def __init__(
        self,
        params: AEMParams,
        *,
        enforce_capacity: bool = True,
        record: bool = False,
    ):
        self.params = params
        self.disk = BlockStore(params.B)
        self.mem = InternalMemory(params.M, enforce=enforce_capacity)
        self.counter = CostCounter(params.omega)
        self.record = record
        self.trace: list[Op] = []

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def for_algorithm(
        cls, params: AEMParams, slack: float = 4.0, **kwargs
    ) -> "AEMMachine":
        """A machine whose physical memory is ``slack * params.M``.

        Section 3.1: "let M be a constant fraction of the available internal
        memory". Algorithms are written against a logical ``M`` and run on a
        machine with a small constant factor more capacity to hold staging
        blocks and auxiliary words; asymptotics are unaffected.
        """
        physical = params.with_memory(max(params.B, int(params.M * slack)))
        return cls(physical, **kwargs)

    # ------------------------------------------------------------------
    # Core I/O operations.
    # ------------------------------------------------------------------
    def read(self, addr: int) -> list:
        """Read one block (cost 1); its atoms become resident internally."""
        items = list(self.disk.get(addr))
        self.mem.acquire(len(items))
        self.counter.add_read()
        if self.record:
            self.trace.append(ReadOp(addr, _uids_of(items)))
        return items

    def peek(self, addr: int) -> list:
        """Read one block (cost 1) without keeping any of its atoms.

        Equivalent to ``read`` followed by releasing everything; used when
        an algorithm only inspects a block (e.g. re-reading initialization
        blocks to identify active arrays in §3.1). Capacity for the staging
        is still checked: the block must momentarily fit.
        """
        items = list(self.disk.get(addr))
        self.mem.require(len(items))
        self.counter.add_read()
        if self.record:
            self.trace.append(ReadOp(addr, _uids_of(items)))
        return items

    def write(self, addr: int, items: Sequence) -> None:
        """Write up to ``B`` atoms to block ``addr`` (cost ``omega``)."""
        if len(items) > self.params.B:
            raise BlockSizeError(
                f"write of {len(items)} atoms exceeds block size B={self.params.B}"
            )
        self.disk.set(addr, items)
        self.mem.release(len(items))
        self.counter.add_write()
        if self.record:
            self.trace.append(WriteOp(addr, _uids_of(items), tuple(items)))

    def write_fresh(self, items: Sequence) -> int:
        """Allocate a new block and write ``items`` to it; returns address."""
        addr = self.disk.allocate_one()
        self.write(addr, items)
        return addr

    # ------------------------------------------------------------------
    # Internal memory management for the algorithms.
    # ------------------------------------------------------------------
    def release(self, count_or_items) -> None:
        """Discard atoms from internal memory (no I/O cost)."""
        k = count_or_items if isinstance(count_or_items, int) else len(count_or_items)
        self.mem.release(k)

    def acquire(self, count_or_items, what: str = "atoms") -> None:
        """Account for atoms created inside internal memory (no I/O cost)."""
        k = count_or_items if isinstance(count_or_items, int) else len(count_or_items)
        self.mem.acquire(k, what)

    def touch(self, k: int = 1) -> None:
        """Record ``k`` internal operations (the model's time ``T``)."""
        self.counter.touch(k)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        with self.counter.phase(name):
            yield

    # ------------------------------------------------------------------
    # Allocation passthrough.
    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> list[int]:
        return self.disk.allocate(count)

    def allocate_one(self) -> int:
        return self.disk.allocate_one()

    def free(self, addr: int) -> None:
        self.disk.free(addr)

    # ------------------------------------------------------------------
    # Input/output placement (cost-free: the problem statement).
    # ------------------------------------------------------------------
    def load_input(self, items: Iterable) -> list[int]:
        """Place the problem input contiguously in external memory."""
        return self.disk.load_items(items)

    def collect_output(self, addrs: Iterable[int]) -> list:
        """Concatenate output blocks for verification (cost-free)."""
        return self.disk.dump_items(addrs)

    # ------------------------------------------------------------------
    # Cost readout.
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total asymmetric cost so far, ``Q = Qr + omega * Qw``."""
        return self.counter.Q

    @property
    def reads(self) -> int:
        return self.counter.reads

    @property
    def writes(self) -> int:
        return self.counter.writes

    def snapshot(self) -> CostSnapshot:
        return self.counter.snapshot()

    def wear(self):
        """Per-block write-endurance summary (see BlockStore.wear)."""
        return self.disk.wear()

    def describe(self) -> str:
        return f"{self.params.describe()}: {self.counter.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AEMMachine({self.describe()})"
