"""The (M, B, omega)-Asymmetric External Memory machine.

:class:`AEMMachine` is the substrate every algorithm in this repository runs
on. It is a thin model-semantics veneer over a shared
:class:`~repro.machine.core.MachineCore` — blockstore, capacity ledger, and
the machine-event bus — and charges the AEM's costs: ``1`` per read I/O,
``omega`` per write I/O.

Everything that *watches* a run is an observer on the bus
(:mod:`repro.observe`): cost accounting with phase attribution
(:class:`~repro.observe.CostObserver`, always attached), straight-line
program recording (:class:`~repro.observe.TraceRecorder`, producing the
programs the paper's Sections 4 and 5 operate on), wear profiling,
progress display, and anything a caller brings along via ``observers=``.

Model semantics implemented here:

* ``read(addr)`` transfers one block into internal memory. All atoms of the
  block are staged internally and count against ``M`` until the caller
  ``release``-s them or ``write``-s them back out. Reading is a *copy*: the
  external block keeps its contents (programs that need the §4.2 move
  semantics are analysed at the trace level, where the usefulness back-pass
  decides which copy of each atom is the live one).
* ``write(addr, items)`` transfers up to ``B`` atoms from internal memory to
  the external block ``addr``, releasing their slots.
* Atoms created *inside* internal memory (e.g. SpMxV partial sums) must be
  ``acquire``-d, and atoms destroyed there (e.g. two partial sums combined
  into one) ``release``-d, so the ledger stays truthful.

Capacity enforcement can be disabled (``enforce_capacity=False``) for
exploratory runs, but every algorithm shipped here passes with enforcement
on; the tests pin their peak occupancy.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence

from ..core.params import AEMParams
from ..observe.base import MachineObserver
from ..observe.cost import CostObserver
from ..observe.trace import TraceRecorder
from .blockstore import BlockStore
from .core import MachineCore
from .cost import CostCounter, CostSnapshot
from .errors import AddressError, BlockSizeError
from .internal import InternalMemory
from .phantom import (
    PhantomBlock,
    PhantomBlockStore,
    freeze_tokens,
    is_phantom_payload,
    token_of,
)
from ..trace.ops import Op


class AEMMachine:
    """An (M, B, omega)-AEM with exact cost accounting and instrumentation.

    Parameters
    ----------
    params:
        The model parameters. ``params.M`` is the capacity charged against;
        algorithms that follow the paper's "constant fraction of memory"
        convention should construct the machine from their *physical*
        memory and size their logical buffers accordingly (see
        :meth:`for_algorithm`).
    enforce_capacity:
        If true (default), exceeding ``M`` resident atoms raises
        :class:`~repro.machine.errors.CapacityError`.
    record:
        Legacy switch: attach a :class:`~repro.observe.TraceRecorder` so
        every I/O is appended to :attr:`trace` as a
        :class:`~repro.trace.ops.ReadOp` / :class:`~repro.trace.ops.WriteOp`.
        New code passes a ``TraceRecorder`` in ``observers`` instead.
    observers:
        Additional :class:`~repro.observe.MachineObserver` instances to
        attach at construction (wear maps, progress readouts, ...).
    counting:
        Counting fast path: back the machine with a
        :class:`~repro.machine.phantom.PhantomBlockStore` so no atom
        tuples are materialized or copied. Every event the machine emits
        (costs, addresses, block lengths, phases, rounds) is identical to
        a full run, so cost observers, sanitizers, wear maps, and metrics
        work unchanged; observers that read atom *contents* declare
        ``needs_payloads = True`` and are rejected at attach. Data-driven
        algorithms still make bit-identical decisions through the token
        stash: ``write``/``load_input`` remember each block's *scheduling
        tokens* (``Atom.sort_token()`` for atoms, the value itself for
        pointer words and numbers), and ``read``/``peek`` hand those back.
    dispatch / flush_every:
        Event-bus dispatch mode and batch flush interval, passed through
        to :class:`~repro.machine.core.MachineCore` (``None`` keeps the
        defaults: the ``REPRO_DISPATCH`` environment switch, else
        batched dispatch with the standard flush interval).
    """

    def __init__(
        self,
        params: AEMParams,
        *,
        enforce_capacity: bool = True,
        record: bool = False,
        observers: Sequence[MachineObserver] = (),
        counting: bool = False,
        dispatch: Optional[str] = None,
        flush_every: Optional[int] = None,
    ):
        self.params = params
        self.counting = counting
        self._B = params.B  # hot-path cache (params is frozen)
        #: Counting mode only: per-address *converted* scheduling tokens
        #: for blocks whose (token-level) contents the writer knew (see
        #: :func:`~repro.machine.phantom.freeze_tokens`). Blocks written
        #: as phantom payloads have no entry and read back as
        #: :class:`~repro.machine.phantom.PhantomBlock`.
        self._tokens: dict[int, tuple] = {}
        #: Raw snapshots of written-but-never-read blocks, converted into
        #: ``_tokens`` on first read. Kept as a separate dict (rather than
        #: a list-vs-tuple type tag in ``_tokens``) so the snapshots can
        #: be immutable tuples: CPython untracks tuples of untrackable
        #: values at the first GC pass, which keeps the collector's
        #: scan sets — and hence per-I/O GC overhead on streaming runs
        #: that write millions of blocks — small.
        self._raw: dict[int, tuple] = {}
        store = PhantomBlockStore(params.B) if counting else BlockStore(params.B)
        self.core = MachineCore(
            store,
            InternalMemory(params.M, enforce=enforce_capacity),
            dispatch=dispatch,
            flush_every=flush_every,
        )
        self.disk = self.core.disk
        self.mem = self.core.mem
        self._read_cost = 1
        self._write_cost = params.omega
        self._cost = self.core.attach(CostObserver(omega=params.omega))
        self._recorder: Optional[TraceRecorder] = None
        for obs in observers:
            self.attach(obs)
        if record and self._recorder is None:
            self.attach(TraceRecorder())

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @classmethod
    def for_algorithm(
        cls, params: AEMParams, slack: float = 4.0, **kwargs
    ) -> "AEMMachine":
        """A machine whose physical memory is ``slack * params.M``.

        Section 3.1: "let M be a constant fraction of the available internal
        memory". Algorithms are written against a logical ``M`` and run on a
        machine with a small constant factor more capacity to hold staging
        blocks and auxiliary words; asymptotics are unaffected.
        """
        physical = params.with_memory(max(params.B, int(params.M * slack)))
        return cls(physical, **kwargs)

    # ------------------------------------------------------------------
    # Instrumentation.
    # ------------------------------------------------------------------
    def attach(self, observer: MachineObserver) -> MachineObserver:
        """Attach an observer to this machine's event bus."""
        self.core.attach(observer)
        if isinstance(observer, TraceRecorder) and self._recorder is None:
            self._recorder = observer
        return observer

    def detach(self, observer: MachineObserver) -> None:
        if observer is self._cost:
            # Silently allowing this would freeze .cost/.reads/.writes at
            # their current values while the run continues — every later
            # readout would be quietly wrong.
            raise ValueError(
                "cannot detach the machine's own CostObserver; "
                ".cost/.reads/.writes would silently stop counting"
            )
        self.core.detach(observer)
        if observer is self._recorder:
            self._recorder = None

    @property
    def observers(self) -> list[MachineObserver]:
        return list(self.core.observers)

    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The trace recorder, when one is attached."""
        return self._recorder

    @property
    def record(self) -> bool:
        """Whether I/Os are being recorded (a ``TraceRecorder`` is attached)."""
        return self._recorder is not None

    @property
    def trace(self) -> list[Op]:
        """The recorded op sequence (empty unless recording)."""
        if self._recorder is None:
            return []
        return self._recorder.ops

    # ------------------------------------------------------------------
    # Core I/O operations.
    # ------------------------------------------------------------------
    def _stash_tokens(self, addr: int) -> Optional[tuple]:
        """The stashed tokens of ``addr``, converting a raw snapshot once.

        ``write`` stores a raw tuple snapshot (one C-speed copy, or no
        copy at all when the written payload is already a tuple); the
        O(B) token conversion happens here, on the block's first read,
        and the converted tuple moves to ``_tokens``. Write-only blocks —
        most of a streaming workload's output — never convert at all.
        """
        stashed = self._tokens.get(addr)
        if stashed is None:
            raw = self._raw.pop(addr, None)
            if raw is not None:
                stashed = freeze_tokens(raw)
                self._tokens[addr] = stashed
        return stashed

    def read(self, addr: int) -> list:
        """Read one block (cost 1); its atoms become resident internally.

        On a counting machine the returned sequence holds the block's
        scheduling tokens when the writer knew them (so data-driven reads
        still steer identically), or a sized
        :class:`~repro.machine.phantom.PhantomBlock` otherwise.
        """
        if self.counting:
            # _stash_tokens, inlined: one dict probe on the hot path.
            stashed = self._tokens.get(addr)
            if stashed is None:
                raw = self._raw.pop(addr, None)
                if raw is not None:
                    stashed = freeze_tokens(raw)
                    self._tokens[addr] = stashed
            return self.core.read_block(addr, self._read_cost, items=stashed)
        return self.core.read_block(addr, self._read_cost)

    def peek(self, addr: int) -> list:
        """Read one block (cost 1) without keeping any of its atoms.

        Equivalent to ``read`` followed by releasing everything; used when
        an algorithm only inspects a block (e.g. re-reading initialization
        blocks to identify active arrays in §3.1). Capacity for the staging
        is still checked: the block must momentarily fit.
        """
        if self.counting:
            return self.core.read_block(
                addr, self._read_cost, keep=False, items=self._stash_tokens(addr)
            )
        return self.core.read_block(addr, self._read_cost, keep=False)

    def write(self, addr: int, items: Sequence) -> None:
        """Write up to ``B`` atoms to block ``addr`` (cost ``omega``)."""
        if len(items) > self._B:
            raise BlockSizeError(
                f"write of {len(items)} atoms exceeds block size B={self._B}"
            )
        if self.counting:
            # list/tuple payloads (the hot path) skip the phantom
            # isinstance probe entirely.
            cls = items.__class__
            if cls is PhantomBlock or (
                cls is not list and cls is not tuple and is_phantom_payload(items)
            ):
                self._tokens.pop(addr, None)
                self._raw.pop(addr, None)
            else:
                # Hot path: stash one raw snapshot (a C-speed shallow
                # copy; free when the payload is already a tuple) and let
                # _stash_tokens pay the per-item tokenization only if the
                # block is ever read back.
                self._raw[addr] = tuple(items)
                if addr in self._tokens:
                    del self._tokens[addr]
        self.core.write_block(addr, items, self._write_cost)

    def write_fresh(self, items: Sequence) -> int:
        """Allocate a new block and write ``items`` to it; returns address."""
        addr = self.disk.allocate_one()
        self.write(addr, items)
        return addr

    # ------------------------------------------------------------------
    # Internal memory management for the algorithms.
    # ------------------------------------------------------------------
    def release(self, count_or_items) -> None:
        """Discard atoms from internal memory (no I/O cost)."""
        k = count_or_items if isinstance(count_or_items, int) else len(count_or_items)
        self.core.release(k)

    def acquire(self, count_or_items, what: str = "atoms") -> None:
        """Account for atoms created inside internal memory (no I/O cost)."""
        k = count_or_items if isinstance(count_or_items, int) else len(count_or_items)
        self.core.acquire(k, what)

    def touch(self, k: int = 1) -> None:
        """Record ``k`` internal operations (the model's time ``T``)."""
        self.core.touch(k)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        with self.core.phase(name):
            yield

    def round_boundary(self) -> int:
        """Declare a round boundary (Section 4): drain memory, notify.

        Returns the number of internal-memory slots that were drained.
        """
        return self.core.round_boundary()

    def flush(self) -> None:
        """Flush buffered batch events to observers (see MachineCore).

        Rarely needed by callers: phase/round boundaries flush
        automatically and every observer readout flushes on demand.
        """
        self.core.flush_events()

    # ------------------------------------------------------------------
    # Allocation passthrough.
    # ------------------------------------------------------------------
    def allocate(self, count: int = 1) -> list[int]:
        return self.disk.allocate(count)

    def allocate_one(self) -> int:
        return self.disk.allocate_one()

    def free(self, addr: int) -> None:
        self.disk.free(addr)
        if self.counting:
            self._tokens.pop(addr, None)

    def block_len(self, addr: int) -> int:
        """Number of atoms stored in block ``addr`` (cost-free metadata).

        Block occupancies are problem metadata, not data the program must
        discover — exactly like an algorithm being told its input size —
        so reading them charges nothing. This is the sanctioned way for
        algorithms to size runs and tiles; touching ``disk`` contents
        directly is a lint violation (AEM102).
        """
        return len(self.disk.get(addr))

    # ------------------------------------------------------------------
    # Input/output placement (cost-free: the problem statement).
    # ------------------------------------------------------------------
    def load_input(self, items: Iterable) -> list[int]:
        """Place the problem input contiguously in external memory.

        Counting machines stash each input block's scheduling tokens here,
        so the very first data-driven read already sees real tokens.
        """
        if not self.counting:
            return self.disk.load_items(items)
        items = list(items)
        addrs = self.disk.load_items(items)
        B = self.params.B
        for i, addr in enumerate(addrs):
            self._tokens[addr] = tuple(
                token_of(it) for it in items[i * B : (i + 1) * B]
            )
        return addrs

    def collect_output(self, addrs: Iterable[int]) -> list:
        """Concatenate output blocks for verification (cost-free)."""
        if self.counting:
            raise AddressError(
                "collect_output needs atom payloads, which a counting "
                "machine never materializes; verify outputs on a full "
                "(counting=False) machine"
            )
        return self.disk.dump_items(addrs)

    # ------------------------------------------------------------------
    # Cost readout.
    # ------------------------------------------------------------------
    @property
    def counter(self) -> CostCounter:
        """The always-attached cost observer's counter."""
        return self._cost.counter

    @property
    def cost(self) -> float:
        """Total asymmetric cost so far, ``Q = Qr + omega * Qw``."""
        return self._cost.Q

    @property
    def reads(self) -> int:
        return self._cost.reads

    @property
    def writes(self) -> int:
        return self._cost.writes

    def snapshot(self) -> CostSnapshot:
        return self._cost.snapshot()

    def wear(self):
        """Per-block write-endurance summary (see BlockStore.wear)."""
        return self.disk.wear()

    def describe(self) -> str:
        return f"{self.params.describe()}: {self._cost.describe()}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AEMMachine({self.describe()})"
