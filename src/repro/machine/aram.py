"""The (M, omega)-Asymmetric RAM of Blelloch et al.

The paper observes that the (M, omega)-ARAM is equivalent to the
(M, 1, omega)-AEM: block size one, unbounded asymmetric memory, writes
costing ``omega``. :func:`aram_machine` constructs it on the shared
simulator, so ARAM costs fall out of the same counters.
"""

from __future__ import annotations

from ..core.params import AEMParams
from .aem import AEMMachine


def aram_params(M: int, omega: float) -> AEMParams:
    """Parameters of the (M, omega)-ARAM (``B = 1``)."""
    return AEMParams.aram(M, omega)


def aram_machine(M: int, omega: float, **kwargs) -> AEMMachine:
    """An (M, omega)-ARAM machine: an AEM machine with ``B = 1``."""
    return AEMMachine(aram_params(M, omega), **kwargs)
