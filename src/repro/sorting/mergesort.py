"""The Section 3 AEM mergesort.

Recurrence (paper, Section 3): divide the array into ``d = omega*m``
subarrays, recursively sort each, and merge with the Section 3.1 round
merge; subarrays of at most ``omega*M`` atoms are sorted directly by the
small-array base case. Cost::

    Q(N) = d * Q(N/d) + O(omega*n)   if N > omega*M
    Q(N) = O(omega*n)                 if N <= omega*M

which solves to ``O(omega * n * log_{omega m} n)`` — with ``O(n *
log_{omega m} n)`` of it writes — for *any* omega, the paper's headline
upper bound.

``pointer_mode`` selects where the merge keeps its run pointers:
``"external"`` (the paper's scheme, works for all omega) or ``"internal"``
(the previously published scheme, which overflows internal memory once the
``omega*m``-entry table no longer fits — essentially ``omega > B``). The
:func:`pointer_mergesort` wrapper names the baseline for the experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from .merge import MergeStats, multiway_merge
from .runs import Run, run_of_input, split_run
from .small import small_sort


def sort_run(
    machine: AEMMachine,
    run: Run,
    params: AEMParams,
    *,
    pointer_mode: str = "external",
    stats: Optional[MergeStats] = None,
    fanout: Optional[int] = None,
) -> Run:
    """Sort a run with the Section 3 mergesort; returns the sorted run.

    ``fanout`` overrides the recursion's branching factor ``d`` (default
    ``omega*m``, the paper's choice). Used by the fan-out ablation: any
    ``2 <= d <= omega*m`` is correct, but only ``d = omega*m`` minimizes
    the level count that the cost bound pays for.
    """
    if run.length <= params.base_case_size():
        with machine.phase("mergesort/base"):
            return small_sort(machine, run, params)
    d = max(2, params.fanout if fanout is None else min(fanout, params.fanout))
    subruns = split_run(machine, run, d)
    if len(subruns) == 1:
        # A single huge block (degenerate B >= N); fall back to base case.
        return small_sort(machine, run, params)
    sorted_subs = [
        sort_run(
            machine,
            sub,
            params,
            pointer_mode=pointer_mode,
            stats=stats,
            fanout=fanout,
        )
        for sub in subruns
    ]
    return multiway_merge(
        machine, sorted_subs, params, pointer_mode=pointer_mode, stats=stats
    )


def aem_mergesort(
    machine: AEMMachine,
    addrs: Sequence[int],
    params: AEMParams,
    *,
    pointer_mode: str = "external",
    stats: Optional[MergeStats] = None,
) -> list[int]:
    """Sort the atoms stored at ``addrs``; returns the output block run.

    The paper's algorithm: cost ``O(omega*n*log_{omega m} n)`` with only
    ``O(n*log_{omega m} n)`` writes, for any omega >= 1.
    """
    run = run_of_input(machine, addrs)
    out = sort_run(machine, run, params, pointer_mode=pointer_mode, stats=stats)
    return list(out.addrs)


def pointer_mergesort(
    machine: AEMMachine,
    addrs: Sequence[int],
    params: AEMParams,
    *,
    stats: Optional[MergeStats] = None,
) -> list[int]:
    """The prior AEM mergesort: run pointers held in internal memory.

    Matches :func:`aem_mergesort`'s cost while the pointer table fits, but
    raises :class:`~repro.machine.errors.CapacityError` once
    ``omega*m`` words no longer fit alongside the merge buffer — the
    ``omega < B`` assumption the paper removes (experiment E2).
    """
    return aem_mergesort(
        machine, addrs, params, pointer_mode="internal", stats=stats
    )
