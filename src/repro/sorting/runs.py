"""Sorted runs in external memory.

A *run* is a maximal unit the sorting algorithms operate on: a sequence of
block addresses whose concatenated atoms are sorted (by the strict
``(key, uid)`` order). Runs carry their length so algorithms never need a
costed scan just to know how much data they hold — input sizes are part of
the problem statement in the EM/AEM models, the same way N itself is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..machine.aem import AEMMachine


@dataclass(frozen=True)
class Run:
    """A (usually sorted) sequence of blocks in external memory."""

    addrs: tuple[int, ...]
    length: int

    @staticmethod
    def of(addrs: Sequence[int], length: int) -> "Run":
        return Run(addrs=tuple(addrs), length=length)

    @property
    def blocks(self) -> int:
        return len(self.addrs)

    def is_empty(self) -> bool:
        return self.length == 0


def run_of_input(machine: AEMMachine, addrs: Sequence[int]) -> Run:
    """Wrap raw input blocks as a run, counting atoms cost-free.

    The atom count is problem metadata (the N of the instance), not data
    the program must discover, so reading it off the block store charges
    nothing — exactly like an algorithm being told its input size.
    """
    length = sum(machine.block_len(a) for a in addrs)
    return Run.of(addrs, length)


def split_run(machine: AEMMachine, run: Run, parts: int) -> list[Run]:
    """Split a run into up to ``parts`` contiguous block-aligned sub-runs.

    Used by the mergesort recursion: "divide the array into d subarrays,
    each of size O(N/d)". Sub-runs differ in block count by at most one;
    empty sub-runs are dropped. Lengths are taken cost-free from the block
    store (metadata, see :func:`run_of_input`).
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    nblocks = run.blocks
    base, extra = divmod(nblocks, parts)
    out: list[Run] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        addrs = run.addrs[start : start + size]
        length = sum(machine.block_len(a) for a in addrs)
        if length > 0:
            out.append(Run.of(addrs, length))
        start += size
    return out


def concat_runs(runs: Sequence[Run]) -> Run:
    """Concatenate runs (caller guarantees ordering if sortedness matters)."""
    addrs: list[int] = []
    length = 0
    for r in runs:
        addrs.extend(r.addrs)
        length += r.length
    return Run.of(addrs, length)
