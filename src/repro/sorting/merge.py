"""The Section 3.1 merge: merging ``omega*m`` sorted runs in rounds.

This is the paper's main algorithmic contribution. Merging ``k <= omega*m``
sorted runs holding N atoms in total proceeds in ``R = ceil(N/M)`` rounds;
each round emits the next M smallest atoms in sorted order and costs
``O(omega*m)`` reads and ``O(m)`` writes (plus amortized pointer
maintenance), for Theorem 3.2's totals of ``O(omega*(n+m))`` reads and
``O(n+m)`` writes.

The crux is that for ``omega > B`` even one word of per-run state exceeds
internal memory (``omega*m > M``), so the per-run block pointers ``b[i]``
live in *external* memory, packed B to a block, and are rewritten only when
they change — at most once per consumed data block, i.e. ``O(n)`` pointer
writes over the whole merge.

Round anatomy (P = largest atom emitted so far; every element <= P is
already consumed from every run — the global threshold stands in for the
paper's per-array ``p_i``):

* **Phase A (initialize M).** Stream the pointer blocks; for every run
  ``i`` read blocks ``b[i]`` and ``b[i]+1`` and merge their atoms ``> P``
  into the buffer, truncated to the M smallest.
* **Phase B (identify active runs).** Re-read (peek) the last
  initialization block of each run. A run is *active* if that block's
  maximum is not the run's last atom and is among the buffer's M smallest
  — by Lemma 3.1 at most ``m`` runs are active (asserted!), so their
  state fits in memory.
* **Phase C (merge from active runs).** Classical ``<= m``-way merging:
  repeatedly read the next block of the run with the smallest maximum
  loaded so far, merging into the buffer; a run deactivates when its
  loaded maximum exceeds the buffer maximum or it is exhausted.
* **Phase D (emit).** Write the buffer (``<= m`` blocks) to the output.
* **Phase E (pointer update).** Recompute ``b[i]`` = first block with an
  atom greater than the new threshold; write back only the dirty pointer
  blocks. A pointer only moves when a data block was fully consumed, so
  these writes amortize to ``O(n)``.

Setting ``pointer_mode="internal"`` keeps the ``b[i]`` table resident in
internal memory instead — the strategy of the previously published AEM
mergesort, which works only while the table fits (``omega*m + M`` within
physical memory, i.e. essentially ``omega < B``); with larger ``omega`` it
raises :class:`~repro.machine.errors.CapacityError`. This is experiment
E2's baseline.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.params import AEMParams, ceil_div
from ..machine.aem import AEMMachine
from ..machine.phantom import token_of
from ..machine.streams import BlockWriter
from .runs import Run

EXHAUSTED = -1  # pointer sentinel: run fully consumed


# ----------------------------------------------------------------------
# Pointer stores.
# ----------------------------------------------------------------------
class ExternalPointerStore:
    """The paper's scheme: ``b[i]`` pointers packed B per external block."""

    def __init__(self, machine: AEMMachine, k: int):
        self.machine = machine
        self.k = k
        B = machine.params.B
        self.B = B
        self.addrs = machine.allocate(ceil_div(k, B)) if k else []
        # Initialization: all pointers start at block 0 of their run.
        # Cost: O(k/B) writes ("this initialization takes O(omega*m/B)
        # write I/Os" — the paper states O(omega*m), an overcount).
        for j, addr in enumerate(self.addrs):
            count = min(B, k - j * B)
            machine.acquire(count, "pointer words")
            machine.write(addr, [0] * count)

    def scan(self) -> Iterator[tuple[int, int]]:
        """Yield ``(run index, pointer)`` streaming one block at a time."""
        for j, addr in enumerate(self.addrs):
            blk = self.machine.read(addr)
            for t, value in enumerate(blk):
                yield j * self.B + t, value
            self.machine.release(len(blk))

    def update(self, changes: dict[int, int]) -> int:
        """Apply pointer changes; returns the number of dirty block writes."""
        if not changes:
            return 0
        dirty: dict[int, dict[int, int]] = {}
        for i, v in changes.items():
            dirty.setdefault(i // self.B, {})[i % self.B] = v
        for j, updates in sorted(dirty.items()):
            blk = list(self.machine.read(self.addrs[j]))
            for t, v in updates.items():
                blk[t] = v
            self.machine.write(self.addrs[j], blk)
        return len(dirty)

    def close(self) -> None:
        for addr in self.addrs:
            self.machine.free(addr)


class InternalPointerStore:
    """Baseline scheme: the pointer table lives in internal memory.

    Acquires ``k`` words for the whole merge — feasible only while the
    table fits alongside the merge buffer, which is the ``omega < B``
    assumption the paper removes.
    """

    def __init__(self, machine: AEMMachine, k: int):
        self.machine = machine
        self.k = k
        machine.acquire(k, "in-memory pointer table")
        self.table = [0] * k

    def scan(self) -> Iterator[tuple[int, int]]:
        yield from enumerate(self.table)

    def update(self, changes: dict[int, int]) -> int:
        for i, v in changes.items():
            self.table[i] = v
        return 0

    def close(self) -> None:
        self.machine.release(self.k)


# ----------------------------------------------------------------------
# Statistics (Lemma 3.1 / Theorem 3.2 instrumentation).
# ----------------------------------------------------------------------
@dataclass
class RoundStats:
    reads: int = 0
    writes: int = 0
    active_runs: int = 0
    phase_c_reads: int = 0
    emitted: int = 0


@dataclass
class MergeStats:
    """Per-round accounting of one multiway merge."""

    rounds: list[RoundStats] = field(default_factory=list)

    @property
    def max_active(self) -> int:
        return max((r.active_runs for r in self.rounds), default=0)

    @property
    def total_reads(self) -> int:
        return sum(r.reads for r in self.rounds)

    @property
    def total_writes(self) -> int:
        return sum(r.writes for r in self.rounds)


# ----------------------------------------------------------------------
# The merge.
# ----------------------------------------------------------------------
def multiway_merge(
    machine: AEMMachine,
    runs: Sequence[Run],
    params: AEMParams,
    *,
    pointer_mode: str = "external",
    writer: Optional[BlockWriter] = None,
    stats: Optional[MergeStats] = None,
) -> Run:
    """Merge ``k <= omega*m`` sorted runs into one sorted run.

    Returns the merged run (written through ``writer`` if given, else to a
    fresh contiguous region). ``stats`` (if provided) collects per-round
    instrumentation used by the Lemma 3.1 / Theorem 3.2 experiments.
    """
    runs = [r for r in runs if not r.is_empty()]
    k = len(runs)
    total = sum(r.length for r in runs)
    fan_limit = max(2, params.fanout)
    if k > fan_limit:
        raise ValueError(f"multiway_merge fan-in {k} exceeds omega*m = {fan_limit}")
    own_writer = writer is None
    out = writer or BlockWriter(machine)
    if k == 0:
        return Run.of(out.close() if own_writer else (), 0)

    if pointer_mode == "external":
        ptrs: ExternalPointerStore | InternalPointerStore = ExternalPointerStore(
            machine, k
        )
    elif pointer_mode == "internal":
        ptrs = InternalPointerStore(machine, k)
    else:
        raise ValueError(f"unknown pointer_mode {pointer_mode!r}")

    M, m = params.M, params.m
    counting = machine.counting
    threshold = None  # sort token of the largest atom emitted so far (P)
    emitted = 0

    def above_threshold(atom) -> bool:
        return threshold is None or atom.sort_token() > threshold

    while emitted < total:
        rs = RoundStats()
        start = machine.snapshot()
        buffer: list = []  # the paper's M: sorted, at most M atoms

        def merge_atom(atom) -> None:
            """Merge one freshly read (resident) atom into the buffer,
            releasing it if rejected or an evicted atom otherwise."""
            machine.touch()
            if not above_threshold(atom):
                machine.release(1)
                return
            if len(buffer) < M:
                insort(buffer, atom)
            elif atom < buffer[-1]:
                buffer.pop()  # evict current largest candidate
                machine.release(1)
                insort(buffer, atom)
            else:
                machine.release(1)

        def feed_block(tokens) -> None:
            """Counting-mode ``merge_atom`` over a whole sorted block.

            Keeping the M smallest of (buffer ∪ accepted tokens) is
            feed-order independent, so extend+sort+truncate lands on the
            exact buffer the per-atom loop builds. The per-atom touches
            and releases are batched into one event each with identical
            totals (releases per block = accepted-or-rejected atoms plus
            evictions = len + old_len - new_len), and they land before
            the next acquire, so peak memory is unchanged too.
            """
            machine.touch(len(tokens))
            old_len = len(buffer)
            if threshold is None:
                buffer.extend(tokens)
            else:
                # First token strictly greater than the threshold — the
                # batched form of merge_atom's strict `> threshold` test.
                buffer.extend(tokens[bisect_right(tokens, threshold) :])
            buffer.sort()
            del buffer[M:]
            machine.release(len(tokens) + old_len - len(buffer))

        # ---------------- Phase A: initialize the buffer ----------------
        with machine.phase("merge/init"):
            for i, b in ptrs.scan():
                if b == EXHAUSTED:
                    continue
                for idx in (b, b + 1):
                    if idx < runs[i].blocks:
                        blk = machine.read(runs[i].addrs[idx])
                        if counting:
                            feed_block(blk)
                        else:
                            for atom in blk:
                                merge_atom(atom)

        # ---------------- Phase B: identify active runs -----------------
        # active entries: [i, next_block_index, s_token, last_block_read]
        active: list[list] = []
        init_maxes: dict[int, list] = {}  # i -> [(blk_idx, max_token), ...]
        with machine.phase("merge/identify"):
            buf_full = len(buffer) >= M
            for i, b in ptrs.scan():
                if b == EXHAUSTED:
                    continue
                last_idx = min(b + 1, runs[i].blocks - 1)
                blk = machine.peek(runs[i].addrs[last_idx])
                s_token = token_of(blk[-1])
                is_final = last_idx == runs[i].blocks - 1
                among_smallest = (not buf_full) or s_token < token_of(buffer[-1])
                if not is_final and among_smallest:
                    machine.acquire(4, "active-run state")
                    active.append([i, last_idx + 1, s_token, last_idx])
                    # Log init block maxes for the Phase E pointer update.
                    maxes = [(last_idx, s_token)]
                    if last_idx > b:
                        first = machine.peek(runs[i].addrs[b])
                        maxes.insert(0, (b, token_of(first[-1])))
                        machine.acquire(2, "pointer log")
                    machine.acquire(2, "pointer log")
                    init_maxes[i] = maxes
        rs.active_runs = len(active)
        # Lemma 3.1: after initialization at most m runs stay active.
        if len(active) > m:
            raise AssertionError(
                f"Lemma 3.1 violated: {len(active)} active runs > m = {m}"
            )

        # ---------------- Phase C: merge from active runs ---------------
        logs: dict[int, list] = init_maxes
        with machine.phase("merge/active"):
            while active:
                # The run with the smallest maximum loaded so far.
                j = min(range(len(active)), key=lambda t: active[t][2])
                machine.touch(len(active))
                entry = active[j]
                i, nxt = entry[0], entry[1]
                if nxt >= runs[i].blocks:
                    active.pop(j)
                    machine.release(4)
                    continue
                blk = machine.read(runs[i].addrs[nxt])
                rs.phase_c_reads += 1
                s_token = token_of(blk[-1])
                if counting:
                    feed_block(blk)
                else:
                    for atom in blk:
                        merge_atom(atom)
                machine.acquire(2, "pointer log")
                logs[i].append((nxt, s_token))
                entry[1] = nxt + 1
                entry[2] = s_token
                entry[3] = nxt
                buf_full = len(buffer) >= M
                if nxt == runs[i].blocks - 1 or (
                    buf_full and s_token > token_of(buffer[-1])
                ):
                    active.pop(j)
                    machine.release(4)

        # ---------------- Phase D: emit the round's output --------------
        with machine.phase("merge/emit"):
            new_threshold = token_of(buffer[-1])
            for atom in buffer:
                out.push(atom)
            emitted += len(buffer)
            rs.emitted = len(buffer)
            buffer = []
        threshold = new_threshold

        # ---------------- Phase E: pointer update ------------------------
        with machine.phase("merge/pointers"):
            changes: dict[int, int] = {}
            for i, b in ptrs.scan():
                if b == EXHAUSTED:
                    continue
                if i in logs:
                    new_b = _advance_from_log(
                        machine, runs[i], b, logs[i], threshold
                    )
                else:
                    new_b = _advance_by_peek(machine, runs[i], b, threshold)
                if new_b != b:
                    changes[i] = new_b
            for log in logs.values():
                machine.release(2 * len(log))
            logs = {}
            ptrs.update(changes)

        snap = machine.snapshot() - start
        rs.reads, rs.writes = snap.reads, snap.writes
        if stats is not None:
            stats.rounds.append(rs)

    ptrs.close()
    if own_writer:
        return Run.of(out.close(), total)
    return Run.of((), total)


def _advance_from_log(machine, run: Run, b: int, log, threshold) -> int:
    """New pointer for a run whose read blocks this round were logged:
    the first block whose maximum exceeds the new threshold."""
    for idx, max_token in log:
        if max_token > threshold:
            return idx
    # Every logged block fully consumed; the next unread block (if any)
    # holds only atoms above the threshold by run sortedness.
    nxt = log[-1][0] + 1
    return nxt if nxt < run.blocks else EXHAUSTED


def _advance_by_peek(machine, run: Run, b: int, threshold) -> int:
    """New pointer for a run seen only in initialization: peek at most the
    two initialization blocks.

    For an inactive run, every unread block (>= b+2) lies entirely above
    the round's output (its atoms exceed the loaded maximum, which stayed
    outside the buffer's M smallest), so the pointer lands on b, b+1, or
    b+2 — or the run is exhausted.
    """
    blk = machine.peek(run.addrs[b])
    if token_of(blk[-1]) > threshold:
        return b
    if b + 1 >= run.blocks:
        return EXHAUSTED
    blk = machine.peek(run.addrs[b + 1])
    if token_of(blk[-1]) > threshold:
        return b + 1
    return b + 2 if b + 2 < run.blocks else EXHAUSTED
