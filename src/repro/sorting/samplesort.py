"""AEM sample sort (distribution sort) — the Blelloch-style comparator.

The paper cites sample sort as one of the two previously known sorters
that meet ``O(omega*n*log_{omega m} n)`` unconditionally. The shape
implemented here:

* pick ``d - 1 ~ omega*m`` splitters from a regularly spaced sample (the
  sample and the splitters live in *external* memory — like the merge
  pointers they can exceed M words when omega > B);
* partition the input into d buckets in ``omega`` sub-passes of ``~m``
  buckets each: a sub-pass holds only its group's splitters (``<= m+1``
  words) and one block buffer per bucket (``<= M`` atoms), scans the input
  (n reads), and writes each routed atom once — ``omega*n`` reads and
  ``~n`` writes per level in total;
* recurse on each bucket; arrays of at most ``omega*M`` atoms use the
  small-array base case.

Splitters are full ``(key, uid)`` tokens, so duplicate keys split evenly
and every bucket is strictly smaller than its parent — the recursion
terminates on any input. Levels: ``log_{omega m} n``, total cost
``O(omega * n * log_{omega m} n)``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from ..core.params import AEMParams, ceil_div
from ..machine.aem import AEMMachine
from ..machine.streams import BlockReader, BlockWriter
from .runs import Run, concat_runs, run_of_input
from .small import small_sort


def _collect_sample(machine: AEMMachine, run: Run, size: int) -> Run:
    """Write a regularly spaced sample of ``size`` atoms to a fresh run."""
    step = max(1, ceil_div(run.length, size))
    writer = BlockWriter(machine)
    reader = BlockReader(machine, run.addrs)
    pos = 0
    for atom in reader:
        if pos % step == 0:
            writer.push(atom)
        else:
            machine.release(1)
        pos += 1
    return Run.of(writer.close(), writer.count)


def _select_splitters(
    machine: AEMMachine, sorted_sample: Run, buckets: int
) -> Run:
    """Every ``s/d``-th token of the sorted sample, written as a run."""
    s = sorted_sample.length
    positions = set()
    for i in range(1, buckets):
        positions.add(min(s - 1, ceil_div(i * s, buckets) - 1))
    writer = BlockWriter(machine)
    reader = BlockReader(machine, sorted_sample.addrs)
    pos = 0
    for atom in reader:
        if pos in positions:
            writer.push_new(atom.sort_token())
        machine.release(1)
        pos += 1
    return Run.of(writer.close(), writer.count)


def _read_splitter_range(
    machine: AEMMachine, splitters: Run, lo_idx: int, hi_idx: int
) -> list:
    """Tokens ``splitters[lo_idx:hi_idx]`` via peeks (none kept resident
    beyond the returned, explicitly acquired list)."""
    if lo_idx >= hi_idx:
        return []
    B = machine.params.B
    out: list = []
    for j in range(lo_idx // B, ceil_div(hi_idx, B)):
        blk = machine.peek(splitters.addrs[j])
        for t, token in enumerate(blk):
            idx = j * B + t
            if lo_idx <= idx < hi_idx:
                out.append(token)
    machine.acquire(len(out), "splitter tokens")
    return out


def sample_sort_run(
    machine: AEMMachine, run: Run, params: AEMParams
) -> Run:
    if run.length <= params.base_case_size():
        with machine.phase("samplesort/base"):
            return small_sort(machine, run, params)

    d = max(2, params.fanout)
    with machine.phase("samplesort/sample"):
        sample_size = max(2, min(run.length, 4 * d, params.base_case_size()))
        sample = _collect_sample(machine, run, sample_size)
        sorted_sample = small_sort(machine, sample, params)
        buckets = max(2, min(d, sorted_sample.length))
        splitters = _select_splitters(machine, sorted_sample, buckets)
    buckets = splitters.length + 1

    # Partition in sub-passes of at most m buckets each.
    group = max(1, min(buckets, params.m))
    bucket_runs: list[Run] = []
    with machine.phase("samplesort/partition"):
        for t in range(0, buckets, group):
            g = min(group, buckets - t)
            # Group boundary tokens: splitters[t-1] (exclusive lower) and
            # the g-1 in-group splitters plus splitters[t+g-1] (upper).
            lower = (
                _read_splitter_range(machine, splitters, t - 1, t) if t > 0 else []
            )
            lo_token = lower[0] if lower else None
            inner = _read_splitter_range(
                machine, splitters, t, min(t + g, splitters.length)
            )
            writers = [BlockWriter(machine) for _ in range(g)]
            reader = BlockReader(machine, run.addrs)
            for atom in reader:
                token = atom.sort_token()
                machine.touch()
                if lo_token is not None and token <= lo_token:
                    machine.release(1)
                    continue
                j = bisect_left(inner, token)
                if j >= g:
                    machine.release(1)
                    continue
                writers[j].push(atom)
            for w in writers:
                bucket_runs.append(Run.of(w.close(), w.count))
            machine.release(len(lower) + len(inner))

    with machine.phase("samplesort/recurse"):
        sorted_buckets = [
            sample_sort_run(machine, b, params) for b in bucket_runs if b.length
        ]
    return concat_runs(sorted_buckets)


def aem_samplesort(
    machine: AEMMachine, addrs: Sequence[int], params: AEMParams
) -> list[int]:
    """Sample sort in the AEM: ``O(omega * n * log_{omega m} n)`` cost."""
    run = run_of_input(machine, addrs)
    out = sample_sort_run(machine, run, params)
    return list(out.addrs)
