"""Sorting in the (M, B, omega)-AEM: the Section 3 mergesort and comparators."""

from .base import SORTERS, SortVerificationError, run_sorter, verify_sorted_output
from .em_mergesort import em_mergesort
from .heapsort import aem_heapsort
from .merge import (
    EXHAUSTED,
    ExternalPointerStore,
    InternalPointerStore,
    MergeStats,
    RoundStats,
    multiway_merge,
)
from .mergesort import aem_mergesort, pointer_mergesort, sort_run
from .runs import Run, concat_runs, run_of_input, split_run
from .samplesort import aem_samplesort, sample_sort_run
from .small import small_sort, small_sort_addrs

__all__ = [
    "EXHAUSTED",
    "ExternalPointerStore",
    "InternalPointerStore",
    "MergeStats",
    "Run",
    "RoundStats",
    "SORTERS",
    "SortVerificationError",
    "aem_heapsort",
    "aem_mergesort",
    "aem_samplesort",
    "concat_runs",
    "em_mergesort",
    "multiway_merge",
    "pointer_mergesort",
    "run_of_input",
    "run_sorter",
    "sample_sort_run",
    "small_sort",
    "small_sort_addrs",
    "sort_run",
    "split_run",
    "verify_sorted_output",
]
