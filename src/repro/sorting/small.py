"""The small-array base case: sort N' <= omega*M atoms cheaply.

Section 3 bottoms out its recursion with the algorithm of Blelloch et al.
[7, Lemma 4.2]: an array of ``N' <= omega*M`` elements can be sorted with
``O(omega * n')`` read I/Os but only ``O(n')`` write I/Os (total cost
``O(omega * n')``), i.e. writing each element only once while re-reading
the input up to ``omega`` times.

The implementation is multi-pass selection: the input fits in at most
``ceil(N'/M) <= omega`` memoryloads, and pass ``t`` scans the entire input
(``n'`` reads), keeps the M smallest atoms greater than the previous pass's
threshold in an internal buffer, and appends them to the output
(``~M/B`` writes). Totals: ``ceil(N'/M) * n' <= omega * n'`` reads and
``n' (+1)`` writes — exactly the lemma's budget.

The strict ``(key, uid)`` order makes thresholds unambiguous even with
duplicate keys.
"""

from __future__ import annotations

from bisect import insort
from typing import Optional

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.phantom import token_of
from ..machine.streams import BlockWriter
from .runs import Run, run_of_input


def small_sort(
    machine: AEMMachine,
    run: Run,
    params: AEMParams,
    *,
    writer: Optional[BlockWriter] = None,
) -> Run:
    """Sort a run of at most ``omega * M`` atoms (Blelloch et al. Lemma 4.2).

    Parameters
    ----------
    machine:
        The AEM machine (its physical capacity should exceed ``params.M``
        by a small constant factor to hold the buffer plus one staging
        block; see :meth:`AEMMachine.for_algorithm`).
    run:
        The input run (need not be sorted).
    params:
        Logical model parameters; the selection buffer holds ``params.M``
        atoms.
    writer:
        Optional output writer to append to (used when a caller chains
        base-case outputs); a fresh contiguous run is written otherwise.

    Returns the sorted output run.
    """
    N = run.length
    if N > params.base_case_size():
        raise ValueError(
            f"small_sort handles at most omega*M = {params.base_case_size()} atoms, "
            f"got {N}"
        )
    own_writer = writer is None
    out = writer or BlockWriter(machine)
    if N == 0:
        return Run.of(out.close() if own_writer else [], 0)

    M = params.M
    counting = machine.counting
    threshold = None  # (key, uid) of the last atom emitted so far
    emitted = 0
    while emitted < N:
        # One selection pass: keep the M smallest atoms above the threshold.
        buffer: list = []  # sorted ascending by (key, uid); <= M atoms
        with machine.phase("small_sort/scan"):
            for addr in run.addrs:
                blk = machine.read(addr)
                if counting:
                    # Batched selection over tokens: the M smallest of
                    # (buffer ∪ accepted atoms) is feed-order independent,
                    # so extend+sort+truncate reaches the per-atom loop's
                    # exact buffer; touches and releases keep their totals
                    # (releases = len + old_len - new_len) in one event.
                    machine.touch(len(blk))
                    old_len = len(buffer)
                    if threshold is None:
                        buffer.extend(blk)
                    else:
                        buffer.extend(t for t in blk if t > threshold)
                    buffer.sort()
                    del buffer[M:]
                    machine.release(len(blk) + old_len - len(buffer))
                    continue
                kept = 0
                for atom in blk:
                    machine.touch()
                    if threshold is not None and atom.sort_token() <= threshold:
                        continue
                    if len(buffer) < M:
                        insort(buffer, atom)
                        kept += 1
                    elif atom < buffer[-1]:
                        # Replace the current largest candidate.
                        evicted = buffer.pop()
                        insort(buffer, atom)
                        machine.release([evicted])
                        kept += 1
                    # else: atom cannot be among this pass's M smallest.
                machine.release(len(blk) - kept)
        with machine.phase("small_sort/emit"):
            for atom in buffer:
                out.push(atom)
            emitted += len(buffer)
            threshold = token_of(buffer[-1])
    if own_writer:
        addrs = out.close()
        return Run.of(addrs, N)
    return Run.of((), N)


def small_sort_addrs(
    machine: AEMMachine, addrs, params: AEMParams
) -> list[int]:
    """Convenience wrapper taking and returning raw block addresses."""
    result = small_sort(machine, run_of_input(machine, addrs), params)
    return list(result.addrs)
