"""AEM heapsort: heap-based run formation plus omega*m-way merging.

The paper cites Blelloch et al.'s AEM heapsort as one of the two
unconditionally optimal sorters. We implement the classic external
heapsort recipe adapted to the AEM (a simplification documented in
DESIGN.md):

1. **Replacement selection** — an M-atom min-heap in internal memory
   streams over the input and emits sorted runs of length at least M
   (2M expected on random data), for ``n`` reads + ``n`` writes total.
2. **Run merging** — repeated ``omega*m``-way merging with the Section 3.1
   round merge until a single run remains:
   ``O(omega*n)`` per level over ``log_{omega m}(n/m)`` levels.

Total: ``O(omega * n * log_{omega m} n)`` — the same bound as the paper's
mergesort, reached through a heap-shaped run formation, which is what the
sorter-comparison experiment (E13) contrasts.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.streams import BlockReader, BlockWriter
from .merge import multiway_merge
from .runs import Run, run_of_input


def _replacement_selection(
    machine: AEMMachine, run: Run, params: AEMParams
) -> list[Run]:
    """Form sorted runs of length >= M with an M-atom internal heap.

    Heap entries are ``(run_tag, sort_token, atom)``: an incoming atom
    smaller than the last one emitted cannot join the current run, so it is
    tagged for the next run and stays in the heap — the heap never exceeds
    M atoms and every atom is read and written exactly once.
    """
    reader = BlockReader(machine, run.addrs)
    heap: list = []
    with machine.phase("heapsort/run-formation"):
        while len(heap) < params.M and not reader.exhausted():
            atom = reader.take()
            heap.append((0, atom.sort_token(), atom))
        heapq.heapify(heap)
        machine.touch(len(heap))

        runs: list[Run] = []
        current_tag = 0
        writer = BlockWriter(machine)
        emitted = 0
        last_token = None
        while heap:
            tag, token, atom = heapq.heappop(heap)
            machine.touch()
            if tag != current_tag:
                # Current run is finished; start the next one.
                runs.append(Run.of(writer.close(), emitted))
                writer = BlockWriter(machine)
                emitted = 0
                current_tag = tag
                last_token = None
            writer.push(atom)
            emitted += 1
            last_token = token
            if not reader.exhausted():
                incoming = reader.take()
                in_token = incoming.sort_token()
                joins_current = last_token is None or in_token >= last_token
                in_tag = current_tag if joins_current else current_tag + 1
                heapq.heappush(heap, (in_tag, in_token, incoming))
        if emitted:
            runs.append(Run.of(writer.close(), emitted))
        else:
            writer.close()
    return runs


def aem_heapsort(
    machine: AEMMachine, addrs: Sequence[int], params: AEMParams
) -> list[int]:
    """Heapsort in the AEM: ``O(omega * n * log_{omega m} n)`` cost."""
    run = run_of_input(machine, addrs)
    if run.length == 0:
        return []
    runs = _replacement_selection(machine, run, params)
    fan = max(2, params.fanout)
    with machine.phase("heapsort/merge"):
        while len(runs) > 1:
            merged: list[Run] = []
            for i in range(0, len(runs), fan):
                group = runs[i : i + fan]
                if len(group) == 1:
                    merged.append(group[0])
                else:
                    merged.append(multiway_merge(machine, group, params))
            runs = merged
    return list(runs[0].addrs)
