"""Classic symmetric-EM mergesort (Aggarwal & Vitter), run on the AEM.

The baseline for experiment E5: run formation by memoryloads (runs of M),
then repeated ``(m-1)``-way merging with one block of each run resident.
In the symmetric model this is the optimal ``Theta(n log_m n)`` I/Os; in
the AEM it pays ``omega`` on every write, costing
``O((1 + omega) * n * log_m n)`` — the log base is ``m``, not ``omega*m``,
which is exactly the advantage the Section 3 algorithm buys.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from ..machine.phantom import token_of
from ..machine.streams import BlockReader, BlockWriter
from .runs import Run, run_of_input


def _form_runs(machine: AEMMachine, run: Run, params: AEMParams) -> list[Run]:
    """Memoryload run formation: sorted runs of up to M atoms each."""
    runs: list[Run] = []
    reader = BlockReader(machine, run.addrs)
    with machine.phase("em_sort/run-formation"):
        while not reader.exhausted():
            batch: list = []
            while len(batch) < params.M and not reader.exhausted():
                batch.append(reader.take())
            batch.sort()
            machine.touch(len(batch))
            writer = BlockWriter(machine)
            for atom in batch:
                writer.push(atom)
            runs.append(Run.of(writer.close(), len(batch)))
    return runs


def _stream_merge(
    machine: AEMMachine, runs: Sequence[Run], params: AEMParams
) -> Run:
    """Merge up to ``m - 1`` runs keeping one block per run resident."""
    readers = [BlockReader(machine, r.addrs) for r in runs]
    writer = BlockWriter(machine)
    heap: list = []
    for idx, reader in enumerate(readers):
        atom = reader.peek()
        if atom is not None:
            heap.append((token_of(atom), idx))
    heapq.heapify(heap)
    total = 0
    while heap:
        _, idx = heapq.heappop(heap)
        atom = readers[idx].take()
        machine.touch()
        writer.push(atom)
        total += 1
        nxt = readers[idx].peek()
        if nxt is not None:
            heapq.heappush(heap, (token_of(nxt), idx))
    for reader in readers:
        reader.close()
    return Run.of(writer.close(), total)


def em_mergesort(
    machine: AEMMachine, addrs: Sequence[int], params: AEMParams
) -> list[int]:
    """Aggarwal–Vitter mergesort: ``O((1+omega) * n * log_m n)`` on the AEM."""
    run = run_of_input(machine, addrs)
    runs = _form_runs(machine, run, params)
    fan = max(2, params.m - 1)
    with machine.phase("em_sort/merge"):
        while len(runs) > 1:
            merged: list[Run] = []
            for i in range(0, len(runs), fan):
                group = runs[i : i + fan]
                if len(group) == 1:
                    merged.append(group[0])
                else:
                    merged.append(_stream_merge(machine, group, params))
            runs = merged
    if not runs:
        return []
    return list(runs[0].addrs)
