"""Sorter registry and verification helpers.

Every sorter in this package has the same signature::

    sorter(machine, addrs, params) -> output block addresses

Verification is cost-free (it inspects the block store directly — the
referee checking the output, not the program): the output must be sorted
by the strict ``(key, uid)`` order and consist of *exactly* the input
atoms (the indivisibility contract of Section 4).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..atoms.atom import Atom, is_sorted, same_atom_multiset
from ..core.params import AEMParams
from ..machine.aem import AEMMachine
from .em_mergesort import em_mergesort
from .heapsort import aem_heapsort
from .mergesort import aem_mergesort, pointer_mergesort
from .samplesort import aem_samplesort

Sorter = Callable[[AEMMachine, Sequence[int], AEMParams], list[int]]


def _pq_sort(machine, addrs, params):
    """Deferred import: repro.structures.pq itself uses the merge, so a
    top-level import here would close a package cycle."""
    from ..structures.pq import pq_sort

    return pq_sort(machine, addrs, params)


#: All sorters, keyed by the names the experiments and tables use.
SORTERS: Dict[str, Sorter] = {
    "aem_mergesort": aem_mergesort,
    "aem_samplesort": aem_samplesort,
    "aem_heapsort": aem_heapsort,
    "aem_pqsort": _pq_sort,
    "em_mergesort": em_mergesort,
    "pointer_mergesort": pointer_mergesort,
}

#: Sorters ported to the counting fast path (they branch on
#: ``machine.counting`` internally and make bit-identical scheduling
#: decisions on tokens). The rest silently run on a full machine when
#: counting is requested — their costs are identical, just slower to
#: simulate.
#:
#: This allow-list is cross-checked by static analysis: rule AEM202
#: (``repro.sanitize.analysis``) infers which sorters can reach a
#: payload operation while ``machine.counting`` may be true and flags
#: drift in either direction; ``repro-aem check --analysis`` and
#: ``tests/test_static_analysis.py`` both fail if this set and the code
#: disagree.
COUNTING_SORTERS = frozenset({"aem_mergesort", "pointer_mergesort", "em_mergesort"})


class SortVerificationError(AssertionError):
    """The output of a sorter violates its contract."""


def verify_sorted_output(
    machine: AEMMachine,
    input_atoms: Sequence[Atom],
    output_addrs: Sequence[int],
) -> list[Atom]:
    """Check sortedness and atom-multiset preservation; returns the output.

    Raises :class:`SortVerificationError` with a pinpointed message on any
    violation. Inspection is cost-free by design.
    """
    out = machine.collect_output(output_addrs)
    if len(out) != len(input_atoms):
        raise SortVerificationError(
            f"output holds {len(out)} atoms, input had {len(input_atoms)}"
        )
    if not is_sorted(out):
        bad = next(
            i for i in range(len(out) - 1) if not out[i] <= out[i + 1]
        )
        raise SortVerificationError(
            f"output not sorted at position {bad}: {out[bad]!r} > {out[bad + 1]!r}"
        )
    if not same_atom_multiset(input_atoms, out):
        raise SortVerificationError(
            "output atoms are not exactly the input atoms "
            "(indivisibility violated: atoms lost, duplicated, or fabricated)"
        )
    return out


def run_sorter(
    name: str,
    machine: AEMMachine,
    addrs: Sequence[int],
    params: AEMParams,
) -> list[int]:
    """Run a registered sorter by name."""
    try:
        sorter = SORTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown sorter {name!r}; available: {sorted(SORTERS)}"
        ) from None
    return sorter(machine, addrs, params)
