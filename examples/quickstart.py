#!/usr/bin/env python3
"""Quickstart: sort and permute on a simulated (M, B, omega)-AEM.

This walks the package's core loop in ~40 lines of user code:

1. pick model parameters (internal memory M, block size B, write cost omega),
2. place atoms in the simulated external memory,
3. run the paper's mergesort (Section 3) and read off exact I/O counts,
4. compare against the closed-form upper bound and the Section 4 lower
   bound.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AEMMachine, AEMParams, Permutation, make_atoms
from repro.core.bounds import sort_upper_shape
from repro.core.counting import counting_lower_bound_general
from repro.permute import permute_adaptive, verify_permutation_output
from repro.sorting import aem_mergesort, verify_sorted_output


def main() -> None:
    # An AEM with 256-atom internal memory, 16-atom blocks, and writes 8x
    # as expensive as reads (a plausible NVM ratio).
    params = AEMParams(M=256, B=16, omega=8)
    print(f"model: {params.describe()}\n")

    # ---------------- Sorting ----------------
    rng = np.random.default_rng(42)
    N = 20_000
    atoms = make_atoms(rng.integers(0, 10**9, N).tolist())

    machine = AEMMachine.for_algorithm(params)
    input_blocks = machine.load_input(atoms)
    output_blocks = aem_mergesort(machine, input_blocks, params)
    verify_sorted_output(machine, atoms, output_blocks)

    shape = sort_upper_shape(N, params)
    print(f"sorted N={N} atoms:")
    print(f"  read I/Os   Qr = {machine.reads}")
    print(f"  write I/Os  Qw = {machine.writes}")
    print(f"  total cost  Q  = {machine.cost:g}   (reads + omega * writes)")
    print(f"  theory shape omega*n*log_(omega m) n = {shape:g}")
    print(f"  fitted constant Q/shape = {machine.cost / shape:.2f}")
    print(f"  peak internal memory = {machine.mem.peak} atoms "
          f"(machine capacity {machine.params.M})\n")

    # ---------------- Permuting ----------------
    N = 8_192
    atoms = make_atoms(rng.integers(0, 10**9, N).tolist())
    perm = Permutation.random(N, rng)

    machine = AEMMachine.for_algorithm(params)
    input_blocks = machine.load_input(atoms)
    output_blocks = permute_adaptive(machine, input_blocks, perm, params)
    verify_permutation_output(machine, atoms, output_blocks, perm)

    lb = counting_lower_bound_general(N, params)
    print(f"permuted N={N} atoms (adaptive strategy):")
    print(f"  total cost Q = {machine.cost:g}")
    print(f"  Section 4.2 counting lower bound (any program) = {lb:g}")
    print(f"  the measured cost is {machine.cost / max(lb, 1):.1f}x the bound —")
    print("  soundness holds; Theorem 4.5 says the gap is a constant in the")
    print("  sorting regime (see experiment E7).")


if __name__ == "__main__":
    main()
